(* The verification server (see the .mli and DESIGN.md §2.8).

   Everything here is deliberately deterministic: admission decisions
   depend only on configured bounds and the submission sequence, the
   drain order only on the cost model's class estimates (seeded from
   Costmodel, refined by measured times) and the configured policy with
   the submission sequence as tie-break, and the verdict bodies only on
   the request content — so identical request streams produce identical
   response streams, which is what lets the bench assert byte-identity
   against direct execution. *)

module Cp = Hoyan_config.Change_plan
module Types = Hoyan_config.Types
module Preprocess = Hoyan_core.Preprocess
module Verify_request = Hoyan_core.Verify_request
module Intents = Hoyan_core.Intents
module Kfailure = Hoyan_core.Kfailure
module Model = Hoyan_sim.Model
module Incremental = Hoyan_sim.Incremental
module Db = Hoyan_dist.Db
module Schedule = Hoyan_dist.Schedule
module Costmodel = Hoyan_dist.Costmodel
module Diagnostics = Hoyan_analysis.Diagnostics
module Semantic = Hoyan_analysis.Semantic
module Differential = Hoyan_analysis.Differential
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal

type config = {
  c_queue_depth : int;
  c_tenant_quota : int;
  c_cache_capacity : int;
  c_policy : Schedule.policy;
  c_default_budget_s : float;
}

let default_config =
  {
    c_queue_depth = 256;
    c_tenant_quota = 64;
    c_cache_capacity = 1024;
    c_policy = Schedule.Fifo;
    c_default_budget_s = 300.;
  }

type status =
  | Ok
  | Fail
  | Rejected of string
  | Timeout
  | Error of string

let status_to_string = function
  | Ok -> "ok"
  | Fail -> "fail"
  | Rejected reason -> "rejected:" ^ reason
  | Timeout -> "timeout"
  | Error _ -> "error"

type response = {
  rs_seq : int;
  rs_id : string;
  rs_tenant : string;
  rs_class : Request.rq_class;
  rs_status : status;
  rs_body : string;
  rs_cached : bool;
  rs_queue_s : float;
  rs_exec_s : float;
}

type stats = {
  st_submitted : int;
  st_admitted : int;
  st_rejected_queue : int;
  st_rejected_quota : int;
  st_rejected_snapshot : int;
  st_completed : int;
  st_failed : int;
  st_timeouts : int;
  st_errors : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_evictions : int;
}

type pending = {
  p_seq : int;
  p_rq : Request.t;
  p_snap : Snapshot.t;
  p_submit_t : float;
  p_entry : Db.entry;
}

type t = {
  cfg : config;
  tm : Telemetry.t;
  cache : (status * string) Cache.t;
  db : Db.t;
  snaps : (string, Snapshot.t) Hashtbl.t;
  (* incremental-simulation state, both lazily populated on the first
     simulating request: one converged-base context per snapshot, and
     spliced artifacts keyed "<snapshot digest>/<plan digest>" so
     requests from different tenants that carry the same plan against
     the same snapshot share one dirty-region fixpoint *)
  inc_ctxs : (string, Incremental.ctx) Hashtbl.t;
  inc_sims : (string, Incremental.sim) Hashtbl.t;
  mutable snap_order : string list;  (* registration order, reversed *)
  mutable default_snap : string option;
  mutable queue : pending list;  (* reversed submission order *)
  tenant_queued : (string, int) Hashtbl.t;
  (* measured-time EWMA per class, seeded from the cost model *)
  est : (Request.rq_class, float) Hashtbl.t;
  mutable seq : int;
  mutable executed : string list;  (* reversed execution order *)
  mutable durations : float list;  (* reversed completion order *)
  mutable lats : (Request.rq_class * float) list;  (* reversed *)
  mutable n_submitted : int;
  mutable n_admitted : int;
  mutable n_rej_queue : int;
  mutable n_rej_quota : int;
  mutable n_rej_snapshot : int;
  mutable n_completed : int;
  mutable n_failed : int;
  mutable n_timeouts : int;
  mutable n_errors : int;
}

let create ?tm ?(config = default_config) () =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  {
    cfg = config;
    tm;
    cache = Cache.create ~capacity:config.c_cache_capacity;
    db = Db.create ();
    snaps = Hashtbl.create 4;
    inc_ctxs = Hashtbl.create 4;
    inc_sims = Hashtbl.create 64;
    snap_order = [];
    default_snap = None;
    queue = [];
    tenant_queued = Hashtbl.create 16;
    est = Hashtbl.create 4;
    seq = 0;
    executed = [];
    durations = [];
    lats = [];
    n_submitted = 0;
    n_admitted = 0;
    n_rej_queue = 0;
    n_rej_quota = 0;
    n_rej_snapshot = 0;
    n_completed = 0;
    n_failed = 0;
    n_timeouts = 0;
    n_errors = 0;
  }

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let register_snapshot t (base : Preprocess.base) : Snapshot.t =
  let digest = Snapshot.digest_of_base base in
  match Hashtbl.find_opt t.snaps digest with
  | Some s -> s
  | None ->
      let s = Snapshot.register ~tm:t.tm base in
      Hashtbl.replace t.snaps s.Snapshot.sn_digest s;
      t.snap_order <- s.Snapshot.sn_digest :: t.snap_order;
      if t.default_snap = None then t.default_snap <- Some s.Snapshot.sn_digest;
      s

let find_snapshot t digest = Hashtbl.find_opt t.snaps digest

let snapshots t =
  List.rev_map (fun d -> Hashtbl.find t.snaps d) t.snap_order

(* ------------------------------------------------------------------ *)
(* The execution path                                                  *)
(* ------------------------------------------------------------------ *)

(* Deterministic verdict rendering: no timings, no request name — the
   same semantic request always renders the same bytes, whichever
   tenant sent it and whether it came from the cache. *)
let verdict_body (r : Verify_request.result) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "verdict: %s\n" (if r.Verify_request.vr_ok then "PASS" else "FAIL"));
  if r.Verify_request.vr_gated then
    Buffer.add_string b "gated: stopped by the static-analysis gate\n";
  if r.Verify_request.vr_sim_skipped then
    Buffer.add_string b "simulation: skipped (resolved without the fixpoints)\n";
  (match r.Verify_request.vr_diff_class with
  | Some cls ->
      Buffer.add_string b
        (Printf.sprintf "differential: plan is %s; %d intent verdict(s) carried over\n"
           (Differential.classification_to_string cls)
           (List.length r.Verify_request.vr_carried))
  | None -> ());
  List.iter
    (fun (intent, verdict) ->
      Buffer.add_string b
        (Printf.sprintf "precheck: %s -> %s\n"
           (Intents.to_string intent)
           (Semantic.verdict_to_string verdict)))
    r.Verify_request.vr_precheck;
  List.iter
    (fun d ->
      Buffer.add_string b (Printf.sprintf "lint: %s\n" (Diagnostics.to_string d)))
    r.Verify_request.vr_lint;
  List.iter
    (fun w -> Buffer.add_string b (Printf.sprintf "plan warning: %s\n" w))
    r.Verify_request.vr_plan_warnings;
  List.iter
    (fun v ->
      Buffer.add_string b (Intents.violation_to_string v);
      Buffer.add_char b '\n')
    r.Verify_request.vr_violations;
  Buffer.contents b

(* The whatif execution path: the exhaustive k-failure sweep over the
   snapshot's base network.  The property comes from the request's
   first `intent reach present' stanza; the verdict body is
   deterministic (counts and violations only, no timings). *)
let run_whatif ?(tm = Telemetry.noop) ?inc (snap : Snapshot.t)
    (rq : Request.t) : status * string =
  let base = snap.Snapshot.sn_base in
  let prop =
    List.find_map
      (function
        | Intents.Route_reach { rr_prefix; rr_devices; rr_expect = true } ->
            Some (Kfailure.prefix_survives ~prefix:rr_prefix ~devices:rr_devices)
        | _ -> None)
      rq.Request.r_intents
  in
  match prop with
  | None ->
      ( Error "whatif requires an `intent reach present' stanza",
        "" )
  | Some prop ->
      let devices, links =
        match rq.Request.r_scope with
        | Request.Links_only -> (false, true)
        | Request.Devices_only -> (true, false)
        | Request.Links_and_devices -> (true, true)
      in
      let res =
        Kfailure.check ~tm ~devices ~links ?inc base.Preprocess.b_model
          ~input_routes:base.Preprocess.b_input_routes
          ~flows:base.Preprocess.b_flows ~k:rq.Request.r_k prop
      in
      let b = Buffer.create 256 in
      Buffer.add_string b
        (Printf.sprintf "verdict: %s\n"
           (if res.Kfailure.kr_violations = [] then "PASS" else "FAIL"));
      Buffer.add_string b
        (Printf.sprintf "whatif: property %s\n" res.Kfailure.kr_property);
      Buffer.add_string b
        (Printf.sprintf
           "whatif: %d scenario(s) (k<=%d); %d carried, %d static, %d \
            replicated, %d simulated\n"
           res.Kfailure.kr_total res.Kfailure.kr_k res.Kfailure.kr_carried
           res.Kfailure.kr_static res.Kfailure.kr_replicated
           res.Kfailure.kr_simulated);
      List.iter
        (fun (s : Kfailure.scenario_result) ->
          Buffer.add_string b
            (Printf.sprintf "violation: [%s] %s\n"
               (String.concat ", "
                  (List.map Kfailure.failure_to_string s.Kfailure.sr_failures))
               (Option.value s.Kfailure.sr_violation ~default:"")))
        res.Kfailure.kr_violations;
      ( (if res.Kfailure.kr_violations = [] then Ok else Fail),
        Buffer.contents b )

(* Internal variant returning the per-phase timing split (route/static
   pipeline seconds, traffic-forcing seconds) so [execute_one] can
   attribute the server.request span honestly instead of lumping the
   lazy traffic cost into the route-simulation time. *)
let run_direct_timed ?(tm = Telemetry.noop) ?inc ?inc_sim (snap : Snapshot.t)
    (rq : Request.t) : status * string * float * float =
  let base = snap.Snapshot.sn_base in
  let vrq =
    {
      Verify_request.rq_name = rq.Request.r_id;
      rq_plan = rq.Request.r_plan;
      rq_intents = rq.Request.r_intents;
    }
  in
  try
    match rq.Request.r_class with
    | Request.Whatif ->
        let st, body = run_whatif ~tm ?inc snap rq in
        (st, body, 0., 0.)
    | _ ->
        let res =
          match rq.Request.r_class with
          | Request.Lint ->
              Verify_request.run ~tm ~lint:Verify_request.Lint_fail
                ~precheck:false ~stop_after:`Gate base vrq
          | Request.Precheck ->
              Verify_request.run ~tm ~lint:Verify_request.Lint_off
                ~stop_after:`Static base vrq
          | Request.Diff ->
              Verify_request.run ~tm ~diff:true ?inc ?inc_sim base vrq
          | Request.Simulate ->
              Verify_request.run ~tm ?inc ?inc_sim base vrq
          | Request.Whatif -> assert false
        in
        ( (if res.Verify_request.vr_ok then Ok else Fail),
          verdict_body res,
          res.Verify_request.vr_sim_seconds,
          !(res.Verify_request.vr_traffic_seconds) )
  with e -> (Error (Printexc.to_string e), "", 0., 0.)

let run_direct ?tm ?inc ?inc_sim (snap : Snapshot.t) (rq : Request.t) :
    status * string =
  let st, body, _, _ = run_direct_timed ?tm ?inc ?inc_sim snap rq in
  (st, body)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

(* Class priors: the simulate estimate comes from the distributed cost
   model on the snapshot's input size; the static classes are priced at
   the measured cost fractions of their gates (lint ~0.03%, precheck
   ~0.5%, diff ~0.3–1% of a full simulation — PR2/PR4/PR7 benches),
   then every class estimate tracks its own measured times by EWMA. *)
let prior (snap : Snapshot.t) (cls : Request.rq_class) : float =
  let sim =
    Costmodel.est_route_subtask Costmodel.default
      ~routes:snap.Snapshot.sn_input_routes
  in
  match cls with
  | Request.Whatif ->
      (* one fixpoint per simulated class representative; even heavily
         pruned sweeps run several — the most expensive class *)
      5. *. sim
  | Request.Simulate -> sim
  | Request.Diff -> 0.01 *. sim
  | Request.Precheck -> 0.005 *. sim
  | Request.Lint -> 0.001 *. sim

let estimate t (snap : Snapshot.t) (cls : Request.rq_class) : float =
  match Hashtbl.find_opt t.est cls with
  | Some e -> e
  | None -> prior snap cls

let observe_cost t (cls : Request.rq_class) (snap : Snapshot.t) measured =
  let old = estimate t snap cls in
  Hashtbl.replace t.est cls ((0.7 *. old) +. (0.3 *. measured))

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let queue_depth t = List.length t.queue

let tenant_count t tenant =
  Option.value (Hashtbl.find_opt t.tenant_queued tenant) ~default:0

let reject t seq (rq : Request.t) reason : response =
  let entry = Db.register t.db (Printf.sprintf "rq-%06d" seq) in
  Db.mark_terminal entry ("rejected: " ^ reason);
  (match reason with
  | "queue-full" -> t.n_rej_queue <- t.n_rej_queue + 1
  | "tenant-quota" -> t.n_rej_quota <- t.n_rej_quota + 1
  | _ -> t.n_rej_snapshot <- t.n_rej_snapshot + 1);
  if Telemetry.enabled t.tm then begin
    Telemetry.count t.tm ~labels:[ ("reason", reason) ]
      "hoyan_server_rejected_total" 1;
    Telemetry.event t.tm "server.reject"
      [
        ("id", Journal.S rq.Request.r_id);
        ("tenant", Journal.S rq.Request.r_tenant);
        ("reason", Journal.S reason);
      ]
  end;
  {
    rs_seq = seq;
    rs_id = rq.Request.r_id;
    rs_tenant = rq.Request.r_tenant;
    rs_class = rq.Request.r_class;
    rs_status = Rejected reason;
    rs_body = "";
    rs_cached = false;
    rs_queue_s = 0.;
    rs_exec_s = 0.;
  }

let submit t (rq : Request.t) : (unit, response) result =
  let seq = t.seq in
  t.seq <- seq + 1;
  t.n_submitted <- t.n_submitted + 1;
  let snap =
    match rq.Request.r_snapshot with
    | Some d -> Hashtbl.find_opt t.snaps d
    | None -> (
        match t.default_snap with
        | Some d -> Hashtbl.find_opt t.snaps d
        | None -> None)
  in
  let decision =
    match snap with
    | None -> Stdlib.Error (reject t seq rq "unknown-snapshot")
    | Some snap ->
        if queue_depth t >= t.cfg.c_queue_depth then
          Stdlib.Error (reject t seq rq "queue-full")
        else if tenant_count t rq.Request.r_tenant >= t.cfg.c_tenant_quota
        then Stdlib.Error (reject t seq rq "tenant-quota")
        else begin
          let entry = Db.register t.db (Printf.sprintf "rq-%06d" seq) in
          t.queue <-
            {
              p_seq = seq;
              p_rq = rq;
              p_snap = snap;
              p_submit_t = Unix.gettimeofday ();
              p_entry = entry;
            }
            :: t.queue;
          Hashtbl.replace t.tenant_queued rq.Request.r_tenant
            (tenant_count t rq.Request.r_tenant + 1);
          t.n_admitted <- t.n_admitted + 1;
          Stdlib.Ok ()
        end
  in
  if Telemetry.enabled t.tm then
    Telemetry.gauge t.tm "hoyan_server_queue_depth"
      (float_of_int (queue_depth t));
  decision

(* ------------------------------------------------------------------ *)
(* The drain loop                                                      *)
(* ------------------------------------------------------------------ *)

(* For the simulating classes, provision the incremental machinery:
   capture the snapshot's converged-base context once, then look the
   plan's spliced artifact up by (snapshot digest, plan digest) —
   computing and caching it on a miss, so a repeated plan (any tenant,
   any intent set) never re-runs even the dirty-region fixpoint. *)
let inc_for t (snap : Snapshot.t) (rq : Request.t) :
    Incremental.ctx option * Incremental.sim option =
  match rq.Request.r_class with
  | Request.Lint | Request.Precheck -> (None, None)
  | Request.Simulate | Request.Diff | Request.Whatif -> (
      let ctx =
        match Hashtbl.find_opt t.inc_ctxs snap.Snapshot.sn_digest with
        | Some c -> c
        | None ->
            let base = snap.Snapshot.sn_base in
            let c =
              Incremental.capture ~tm:t.tm ~model:base.Preprocess.b_model
                ~input_routes:base.Preprocess.b_input_routes
                ~flows:base.Preprocess.b_flows
                ~rib:(Lazy.force base.Preprocess.b_rib) ()
            in
            Hashtbl.replace t.inc_ctxs snap.Snapshot.sn_digest c;
            c
      in
      match rq.Request.r_class with
      | Request.Whatif ->
          (* the sweep reuses the base context per scenario; there is no
             change plan to splice, hence no artifact *)
          (Some ctx, None)
      | _ ->
          let key =
            snap.Snapshot.sn_digest ^ "/"
            ^ Request.plan_digest
                ~configs:
                  snap.Snapshot.sn_base.Preprocess.b_model.Model.configs
                rq.Request.r_plan
          in
          let sim =
            match Hashtbl.find_opt t.inc_sims key with
            | Some s ->
                Telemetry.count t.tm "hoyan_server_inc_artifact_hit_total" 1;
                s
            | None ->
                Telemetry.count t.tm "hoyan_server_inc_artifact_miss_total" 1;
                let s = Incremental.simulate ~tm:t.tm ctx rq.Request.r_plan in
                Hashtbl.replace t.inc_sims key s;
                s
          in
          (Some ctx, Some sim))

let execute_one t (p : pending) : response =
  let rq = p.p_rq in
  let sp =
    Telemetry.span t.tm
      ~args:
        [
          ("id", rq.Request.r_id);
          ("class", Request.class_to_string rq.Request.r_class);
          ("tenant", rq.Request.r_tenant);
        ]
      "server.request"
  in
  let budget =
    Option.value rq.Request.r_budget_s ~default:t.cfg.c_default_budget_s
  in
  ignore (Db.start_attempt ~lease_s:budget p.p_entry);
  let t0 = Unix.gettimeofday () in
  let queue_s = t0 -. p.p_submit_t in
  let run () =
    let inc, inc_sim = inc_for t p.p_snap rq in
    run_direct_timed ~tm:t.tm ?inc ?inc_sim p.p_snap rq
  in
  let status, body, cached, sim_s, traffic_s =
    if rq.Request.r_no_cache then
      let st, body, ss, ts = run () in
      (st, body, false, ss, ts)
    else
      let key =
        Request.cache_key ~snapshot_digest:p.p_snap.Snapshot.sn_digest
          ~configs:p.p_snap.Snapshot.sn_base.Preprocess.b_model.Model.configs
          rq
      in
      match Cache.find t.cache key with
      | Some (st, body) -> (st, body, true, 0., 0.)
      | None ->
          let st, body, ss, ts = run () in
          (match st with
          | Ok | Fail -> Cache.add t.cache key (st, body)
          | Rejected _ | Timeout | Error _ -> ());
          (st, body, false, ss, ts)
  in
  let now = Unix.gettimeofday () in
  let exec_s = now -. t0 in
  (* the PR5 lease contract, per request: a finished attempt whose
     lease already expired is a timeout, and a timed-out request gets
     no verdict — not a partial one *)
  let timed_out = Db.lease_expired ~now p.p_entry in
  let status, body =
    if timed_out then (Timeout, "") else (status, body)
  in
  (match status with
  | Timeout ->
      Db.mark_terminal p.p_entry
        (Printf.sprintf "deadline exceeded (%.3fs > %.3fs budget)" exec_s
           budget);
      t.n_timeouts <- t.n_timeouts + 1
  | Error msg ->
      Db.mark_terminal p.p_entry ("execution error: " ^ msg);
      t.n_errors <- t.n_errors + 1
  | Ok | Fail | Rejected _ ->
      Db.complete p.p_entry ~duration_s:exec_s ~io_bytes:0 ~io_files:0 ();
      t.n_completed <- t.n_completed + 1;
      if status = Fail then t.n_failed <- t.n_failed + 1);
  if not cached then begin
    t.durations <- exec_s :: t.durations;
    t.lats <- (rq.Request.r_class, exec_s) :: t.lats;
    observe_cost t rq.Request.r_class p.p_snap exec_s
  end;
  t.executed <- rq.Request.r_id :: t.executed;
  if Telemetry.enabled t.tm then begin
    let cls = Request.class_to_string rq.Request.r_class in
    Telemetry.count t.tm ~labels:[ ("class", cls) ]
      "hoyan_server_requests_total" 1;
    Telemetry.observe t.tm ~labels:[ ("class", cls) ]
      "hoyan_server_request_seconds" exec_s;
    if not cached then begin
      Telemetry.observe t.tm ~labels:[ ("class", cls) ]
        "hoyan_server_request_sim_seconds" sim_s;
      Telemetry.observe t.tm ~labels:[ ("class", cls) ]
        "hoyan_server_request_traffic_seconds" traffic_s
    end;
    Telemetry.observe t.tm "hoyan_server_queue_seconds" queue_s;
    Telemetry.count t.tm
      (if cached then "hoyan_server_cache_hit_total"
       else "hoyan_server_cache_miss_total")
      1;
    Telemetry.event t.tm "server.request"
      [
        ("id", Journal.S rq.Request.r_id);
        ("class", Journal.S cls);
        ("tenant", Journal.S rq.Request.r_tenant);
        ("status", Journal.S (status_to_string status));
        ("cached", Journal.B cached);
      ]
  end;
  Telemetry.finish t.tm
    ~args:
      [
        ("status", status_to_string status);
        ("cached", string_of_bool cached);
        ("sim_s", Printf.sprintf "%.6f" sim_s);
        ("traffic_s", Printf.sprintf "%.6f" traffic_s);
      ]
    sp;
  {
    rs_seq = p.p_seq;
    rs_id = rq.Request.r_id;
    rs_tenant = rq.Request.r_tenant;
    rs_class = rq.Request.r_class;
    rs_status = status;
    rs_body = body;
    rs_cached = cached;
    rs_queue_s = queue_s;
    rs_exec_s = exec_s;
  }

let drain t : response list =
  let pending = List.rev t.queue in
  t.queue <- [];
  Hashtbl.reset t.tenant_queued;
  (* cost-model-driven order: under Lpt the most expensive class first
     (the framework's subtask policy), Fifo keeps submission order;
     ties (and Fifo) break by submission sequence *)
  let ordered =
    match t.cfg.c_policy with
    | Schedule.Fifo -> pending
    | Schedule.Lpt ->
        List.stable_sort
          (fun a b ->
            let ca = estimate t a.p_snap a.p_rq.Request.r_class in
            let cb = estimate t b.p_snap b.p_rq.Request.r_class in
            match Float.compare cb ca with
            | 0 -> Int.compare a.p_seq b.p_seq
            | c -> c)
          pending
  in
  let responses = List.map (execute_one t) ordered in
  if Telemetry.enabled t.tm then
    Telemetry.gauge t.tm "hoyan_server_queue_depth" 0.;
  List.sort (fun a b -> Int.compare a.rs_seq b.rs_seq) responses

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)
(* ------------------------------------------------------------------ *)

let executed_order t = List.rev t.executed
let durations t = List.rev t.durations
let latencies t = List.rev t.lats

let modelled_makespan t ~servers =
  fst (Schedule.makespan ~policy:t.cfg.c_policy ~servers (durations t))

let stats t =
  {
    st_submitted = t.n_submitted;
    st_admitted = t.n_admitted;
    st_rejected_queue = t.n_rej_queue;
    st_rejected_quota = t.n_rej_quota;
    st_rejected_snapshot = t.n_rej_snapshot;
    st_completed = t.n_completed;
    st_failed = t.n_failed;
    st_timeouts = t.n_timeouts;
    st_errors = t.n_errors;
    st_cache_hits = Cache.hits t.cache;
    st_cache_misses = Cache.misses t.cache;
    st_cache_evictions = Cache.evictions t.cache;
  }

let report t =
  let s = stats t in
  let b = Buffer.create 256 in
  Buffer.add_string b "=== hoyan server ===\n";
  List.iter
    (fun snap -> Buffer.add_string b (Snapshot.to_string snap ^ "\n"))
    (snapshots t);
  Buffer.add_string b
    (Printf.sprintf
       "requests: %d submitted, %d admitted, %d completed (%d FAIL), %d \
        timeout, %d error\n"
       s.st_submitted s.st_admitted s.st_completed s.st_failed s.st_timeouts
       s.st_errors);
  Buffer.add_string b
    (Printf.sprintf
       "admission: %d rejected (queue-full %d, tenant-quota %d, \
        unknown-snapshot %d)\n"
       (s.st_rejected_queue + s.st_rejected_quota + s.st_rejected_snapshot)
       s.st_rejected_queue s.st_rejected_quota s.st_rejected_snapshot);
  Buffer.add_string b
    (Printf.sprintf "cache: %d hit(s), %d miss(es), %d eviction(s), %d/%d \
                     entries%s\n"
       s.st_cache_hits s.st_cache_misses s.st_cache_evictions
       (Cache.size t.cache) (Cache.capacity t.cache)
       (let r = Cache.hit_rate t.cache in
        if Float.is_nan r then ""
        else Printf.sprintf " (hit rate %.1f%%)" (100. *. r)));
  Buffer.add_string b (Printf.sprintf "queued: %d\n" (queue_depth t));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)
(* ------------------------------------------------------------------ *)

let response_to_string ?(timing = true) (r : response) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "response %s %s tenant=%s status=%s cached=%b" r.rs_id
       (Request.class_to_string r.rs_class)
       r.rs_tenant
       (status_to_string r.rs_status)
       r.rs_cached);
  if timing then
    Buffer.add_string b
      (Printf.sprintf " queue_ms=%.3f exec_ms=%.3f" (1000. *. r.rs_queue_s)
         (1000. *. r.rs_exec_s));
  Buffer.add_char b '\n';
  (match r.rs_status with
  | Error msg -> Buffer.add_string b ("error: " ^ msg ^ "\n")
  | _ -> ());
  Buffer.add_string b r.rs_body;
  Buffer.add_string b "end-response\n";
  Buffer.contents b
