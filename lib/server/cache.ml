(* Bounded LRU cache: hash table for lookup, intrusive doubly-linked
   list for recency order (head = most recent, tail = next eviction).
   Every operation is O(1). *)

type 'a node = {
  n_key : string;
  mutable n_value : 'a;
  mutable n_prev : 'a node option;  (* toward the head (more recent) *)
  mutable n_next : 'a node option;  (* toward the tail (less recent) *)
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let size t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then nan else float_of_int t.hits /. float_of_int total

let unlink t (n : 'a node) =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.head <- n.n_next);
  (match n.n_next with
  | Some s -> s.n_prev <- n.n_prev
  | None -> t.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t (n : 'a node) =
  n.n_prev <- None;
  n.n_next <- t.head;
  (match t.head with Some h -> h.n_prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.n_value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.n_key;
      t.evictions <- t.evictions + 1

let add t key value =
  if t.cap = 0 then ()
  else
    match Hashtbl.find_opt t.tbl key with
    | Some n ->
        n.n_value <- value;
        unlink t n;
        push_front t n
    | None ->
        let n = { n_key = key; n_value = value; n_prev = None; n_next = None } in
        Hashtbl.replace t.tbl key n;
        push_front t n;
        if Hashtbl.length t.tbl > t.cap then evict_lru t
