(* Typed verification requests, semantic cache keys, and the
   line-oriented transport (see the .mli for the grammar). *)

open Hoyan_net
module Cp = Hoyan_config.Change_plan
module Types = Hoyan_config.Types
module Printer = Hoyan_config.Printer
module Intents = Hoyan_core.Intents
module Smap = Types.Smap

type rq_class = Lint | Precheck | Simulate | Diff | Whatif

let class_to_string = function
  | Lint -> "lint"
  | Precheck -> "precheck"
  | Simulate -> "simulate"
  | Diff -> "diff"
  | Whatif -> "whatif"

let class_of_string = function
  | "lint" -> Some Lint
  | "precheck" -> Some Precheck
  | "simulate" -> Some Simulate
  | "diff" -> Some Diff
  | "whatif" -> Some Whatif
  | _ -> None

type failure_scope = Links_only | Devices_only | Links_and_devices

let scope_to_string = function
  | Links_only -> "links"
  | Devices_only -> "devices"
  | Links_and_devices -> "both"

let scope_of_string = function
  | "links" -> Some Links_only
  | "devices" -> Some Devices_only
  | "both" -> Some Links_and_devices
  | _ -> None

type t = {
  r_id : string;
  r_tenant : string;
  r_class : rq_class;
  r_snapshot : string option;
  r_plan : Cp.t;
  r_intents : Intents.t list;
  r_budget_s : float option;
  r_no_cache : bool;
  r_k : int;
  r_scope : failure_scope;
}

let make ?(tenant = "default") ?snapshot ?plan ?(intents = []) ?budget_s
    ?(no_cache = false) ?(k = 1) ?(scope = Links_only) ~id cls =
  {
    r_id = id;
    r_tenant = tenant;
    r_class = cls;
    r_snapshot = snapshot;
    r_plan = (match plan with Some p -> p | None -> Cp.make id);
    r_intents = intents;
    r_budget_s = budget_s;
    r_no_cache = no_cache;
    r_k = k;
    r_scope = scope;
  }

(* ------------------------------------------------------------------ *)
(* Semantic digests                                                    *)
(* ------------------------------------------------------------------ *)

let topo_op_render = function
  | Cp.Add_device d ->
      Printf.sprintf "add-device %s %s %d %s %s" d.Topology.name
        d.Topology.vendor d.Topology.asn
        (Ip.to_string d.Topology.router_id)
        d.Topology.region
  | Cp.Remove_device n -> "remove-device " ^ n
  | Cp.Add_link { la; la_if; lb; lb_if; l_bandwidth } ->
      Printf.sprintf "add-link %s/%s %s/%s %g" la la_if lb lb_if l_bandwidth
  | Cp.Remove_link { ra; rb } -> Printf.sprintf "remove-link %s %s" ra rb

(* Group the plan's command blocks by device, preserving each device's
   block order (application is per-device, so cross-device interleaving
   is not observable).  Devices come out name-sorted. *)
let blocks_by_device (cp : Cp.t) : (string * string list) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (dev, block) ->
      let prev = Option.value (Hashtbl.find_opt tbl dev) ~default:[] in
      Hashtbl.replace tbl dev (block :: prev))
    cp.Cp.cp_commands;
  Hashtbl.fold (fun dev blocks acc -> (dev, List.rev blocks) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let plan_digest ~(configs : Types.t Smap.t) (cp : Cp.t) : string =
  let b = Buffer.create 4096 in
  (* topology ops in plan order: their order is observable *)
  List.iter
    (fun op ->
      Buffer.add_string b (topo_op_render op);
      Buffer.add_char b '\n')
    cp.Cp.cp_topo_ops;
  (* per touched device: digest the *patched* configuration plus the
     application issues — everything Verify_request.run can observe of
     the block, nothing of its accidental spelling *)
  List.iter
    (fun (dev, blocks) ->
      match Smap.find_opt dev configs with
      | None ->
          (* unknown target (Table-6 "typo in router name"): the raw
             text is all there is to key on *)
          Buffer.add_string b ("unknown-device " ^ dev ^ "\n");
          List.iter (fun blk -> Buffer.add_string b blk) blocks
      | Some cfg ->
          let cfg', issues =
            List.fold_left
              (fun (cfg, issues) blk ->
                let cfg', (report : Cp.apply_report) =
                  Cp.apply_commands cfg blk
                in
                (cfg', List.rev_append report.Cp.ar_issues issues))
              (cfg, []) blocks
          in
          Buffer.add_string b ("device " ^ dev ^ "\n");
          Buffer.add_string b (Printer.print cfg');
          List.iter
            (fun i ->
              Buffer.add_string b ("issue " ^ Cp.issue_to_string i ^ "\n"))
            (List.rev issues))
    (blocks_by_device cp);
  (* announced / withdrawn inputs, order-insensitive *)
  List.iter
    (fun s -> Buffer.add_string b ("new-route " ^ s ^ "\n"))
    (List.sort String.compare (List.map Route.to_string cp.Cp.cp_new_routes));
  List.iter
    (fun s -> Buffer.add_string b ("withdraw " ^ s ^ "\n"))
    (List.sort String.compare (List.map Prefix.to_string cp.Cp.cp_withdraw));
  Digest.to_hex (Digest.string (Buffer.contents b))

let intents_digest (intents : Intents.t list) : string =
  Digest.to_hex
    (Digest.string (String.concat "\x00" (List.map Intents.to_string intents)))

(* The class segment of the cache key.  For [Whatif] the sweep's k and
   failure scope are part of the answer's identity. *)
let class_key (t : t) : string =
  match t.r_class with
  | Whatif ->
      Printf.sprintf "whatif-k%d-%s" t.r_k (scope_to_string t.r_scope)
  | c -> class_to_string c

let cache_key ~snapshot_digest ~configs (t : t) : string =
  Printf.sprintf "%s/%s/%s/%s" snapshot_digest (class_key t)
    (plan_digest ~configs t.r_plan)
    (intents_digest t.r_intents)

(* ------------------------------------------------------------------ *)
(* Transport: parsing                                                  *)
(* ------------------------------------------------------------------ *)

let err line fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" line m)) fmt

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* intent reach present|absent PREFIX DEV[,DEV...] *)
let parse_reach line rest =
  match rest with
  | [ expect; prefix; devs ] -> (
      let expect_b =
        match expect with
        | "present" -> Some true
        | "absent" -> Some false
        | _ -> None
      in
      match expect_b with
      | None -> err line "intent reach: expected present|absent, got %S" expect
      | Some rr_expect -> (
          match Prefix.of_string prefix with
          | None -> err line "intent reach: bad prefix %S" prefix
          | Some rr_prefix ->
              let rr_devices =
                String.split_on_char ',' devs
                |> List.filter (fun d -> d <> "")
              in
              if rr_devices = [] then err line "intent reach: no devices"
              else Ok (Intents.Route_reach { rr_prefix; rr_devices; rr_expect })))
  | _ ->
      err line "intent reach: expected `present|absent PREFIX DEV[,DEV...]'"

type p_state = {
  ps_id : string;
  ps_class : rq_class;
  mutable ps_tenant : string;
  mutable ps_snapshot : string option;
  mutable ps_budget : float option;
  mutable ps_no_cache : bool;
  mutable ps_k : int;
  mutable ps_scope : failure_scope;
  mutable ps_commands : (string * string) list;  (* reversed *)
  mutable ps_withdraw : Prefix.t list;  (* reversed *)
  mutable ps_intents : Intents.t list;  (* reversed *)
}

let finish (ps : p_state) : t =
  {
    r_id = ps.ps_id;
    r_tenant = ps.ps_tenant;
    r_class = ps.ps_class;
    r_snapshot = ps.ps_snapshot;
    r_plan =
      Cp.make ps.ps_id
        ~commands:(List.rev ps.ps_commands)
        ~withdraw:(List.rev ps.ps_withdraw);
    r_intents = List.rev ps.ps_intents;
    r_budget_s = ps.ps_budget;
    r_no_cache = ps.ps_no_cache;
    r_k = ps.ps_k;
    r_scope = ps.ps_scope;
  }

let parse (text : string) : (t list, string) result =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc cur plan lines =
    match lines with
    | [] -> (
        match (cur, plan) with
        | None, _ -> Ok (List.rev acc)
        | Some _, Some (dev, _) ->
            err lineno "unterminated plan block for %s (missing end-plan)" dev
        | Some ps, None ->
            err lineno "unterminated request %s (missing end)" ps.ps_id)
    | raw :: rest -> (
        let lineno' = lineno + 1 in
        match (cur, plan) with
        | Some ps, Some (dev, blines) ->
            (* inside a plan block: verbatim until end-plan *)
            if String.trim raw = "end-plan" then begin
              ps.ps_commands <-
                (dev, String.concat "\n" (List.rev blines) ^ "\n")
                :: ps.ps_commands;
              go lineno' acc cur None rest
            end
            else go lineno' acc cur (Some (dev, raw :: blines)) rest
        | _, Some _ -> assert false
        | None, None -> (
            let line = String.trim raw in
            if line = "" || line.[0] = '#' then go lineno' acc None None rest
            else
              match split_ws line with
              | "request" :: id :: cls :: opts -> (
                  match class_of_string cls with
                  | None -> err lineno "unknown request class %S" cls
                  | Some c -> (
                      let ps =
                        {
                          ps_id = id;
                          ps_class = c;
                          ps_tenant = "default";
                          ps_snapshot = None;
                          ps_budget = None;
                          ps_no_cache = false;
                          ps_k = 1;
                          ps_scope = Links_only;
                          ps_commands = [];
                          ps_withdraw = [];
                          ps_intents = [];
                        }
                      in
                      let rec opt = function
                        | [] -> Ok ()
                        | "no-cache" :: rest ->
                            ps.ps_no_cache <- true;
                            opt rest
                        | o :: rest -> (
                            match String.index_opt o '=' with
                            | None -> err lineno "bad request option %S" o
                            | Some i -> (
                                let k = String.sub o 0 i in
                                let v =
                                  String.sub o (i + 1)
                                    (String.length o - i - 1)
                                in
                                match k with
                                | "tenant" ->
                                    ps.ps_tenant <- v;
                                    opt rest
                                | "snapshot" ->
                                    ps.ps_snapshot <- Some v;
                                    opt rest
                                | "budget" -> (
                                    match float_of_string_opt v with
                                    | Some f when f >= 0. ->
                                        ps.ps_budget <- Some f;
                                        opt rest
                                    | _ -> err lineno "bad budget %S" v)
                                | "k" -> (
                                    match int_of_string_opt v with
                                    | Some k when k >= 1 ->
                                        ps.ps_k <- k;
                                        opt rest
                                    | _ -> err lineno "bad k %S" v)
                                | "failures" -> (
                                    match scope_of_string v with
                                    | Some s ->
                                        ps.ps_scope <- s;
                                        opt rest
                                    | None ->
                                        err lineno
                                          "bad failures %S (links, devices \
                                           or both)"
                                          v)
                                | _ -> err lineno "unknown request option %S" k))
                      in
                      match opt opts with
                      | Error e -> Error e
                      | Ok () -> go lineno' acc (Some ps) None rest))
              | _ -> err lineno "expected `request ID CLASS ...', got %S" line)
        | Some ps, None -> (
            let line = String.trim raw in
            if line = "" || line.[0] = '#' then go lineno' acc cur None rest
            else if line = "end" then go lineno' (finish ps :: acc) None None rest
            else
              match split_ws line with
              | [ "plan"; dev ] -> go lineno' acc cur (Some (dev, [])) rest
              | [ "withdraw"; pfx ] -> (
                  match Prefix.of_string pfx with
                  | None -> err lineno "bad withdraw prefix %S" pfx
                  | Some p ->
                      ps.ps_withdraw <- p :: ps.ps_withdraw;
                      go lineno' acc cur None rest)
              | "intent" :: "rcl" :: _ ->
                  (* the RCL spec is the raw remainder of the line,
                     whitespace preserved *)
                  let marker = "intent rcl " in
                  let idx =
                    (* position of the spec within the *trimmed* line *)
                    String.length marker
                  in
                  let spec =
                    if String.length line > idx then
                      String.sub line idx (String.length line - idx)
                    else ""
                  in
                  if String.trim spec = "" then err lineno "empty RCL intent"
                  else begin
                    ps.ps_intents <-
                      Intents.Route_change spec :: ps.ps_intents;
                    go lineno' acc cur None rest
                  end
              | "intent" :: "reach" :: reach_rest -> (
                  match parse_reach lineno reach_rest with
                  | Error e -> Error e
                  | Ok i ->
                      ps.ps_intents <- i :: ps.ps_intents;
                      go lineno' acc cur None rest)
              | _ -> err lineno "unexpected line in request %s: %S" ps.ps_id line))
  in
  go 1 [] None None lines

(* ------------------------------------------------------------------ *)
(* Transport: printing                                                 *)
(* ------------------------------------------------------------------ *)

let print (t : t) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "request %s %s tenant=%s" t.r_id
       (class_to_string t.r_class) t.r_tenant);
  Option.iter
    (fun s -> Buffer.add_string b (Printf.sprintf " snapshot=%s" s))
    t.r_snapshot;
  Option.iter
    (fun f -> Buffer.add_string b (Printf.sprintf " budget=%g" f))
    t.r_budget_s;
  if t.r_class = Whatif then
    Buffer.add_string b
      (Printf.sprintf " k=%d failures=%s" t.r_k (scope_to_string t.r_scope));
  if t.r_no_cache then Buffer.add_string b " no-cache";
  Buffer.add_char b '\n';
  List.iter
    (fun (dev, block) ->
      Buffer.add_string b ("plan " ^ dev ^ "\n");
      (* blocks end with a newline by construction; emit verbatim *)
      Buffer.add_string b block;
      if block = "" || block.[String.length block - 1] <> '\n' then
        Buffer.add_char b '\n';
      Buffer.add_string b "end-plan\n")
    t.r_plan.Cp.cp_commands;
  List.iter
    (fun p ->
      Buffer.add_string b ("withdraw " ^ Prefix.to_string p ^ "\n"))
    t.r_plan.Cp.cp_withdraw;
  List.iter
    (fun intent ->
      match intent with
      | Intents.Route_change spec ->
          Buffer.add_string b ("intent rcl " ^ spec ^ "\n")
      | Intents.Route_reach { rr_prefix; rr_devices; rr_expect } ->
          Buffer.add_string b
            (Printf.sprintf "intent reach %s %s %s\n"
               (if rr_expect then "present" else "absent")
               (Prefix.to_string rr_prefix)
               (String.concat "," rr_devices))
      | other ->
          invalid_arg
            (Printf.sprintf
               "Request.print: intent %S has no transport syntax"
               (Intents.to_string other)))
    t.r_intents;
  Buffer.add_string b "end\n";
  Buffer.contents b
