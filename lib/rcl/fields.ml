(** Field accessors of the global RIB abstraction.

    RCL specifications reference route fields by name (Figure 6 shows the
    table columns).  Every field evaluates to a {!Value.t}; string-typed
    fields use the same canonical renderings as the parser, so literals in
    specifications compare correctly against field values. *)

open Hoyan_net

let known_fields =
  [
    "device"; "vrf"; "prefix"; "protocol"; "nexthop"; "localPref"; "med";
    "weight"; "preference"; "communities"; "aspath"; "origin"; "igpCost";
    "routeType"; "peer"; "tag"; "family";
  ]

let is_field name = List.mem name known_fields

(** [get field route] — raises [Invalid_argument] on unknown fields (the
    parser rejects them earlier). *)
let get (field : string) (r : Route.t) : Value.t =
  match field with
  | "device" -> Value.str r.Route.device
  | "vrf" -> Value.str r.Route.vrf
  | "prefix" -> Value.str (Prefix.to_string r.Route.prefix)
  | "protocol" -> Value.str (Route.proto_to_string r.Route.proto)
  | "nexthop" -> Value.str (Route.nexthop_string r)
  | "localPref" -> Value.of_int (Route.local_pref r)
  | "med" -> Value.of_int (Route.med r)
  | "weight" -> Value.of_int (Route.weight r)
  | "preference" -> Value.of_int r.Route.preference
  | "communities" ->
      Value.set_of_list
        (List.map
           (fun c -> Value.str (Community.to_string c))
           (Community.Set.to_list r.Route.communities))
  | "aspath" -> Value.str (As_path.to_string r.Route.as_path)
  | "origin" -> Value.str (Route.origin_to_string (Route.origin r))
  | "igpCost" -> Value.of_int r.Route.igp_cost
  | "routeType" -> Value.str (Route.route_type_to_string r.Route.route_type)
  | "peer" -> Value.str (Option.value r.Route.peer ~default:"none")
  | "tag" -> Value.of_int r.Route.tag
  | "family" -> Value.str (Ip.family_to_string (Prefix.family r.Route.prefix))
  | f -> invalid_arg (Printf.sprintf "Fields.get: unknown field %s" f)
