(** The route monitoring system (§2.1).

    Two collection modes, matching the paper:

    - [Bgp_agent]: the system peers with every router, so a router only
      {e advertises} its routes — the collected view misses the ECMP
      routes (only the best route per prefix is advertised), may have a
      rewritten next hop (some vendors modify the next hop even on iBGP
      advertisements), and drops attributes that do not propagate via BGP
      (weight, local preference on the wire is kept here since iBGP
      carries it, but weight and admin preference are reset).
    - [Bmp]: the BGP Monitoring Protocol mirrors the full BGP RIB
      faithfully (the paper's ongoing deployment).

    Both modes are subject to the injected {!Faults.t}. *)

open Hoyan_net

type mode = Bgp_agent | Bmp

type t = { mode : mode; faults : Faults.t list }

let create ?(mode = Bgp_agent) ?(faults = []) () = { mode; faults }

let agent_down (t : t) dev =
  List.exists
    (function Faults.Agent_down d -> String.equal d dev | _ -> false)
    t.faults

(** What the monitoring system collects, given the live network's true
    (global) RIB. *)
let observe (t : t) (true_rib : Route.t list) : Route.t list =
  let visible =
    List.filter
      (fun (r : Route.t) ->
        (not (agent_down t r.Route.device)) && r.Route.proto = Route.Bgp)
      true_rib
  in
  match t.mode with
  | Bmp -> visible
  | Bgp_agent ->
      (* only the best route of each (device, vrf, prefix) is advertised
         to the collector, and non-propagating attributes are lost *)
      visible
      |> List.filter (fun (r : Route.t) -> r.Route.route_type = Route.Best)
      |> List.map (fun (r : Route.t) ->
             {
               (Route.with_weight r 0) with
               Route.preference = 0;
               igp_cost = 0;
               (* the advertisement loses which peer it was learned from *)
               peer = None;
             })

(** The live network's [show] interface for selected prefixes (full
    fidelity, but strictly rate limited in production — the caller only
    queries high-priority prefixes). *)
let show_live (true_rib : Route.t list) ~(device : string)
    ~(prefix : Prefix.t) : Route.t list =
  List.filter
    (fun (r : Route.t) ->
      String.equal r.Route.device device && Prefix.equal r.Route.prefix prefix)
    true_rib
