(** Route simulation: input routes -> all routers' RIBs (paper §3.1).

    Wraps the BGP fixpoint engine with equivalence-class compression: one
    representative prefix is simulated per class and the resulting rows
    are replicated for the other members. *)

open Hoyan_net

type result = {
  rib : Route.t list;  (** the global RIB (BGP rows + local tables) *)
  bgp_stats : Hoyan_proto.Bgp.stats;
  input_count : int;  (** input routes submitted *)
  ec_count : int;  (** equivalence classes (simulation units) *)
  compression : float;  (** input routes / simulated routes *)
}

(** Run the route simulation for a model on the given input routes.

    - [use_ecs=false] disables EC compression (ablation; results must be
      identical, which the test suite checks).
    - [include_locals=false] omits connected/static/IS-IS rows from the
      result (distributed subtask workers use this; the rows live in the
      shared base RIB file instead).
    - [originate=false] also skips network statements and redistribution
      (again for subtask workers).
    - [new_routes] are additional inputs from the change plan, e.g. a new
      prefix announcement.
    - [only] restricts the whole simulation to a prefix set: inputs,
      origination (networks / redistribution / aggregates) and the
      local-table rows of the result are filtered by it, and the BGP
      fixpoint never injects a prefix outside it.  Sound iff the set is
      closed under aggregate contribution — see
      {!Hoyan_sim.Incremental}, which owns that closure and the
      selfcheck oracle for it.
    - [tm] (default: the process-global handle) receives EC-compression
      and fixpoint telemetry. *)
val run :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?use_ecs:bool ->
  ?include_locals:bool ->
  ?originate:bool ->
  ?only:(Prefix.t -> bool) ->
  Model.t ->
  input_routes:Route.t list ->
  ?new_routes:Route.t list ->
  unit ->
  result
