(** Traffic simulation: input flows -> forwarding paths and link loads
    (paper §3.1).

    Forwarding follows each router's FIB hop by hop; ECMP splits a flow's
    volume equally across equal-cost branches (BGP multipath and IGP
    ECMP); SR-policy tunnels override hop-by-hop forwarding towards their
    endpoints; PBR rules bound to the ingress interface override the FIB;
    interface ACLs drop matching traffic.  Flow equivalence classes
    (same LPM on every FIB, same ACL/PBR behaviour) reduce the number of
    walks. *)

open Hoyan_net

(** Per-device FIBs (default VRF), as longest-prefix-match tries. *)
type fib = (string, Route.t list Trie.Dual.t) Hashtbl.t

(** Build FIBs from a global RIB: per prefix, the selected (Best/Ecmp)
    routes of the lowest-admin-preference protocol are installed.  Leaf
    lists are [Route.compare]-sorted (trie contents depend on the row
    set, not list order).  [keep] restricts the build to a device
    subset. *)
val build_fibs : ?keep:(string -> bool) -> Route.t list -> fib

(** Reuse [base]'s tries for clean devices; rebuild only [dirty] devices
    from the given (spliced) global RIB.  Identical to a from-scratch
    [build_fibs] when every changed device is marked dirty — the
    incremental engine's FIB path. *)
val rebuild_fibs : base:fib -> dirty:(string -> bool) -> Route.t list -> fib

val fib_lookup : fib -> string -> Ip.t -> (Prefix.t * Route.t list) option

type path = { hops : string list; fraction : float }

type walk_result = {
  w_paths : path list;  (** delivered paths (capped at 128) *)
  w_edges : ((string * string) * float) list;  (** traversed edge fractions *)
  w_delivered : float;
  w_dropped : float;
  w_looped : float;
}

(** Walk one flow from its ingress device (used directly by the
    root-cause analysis workflow, §5.2). *)
val walk_flow : Model.t -> fib -> Flow.t -> walk_result

(** The flow's equivalence-class key: ingress, the destination's LPM
    result on every FIB, and the ACL/PBR match signature.  Reference
    implementation, O(devices) per flow — {!run} uses the precomputed
    {!ec_ctx} path instead. *)
val flow_ec_key : Model.t -> fib -> Flow.t -> string

(** Precomputed EC-keying context: a union trie of every installed
    prefix (one LPM keys the whole per-device LPM vector) plus resolved
    ACL/PBR match contexts. *)
type ec_ctx

val ec_ctx : Model.t -> fib -> ec_ctx

(** O(address-bits) EC key; partitions at least as finely as
    {!flow_ec_key} (flows it merges are merged by the reference key). *)
val flow_ec_key_pre : ec_ctx -> Flow.t -> string

type flow_result = {
  f_flow : Flow.t;
  f_paths : path list;
  f_delivered : float;
  f_dropped : float;
  f_looped : float;
}

type result = {
  flow_results : flow_result list;
  link_load : (string * string, float) Hashtbl.t;  (** bits per second *)
  flow_count : int;  (** total represented flow population *)
  ec_count : int;
  compression : float;  (** flow records / equivalence classes *)
}

(** Simulate all flows against a global RIB.  [use_ecs=false] walks every
    record individually (ablation; loads must agree).  [fibs] and [ecx]
    supply a prebuilt FIB set and EC-keying context (then [rib] is
    ignored) — used by the domain-parallel traffic phase to build both
    once and share them read-only across workers. *)
val run :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?use_ecs:bool ->
  ?fibs:fib ->
  ?ecx:ec_ctx ->
  Model.t ->
  rib:Route.t list ->
  flows:Flow.t list ->
  unit ->
  result

(** Per-directed-link (link, load, utilization) triples. *)
val utilizations :
  Model.t -> result -> ((string * string) * float * float) list
