(** Incremental delta simulation (DESIGN.md §2.10; paper §1's
    production loop).

    A {!ctx} is a persistent converged-base context: the parsed base
    model, its converged global RIB split into an arena-indexed BGP part
    ({!Hoyan_net.Rib.Arena} over a {!Hoyan_net.Rib.Key} universe of the
    base rows) and the local tables, the base FIB tries and the traffic
    EC context — captured once per base (from [Preprocess.base] or a
    server snapshot) and shared read-only across change plans.

    {!simulate} re-runs the BGP fixpoint {e only inside the dirty
    region} that [Differential] computes for the plan: the dirty prefix
    set (every universe prefix [Differential.prefix_affected] flags,
    closed under aggregate contribution in both directions) restricts
    the fixpoint via [Route_sim.run ~only], and the resulting rows are
    {e spliced} into the cached arena — clean base rows are kept
    ([Rib.Arena.filter]), dirty ones replaced by the delta rows, local
    tables swapped for the patched model's.  FIB tries are rebuilt only
    for dirty devices ([Traffic_sim.rebuild_fibs]); clean devices share
    the base tries (sound because FIB leaves are order-canonical).

    Soundness contract: the spliced RIB is byte-identical (as a
    canonically sorted row list) to a full from-scratch simulation of
    the patched model, and the traffic result computed over the spliced
    FIBs is float-identical to a from-scratch one.  {!selfcheck} is the
    oracle; plans the engine cannot restrict (topology ops — the dirty
    universe is not enumerable) honestly fall back to a full run and are
    counted ({!stats}, [hoyan_inc_fallback_total]). *)

open Hoyan_net
module Cp := Hoyan_config.Change_plan
module Differential := Hoyan_analysis.Differential

type ctx

(** Capture a converged base.  [rib] must be the model's fully converged
    global RIB (BGP rows + local tables, any order).  Forces nothing
    else; FIB tries and the EC context are built eagerly (they are the
    shared part), the rest is indexing. *)
val capture :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  model:Model.t ->
  input_routes:Route.t list ->
  flows:Flow.t list ->
  rib:Route.t list ->
  unit ->
  ctx

val base_model : ctx -> Model.t
val base_rib : ctx -> Route.t list

(** The shared base FIB tries and traffic EC context (read-only; what
    clean devices reuse across plans). *)
val base_fibs : ctx -> Traffic_sim.fib

val base_ec_ctx : ctx -> Traffic_sim.ec_ctx

(** Per-plan outcome accounting (honest counters for the bench and the
    server's telemetry). *)
type stats = {
  st_class : Differential.classification;
  st_full_fallback : bool;  (** the plan was too broad; a full run ran *)
  st_fallback_reason : string option;
  st_dirty_prefixes : int;  (** prefixes re-converged *)
  st_dirty_devices : int;  (** devices whose FIB tries were rebuilt *)
  st_reused_rows : int;  (** base rows spliced through unchanged *)
  st_delta_rows : int;  (** rows produced by the restricted fixpoint *)
}

(** A spliced simulation: the patched model, the canonical updated RIB
    (sorted with [Route.compare], deduplicated — the order
    [Rib.Arena.merge] emits), and lazily the spliced FIBs / EC context /
    traffic result over the context's flows.  Reusable across requests
    for the same (snapshot, plan): everything inside is immutable or
    memoized. *)
type sim = {
  s_plan : Cp.t;
  s_model : Model.t;
  s_reports : Cp.apply_report list;
  s_diff : Differential.diff;
  s_rib : Route.t list;
  s_stats : stats;
  s_fibs : Traffic_sim.fib Lazy.t;
  s_ecx : Traffic_sim.ec_ctx Lazy.t;
  s_traffic : Traffic_sim.result Lazy.t;
}

(** Run a change plan against the base context.  [d] supplies an
    already-computed differential for the same plan (the verify pipeline
    has one); omitted, it is computed here.  [prune_dirty] artificially
    drops prefixes from the computed dirty set — an oracle-testing knob
    (it makes the engine unsound on purpose so tests can prove the
    {!selfcheck} oracle catches under-approximation); never set it in
    production paths. *)
val simulate :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?d:Differential.diff ->
  ?prune_dirty:(Prefix.t -> bool) ->
  ctx ->
  Cp.t ->
  sim

(** The prefix restriction for a failure scenario whose property
    footprint reads only [prefixes]: the footprint set closed under
    aggregate contribution over the base universe.  [Kfailure] passes
    the result to [Route_sim.run ~only] on the failed model — per-prefix
    decomposability of the fixpoint makes the restricted run converge
    exactly the footprint's rows, without re-converging the rest of the
    WAN per scenario. *)
val scenario_only : ctx -> prefixes:Prefix.t list -> (Prefix.t -> bool)

(** Byte-identity oracle result. *)
type check = {
  ck_ok : bool;
  ck_rib_ok : bool;
  ck_traffic_ok : bool;
  ck_stats : stats;
  ck_missing : Route.t list;  (** rows the splice lost vs the full run *)
  ck_extra : Route.t list;  (** rows the splice invented *)
}

(** Run [simulate] and an independent full from-scratch patched
    simulation, and compare: canonical RIB row lists must be equal
    ([Route.compare]-identical row for row) and, unless [traffic:false],
    link loads and per-flow delivered/dropped/looped fractions must be
    float-identical. *)
val selfcheck :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?traffic:bool ->
  ?prune_dirty:(Prefix.t -> bool) ->
  ctx ->
  Cp.t ->
  check

(** Cumulative context counters: (simulates, full fallbacks). *)
val counters : ctx -> int * int
