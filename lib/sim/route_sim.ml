(** Route simulation: input routes -> all routers' RIBs.

    Wraps the BGP fixpoint engine with the equivalence-class compression
    of §3.1: one representative per EC is simulated and the resulting RIB
    rows are replicated for the other members (same rows, member's
    prefix).  Aggregate-prefix rows are never expanded (EC condition (2)
    guarantees all members trigger the same aggregates, so the aggregate
    rows are shared) — they are emitted once. *)

open Hoyan_net
module Smap = Map.Make (String)
module Bgp = Hoyan_proto.Bgp
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal

type result = {
  rib : Route.t list; (* the global RIB: BGP + local-table routes *)
  bgp_stats : Bgp.stats;
  input_count : int;
  ec_count : int;
  compression : float;
}

(** Rows produced for the representative's prefix, re-keyed to a member
    prefix of the same class. *)
let expand_rows (rows : Route.t list) (member : Prefix.t) : Route.t list =
  List.map (fun (r : Route.t) -> { r with Route.prefix = member }) rows

(** Run the route simulation.

    [use_ecs=false] disables EC compression (ablation).  [new_routes] are
    additional input routes from the change plan (e.g. a new prefix
    announcement); they are simulated alongside the pre-computed inputs. *)
let ev_result (tm : Telemetry.t) (r : result) =
  if Telemetry.enabled tm then begin
    Telemetry.count tm "hoyan_route_fixpoint_rounds_total"
      r.bgp_stats.Bgp.st_rounds;
    Telemetry.observe tm ~labels:[ ("phase", "route") ]
      "hoyan_ec_compression_ratio" r.compression;
    Telemetry.event tm "route_sim.done"
      [
        ("inputs", Journal.I r.input_count);
        ("ecs", Journal.I r.ec_count);
        ("compression", Journal.F r.compression);
        ("rounds", Journal.I r.bgp_stats.Bgp.st_rounds);
        ("messages", Journal.I r.bgp_stats.Bgp.st_messages);
        ("rib_rows", Journal.I (List.length r.rib));
      ]
  end

let run ?tm ?(use_ecs = true) ?(include_locals = true) ?(originate = true)
    ?only (model : Model.t) ~(input_routes : Route.t list) ?(new_routes = [])
    () : result =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let keep =
    match only with None -> fun (_ : Prefix.t) -> true | Some f -> f
  in
  let all_inputs =
    match only with
    | None -> input_routes @ new_routes
    | Some _ ->
        List.filter
          (fun (r : Route.t) -> keep r.Route.prefix)
          (input_routes @ new_routes)
  in
  let input_count = List.length all_inputs in
  let local_rows () =
    Smap.fold
      (fun _ rs acc ->
        List.fold_left
          (fun acc (r : Route.t) ->
            if keep r.Route.prefix then r :: acc else acc)
          acc rs)
      model.Model.local_tables []
  in
  if not use_ecs then begin
    let rib, stats =
      Bgp.run ~tm ~originate ?only model.Model.net
        { Bgp.in_routes = all_inputs; in_local_tables = model.Model.local_tables }
    in
    let locals = if not include_locals then [] else local_rows () in
    let res =
      {
        rib = rib @ locals;
        bgp_stats = stats;
        input_count;
        ec_count = input_count;
        compression = 1.0;
      }
    in
    ev_result tm res;
    res
  end
  else begin
    let sig_ctx =
      Telemetry.with_span tm "route.ec_group" (fun () ->
          Ec.signature_ctx model.Model.configs)
    in
    let groups = Ec.group_routes sig_ctx all_inputs in
    let reps = Ec.simulated_routes groups in
    let rib, stats =
      Telemetry.with_span tm "route.fixpoint" (fun () ->
          Bgp.run ~tm ~originate ?only model.Model.net
            { Bgp.in_routes = reps; in_local_tables = model.Model.local_tables })
    in
    (* index resulting rows by prefix for expansion *)
    let rows_by_prefix = Hashtbl.create 1024 in
    List.iter
      (fun (r : Route.t) ->
        let existing =
          Option.value (Hashtbl.find_opt rows_by_prefix r.Route.prefix)
            ~default:[]
        in
        Hashtbl.replace rows_by_prefix r.Route.prefix (r :: existing))
      rib;
    let expanded =
      List.concat_map
        (fun (g : Ec.group) ->
          let rep_rows =
            Option.value (Hashtbl.find_opt rows_by_prefix g.Ec.rep_prefix)
              ~default:[]
          in
          List.concat_map
            (fun member ->
              if Prefix.equal member g.Ec.rep_prefix then []
              else expand_rows rep_rows member)
            g.Ec.member_prefixes)
        groups
    in
    let locals = if not include_locals then [] else local_rows () in
    let res =
      {
        rib = rib @ expanded @ locals;
        bgp_stats = stats;
        input_count;
        ec_count = List.length groups;
        compression = Ec.compression groups;
      }
    in
    ev_result tm res;
    res
  end
