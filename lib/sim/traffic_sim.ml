(** Traffic simulation: input flows -> forwarding paths and link loads.

    After route simulation produces the RIBs, Hoyan simulates the
    forwarding of all input flows by following each router's FIB (§3.1),
    producing per-flow forwarding paths and per-link traffic loads.  Flow
    equivalence classes (same longest-prefix match on all RIBs, plus the
    same ACL/PBR behaviour) reduce the number of simulated flows by about
    two orders of magnitude in production.

    ECMP is modelled by splitting a flow's volume equally across equal-
    cost branches (both BGP multipath and IGP ECMP); SR-policy tunnels
    override hop-by-hop forwarding for next hops that are tunnel
    endpoints; PBR rules bound to the ingress interface override the FIB;
    interface ACLs drop matching traffic. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Isis = Hoyan_proto.Isis
module Sr = Hoyan_proto.Sr
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal
module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* FIB construction                                                    *)
(* ------------------------------------------------------------------ *)

type fib = (string, Route.t list Trie.Dual.t) Hashtbl.t

(** Build per-device FIBs (default VRF) from a global RIB: per prefix the
    lowest-preference protocol wins, and its Best/Ecmp routes are
    installed.  Leaf route lists are [Route.compare]-sorted, so the trie
    contents are a function of the RIB's row {e set} — never its list
    order.  That canonicalization is what lets the incremental engine
    share clean-device tries between a base build and a spliced rebuild
    ({!rebuild_fibs}) with byte-identical traffic results.  [keep]
    restricts the build to a device subset (the splice's dirty set). *)
let build_fibs ?(keep = fun (_ : string) -> true) (rib : Route.t list) : fib =
  (* group per device, prefix *)
  let tbl : (string * Prefix.t, Route.t list) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun (r : Route.t) ->
      if String.equal r.Route.vrf Route.default_vrf && keep r.Route.device
      then begin
        let key = (r.Route.device, r.Route.prefix) in
        let existing = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
        Hashtbl.replace tbl key (r :: existing)
      end)
    rib;
  (* batch-build one mutable trie builder per device: the persistent
     [Trie.Dual.add] copies a whole spine per prefix, which dominated FIB
     construction time on WAN-scale RIBs *)
  let builders : (string, Route.t list Trie.Dual.Builder.builder) Hashtbl.t =
    Hashtbl.create 64
  in
  Hashtbl.iter
    (fun (dev, prefix) routes ->
      (* protocol selection happens among the *selected* (Best/Ecmp)
         routes only: BGP has already picked its best path(s), and the
         admin preference then arbitrates between protocols *)
      let selected =
        List.filter
          (fun (r : Route.t) ->
            match r.Route.route_type with
            | Route.Best | Route.Ecmp -> true
            | Route.Backup -> false)
          routes
      in
      let min_pref =
        List.fold_left (fun m (r : Route.t) -> min m r.Route.preference)
          max_int selected
      in
      let installed =
        List.filter
          (fun (r : Route.t) -> r.Route.preference = min_pref)
          selected
        |> List.sort Route.compare
      in
      if installed <> [] then begin
        let b =
          match Hashtbl.find_opt builders dev with
          | Some b -> b
          | None ->
              let b = Trie.Dual.Builder.create () in
              Hashtbl.add builders dev b;
              b
        in
        Trie.Dual.Builder.add b prefix installed
      end)
    tbl;
  let fibs : fib = Hashtbl.create (Hashtbl.length builders) in
  Hashtbl.iter
    (fun dev b -> Hashtbl.replace fibs dev (Trie.Dual.Builder.build b))
    builders;
  fibs

(** Splice-rebuild: reuse the [base] tries of every clean device and
    rebuild only the [dirty] ones from the (spliced) global RIB.  Because
    {!build_fibs} leaves are order-canonical, a clean device's shared
    trie is identical to what a from-scratch build over the spliced RIB
    would produce. *)
let rebuild_fibs ~(base : fib) ~(dirty : string -> bool)
    (rib : Route.t list) : fib =
  let fibs = build_fibs ~keep:dirty rib in
  Hashtbl.iter
    (fun dev trie -> if not (dirty dev) then Hashtbl.replace fibs dev trie)
    base;
  fibs

let fib_lookup (fibs : fib) dev (addr : Ip.t) :
    (Prefix.t * Route.t list) option =
  match Hashtbl.find_opt fibs dev with
  | None -> None
  | Some trie -> Trie.Dual.longest_match trie addr

(* ------------------------------------------------------------------ *)
(* Flow walking                                                        *)
(* ------------------------------------------------------------------ *)

type path = { hops : string list; fraction : float }

type walk_result = {
  w_paths : path list; (* delivered paths (capped) *)
  w_edges : ((string * string) * float) list; (* traversed edge fractions *)
  w_delivered : float;
  w_dropped : float;
  w_looped : float;
}

let max_depth = 64
let max_paths = 128

type walker = {
  wk_model : Model.t;
  wk_fibs : fib;
  mutable wk_paths : path list;
  mutable wk_npaths : int;
  wk_edges : (string * string, float) Hashtbl.t;
  mutable wk_delivered : float;
  mutable wk_dropped : float;
  mutable wk_looped : float;
}

let record_edge wk src dst frac =
  let key = (src, dst) in
  let cur = Option.value (Hashtbl.find_opt wk.wk_edges key) ~default:0. in
  Hashtbl.replace wk.wk_edges key (cur +. frac)

let record_path wk hops frac =
  wk.wk_delivered <- wk.wk_delivered +. frac;
  if wk.wk_npaths < max_paths then begin
    wk.wk_paths <- { hops = List.rev hops; fraction = frac } :: wk.wk_paths;
    wk.wk_npaths <- wk.wk_npaths + 1
  end

(** The in-interface at [next] when arriving from [cur]. *)
let in_iface_at (model : Model.t) ~cur ~next =
  match Topology.edge_between model.Model.topo cur next with
  | Some e -> Some e.Topology.dst_if
  | None -> None

let acl_matches_flow cfg acl_name (f : Flow.t) =
  match Types.find_acl cfg acl_name with
  | None -> None
  | Some acl ->
      Types.acl_eval acl ~src:f.Flow.src ~dst:f.Flow.dst ~proto:f.Flow.ip_proto
        ~dport:f.Flow.dport

(** Follow an SR tunnel's explicit path, recording edges; returns the tail
    device (or None when the path is broken in the current topology). *)
let follow_tunnel wk (tunnel : Sr.tunnel) frac : string option =
  let rec go = function
    | a :: (b :: _ as rest) ->
        if Option.is_some (Topology.edge_between wk.wk_model.Model.topo a b)
        then begin
          record_edge wk a b frac;
          go rest
        end
        else None
    | [ last ] -> Some last
    | [] -> None
  in
  go tunnel.Sr.tn_path

let rec walk wk (f : Flow.t) ~dev ~in_iface ~frac ~visited ~hops ~depth =
  if frac < 1e-9 then ()
  else if depth > max_depth || List.mem dev visited then
    wk.wk_looped <- wk.wk_looped +. frac
  else
    let model = wk.wk_model in
    let cfg = Smap.find_opt dev model.Model.configs in
    (* 1. ingress ACL *)
    let dropped_by_acl =
      match (cfg, in_iface) with
      | Some cfg, Some ifname -> (
          match Types.iface cfg ifname with
          | Some i -> (
              match i.Types.if_acl_in with
              | Some acl -> (
                  match acl_matches_flow cfg acl f with
                  | Some Types.Deny -> true
                  | Some Types.Permit | None -> false)
              | None -> false)
          | None -> false)
      | _ -> false
    in
    if dropped_by_acl then wk.wk_dropped <- wk.wk_dropped +. frac
    else
      (* 2. PBR override on the ingress interface *)
      let pbr_nh =
        match (cfg, in_iface) with
        | Some cfg, Some ifname ->
            List.find_map
              (fun (p : Types.pbr_rule) ->
                if
                  String.equal p.Types.pbr_iface ifname
                  && (match acl_matches_flow cfg p.Types.pbr_acl f with
                     | Some Types.Permit -> true
                     | Some Types.Deny | None -> false)
                then Some p.Types.pbr_nexthop
                else None)
              cfg.Types.dc_pbr
        | _ -> None
      in
      let nexthops =
        match pbr_nh with
        | Some nh -> `Forward [ Some nh ]
        | None -> (
            match fib_lookup wk.wk_fibs dev f.Flow.dst with
            | None -> `NoRoute
            | Some (_, routes) ->
                let delivered =
                  List.exists
                    (fun (r : Route.t) -> r.Route.proto = Route.Direct)
                    routes
                in
                if delivered then `Delivered
                else `Forward (List.map (fun r -> r.Route.nexthop) routes))
      in
      match nexthops with
      | `NoRoute -> wk.wk_dropped <- wk.wk_dropped +. frac
      | `Delivered -> record_path wk (dev :: hops) frac
      | `Forward nhs ->
          let n = List.length nhs in
          let sub_frac = frac /. float_of_int n in
          List.iter
            (fun nh ->
              match nh with
              | None ->
                  (* locally originated route selected: treat as delivered
                     at this device (e.g. an aggregate originator) *)
                  record_path wk (dev :: hops) sub_frac
              | Some nh -> (
                  (* SR tunnel override *)
                  let tunnels =
                    Option.value (Smap.find_opt dev model.Model.tunnels)
                      ~default:[]
                  in
                  match Sr.tunnel_to tunnels nh with
                  | Some tunnel -> (
                      match follow_tunnel wk tunnel sub_frac with
                      | Some tail ->
                          let tunnel_hops =
                            List.rev (List.tl tunnel.Sr.tn_path)
                          in
                          walk wk f ~dev:tail ~in_iface:None ~frac:sub_frac
                            ~visited:(dev :: visited)
                            ~hops:(tunnel_hops @ hops)
                            ~depth:(depth + 1)
                      | None -> wk.wk_dropped <- wk.wk_dropped +. sub_frac)
                  | None -> (
                      (* who owns the next hop? *)
                      match Model.owner model nh with
                      | Some owner_dev when String.equal owner_dev dev ->
                          record_path wk (dev :: hops) sub_frac
                      | Some owner_dev ->
                          (* recursive next hop: the packet is carried to
                             the next-hop router over the IGP (an SRv6 /
                             tunnel underlay on the paper's WAN — transit
                             routers forward on the outer address and do
                             NOT re-look-up the inner destination, which
                             is what prevents default-vs-specific
                             deflection loops); the next IP lookup happens
                             at the next-hop router.  [trail] is the
                             reversed device path including the current
                             position. *)
                          let rec igp_walk cur frac trail depth =
                            if frac < 1e-9 then ()
                            else if depth > max_depth then
                              wk.wk_looped <- wk.wk_looped +. frac
                            else if String.equal cur owner_dev then
                              let in_iface =
                                match trail with
                                | _ :: prev :: _ ->
                                    in_iface_at model ~cur:prev ~next:cur
                                | _ -> None
                              in
                              walk wk f ~dev:cur ~in_iface ~frac
                                ~visited:(dev :: visited)
                                ~hops:(List.tl trail) ~depth:(depth + 1)
                            else
                              match
                                Isis.first_hops model.Model.igp ~src:cur
                                  ~dst:owner_dev
                              with
                              | [] -> wk.wk_dropped <- wk.wk_dropped +. frac
                              | nexts ->
                                  let m = List.length nexts in
                                  let leg = frac /. float_of_int m in
                                  List.iter
                                    (fun next ->
                                      record_edge wk cur next leg;
                                      igp_walk next leg (next :: trail)
                                        (depth + 1))
                                    nexts
                          in
                          igp_walk dev sub_frac (dev :: hops) depth
                      | None ->
                          (* unmodeled next hop: if it sits on one of our
                             connected subnets (e.g. an external peering
                             /31), the flow exits the network here;
                             otherwise it is unroutable *)
                          let exits =
                            match cfg with
                            | Some cfg ->
                                List.exists
                                  (fun (i : Types.iface_config) ->
                                    match Types.iface_subnet i with
                                    | Some subnet -> Prefix.mem nh subnet
                                    | None -> false)
                                  cfg.Types.dc_ifaces
                            | None -> false
                          in
                          if exits then record_path wk (dev :: hops) sub_frac
                          else wk.wk_dropped <- wk.wk_dropped +. sub_frac)))
            nhs

(** Walk one flow from its ingress device. *)
let walk_flow (model : Model.t) (fibs : fib) (f : Flow.t) : walk_result =
  let wk =
    {
      wk_model = model;
      wk_fibs = fibs;
      wk_paths = [];
      wk_npaths = 0;
      wk_edges = Hashtbl.create 16;
      wk_delivered = 0.;
      wk_dropped = 0.;
      wk_looped = 0.;
    }
  in
  walk wk f ~dev:f.Flow.ingress ~in_iface:None ~frac:1.0 ~visited:[] ~hops:[]
    ~depth:0;
  {
    w_paths = List.rev wk.wk_paths;
    w_edges = Hashtbl.fold (fun k v acc -> (k, v) :: acc) wk.wk_edges [];
    w_delivered = wk.wk_delivered;
    w_dropped = wk.wk_dropped;
    w_looped = wk.wk_looped;
  }

(* ------------------------------------------------------------------ *)
(* Flow equivalence classes                                            *)
(* ------------------------------------------------------------------ *)

(** EC key of a flow: ingress device, the LPM result on every device's
    FIB for the destination, and the flow's ACL/PBR match signature. *)
let flow_ec_key (model : Model.t) (fibs : fib) (f : Flow.t) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b f.Flow.ingress;
  Buffer.add_char b '|';
  Hashtbl.iter
    (fun dev trie ->
      match Trie.Dual.longest_match trie f.Flow.dst with
      | Some (p, _) ->
          Buffer.add_string b dev;
          Buffer.add_char b '=';
          Buffer.add_string b (Prefix.to_string p);
          Buffer.add_char b ';'
      | None -> ())
    fibs;
  (* ACL / PBR signature *)
  Smap.iter
    (fun dev cfg ->
      let eval name =
        match acl_matches_flow cfg name f with
        | Some Types.Permit -> 'P'
        | Some Types.Deny -> 'D'
        | None -> '-'
      in
      List.iter
        (fun (p : Types.pbr_rule) ->
          Buffer.add_string b dev;
          Buffer.add_char b (eval p.Types.pbr_acl))
        cfg.Types.dc_pbr;
      List.iter
        (fun (i : Types.iface_config) ->
          match i.Types.if_acl_in with
          | Some acl -> Buffer.add_char b (eval acl)
          | None -> ())
        cfg.Types.dc_ifaces)
    model.Model.configs;
  Buffer.contents b

(* Hashtbl.iter order is unspecified but deterministic for a given table
   construction; keys only need to be consistent within one run. *)

(** Precomputed flow-EC keying context.

    The reference {!flow_ec_key} walks {e every} device's FIB per flow
    (O(devices) LPM walks) and re-resolves every ACL name per flow.  The
    prefixes installed on any FIB partition the address space: two
    destinations whose longest match in the {e union} of all installed
    prefixes is the same node match the identical chain of prefixes, and
    therefore have the same LPM on every individual device.  One LPM walk
    over a precomputed union trie thus keys the whole per-device LPM
    vector, making EC keying O(address bits) instead of O(devices).  The
    union partition is at least as fine as the per-device vector, so
    flows merged by this key are merged by the reference key too
    (soundness); the ACL/PBR signature is unchanged, evaluated over
    match contexts resolved once per run. *)
type ec_ctx = {
  ecx_union : unit Trie.Dual.t; (* every prefix installed on any FIB *)
  ecx_pbr : (string * Types.t * Types.acl) array;
      (* device, its config, the resolved PBR-steering ACL *)
  ecx_acl : (Types.t * Types.acl) array; (* config, resolved ingress ACL *)
}

let ec_ctx (model : Model.t) (fibs : fib) : ec_ctx =
  let b = Trie.Dual.Builder.create () in
  Hashtbl.iter
    (fun _dev trie ->
      ignore
        (Trie.Dual.fold (fun p _ () -> Trie.Dual.Builder.add b p ()) trie ()))
    fibs;
  let pbr = ref [] and acl = ref [] in
  Smap.iter
    (fun dev cfg ->
      List.iter
        (fun (p : Types.pbr_rule) ->
          match Types.find_acl cfg p.Types.pbr_acl with
          | Some a -> pbr := (dev, cfg, a) :: !pbr
          | None -> ())
        cfg.Types.dc_pbr;
      List.iter
        (fun (i : Types.iface_config) ->
          match i.Types.if_acl_in with
          | Some name -> (
              match Types.find_acl cfg name with
              | Some a -> acl := (cfg, a) :: !acl
              | None -> ())
          | None -> ())
        cfg.Types.dc_ifaces)
    model.Model.configs;
  {
    ecx_union = Trie.Dual.Builder.build b;
    ecx_pbr = Array.of_list (List.rev !pbr);
    ecx_acl = Array.of_list (List.rev !acl);
  }

let eval_char (a : Types.acl) (f : Flow.t) =
  match
    Types.acl_eval a ~src:f.Flow.src ~dst:f.Flow.dst ~proto:f.Flow.ip_proto
      ~dport:f.Flow.dport
  with
  | Some Types.Permit -> 'P'
  | Some Types.Deny -> 'D'
  | None -> '-'

(** O(path) flow-EC key via the precomputed context: ingress, the union
    LPM of the destination, and the ACL/PBR match signature. *)
let flow_ec_key_pre (ecx : ec_ctx) (f : Flow.t) : string =
  let b = Buffer.create 64 in
  Buffer.add_string b f.Flow.ingress;
  Buffer.add_char b '|';
  (match Trie.Dual.longest_match ecx.ecx_union f.Flow.dst with
  | Some (p, ()) -> Buffer.add_string b (Prefix.to_string p)
  | None -> ());
  Buffer.add_char b '|';
  Array.iter
    (fun (dev, _cfg, a) ->
      Buffer.add_string b dev;
      Buffer.add_char b (eval_char a f))
    ecx.ecx_pbr;
  Array.iter (fun (_cfg, a) -> Buffer.add_char b (eval_char a f)) ecx.ecx_acl;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Top-level run                                                       *)
(* ------------------------------------------------------------------ *)

type flow_result = {
  f_flow : Flow.t;
  f_paths : path list;
  f_delivered : float;
  f_dropped : float;
  f_looped : float;
}

type result = {
  flow_results : flow_result list;
  link_load : (string * string, float) Hashtbl.t; (* bits per second *)
  flow_count : int; (* total flow population *)
  ec_count : int;
  compression : float;
}

let ev_result (tm : Telemetry.t) (r : result) =
  if Telemetry.enabled tm then begin
    Telemetry.observe tm ~labels:[ ("phase", "traffic") ]
      "hoyan_ec_compression_ratio" r.compression;
    Telemetry.event tm "traffic_sim.done"
      [
        ("flows", Journal.I (List.length r.flow_results));
        ("ecs", Journal.I r.ec_count);
        ("compression", Journal.F r.compression);
        ("links_loaded", Journal.I (Hashtbl.length r.link_load));
      ]
  end

let run ?tm ?(use_ecs = true) ?fibs ?ecx (model : Model.t)
    ~(rib : Route.t list) ~(flows : Flow.t list) () : result =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let fibs =
    match fibs with
    | Some f -> f
    | None ->
        Telemetry.with_span tm
          ~args:[ ("rib_rows", string_of_int (List.length rib)) ]
          "traffic.build_fibs"
          (fun () -> build_fibs rib)
  in
  let link_load : (string * string, float) Hashtbl.t = Hashtbl.create 1024 in
  let add_load edges volume =
    List.iter
      (fun (key, frac) ->
        let cur = Option.value (Hashtbl.find_opt link_load key) ~default:0. in
        Hashtbl.replace link_load key (cur +. (frac *. volume)))
      edges
  in
  let total_population =
    List.fold_left (fun n (f : Flow.t) -> n + f.Flow.population) 0 flows
  in
  if not use_ecs then begin
    let flow_results =
      List.map
        (fun (f : Flow.t) ->
          let w = walk_flow model fibs f in
          add_load w.w_edges (f.Flow.volume *. float_of_int f.Flow.population);
          {
            f_flow = f;
            f_paths = w.w_paths;
            f_delivered = w.w_delivered;
            f_dropped = w.w_dropped;
            f_looped = w.w_looped;
          })
        flows
    in
    let res =
      {
        flow_results;
        link_load;
        flow_count = total_population;
        ec_count = List.length flows;
        compression = 1.0;
      }
    in
    ev_result tm res;
    res
  end
  else begin
    (* group flows into ECs (one union-trie LPM per flow, not one walk
       per device; see {!ec_ctx}) *)
    let ecx = match ecx with Some e -> e | None -> ec_ctx model fibs in
    let groups : (string, Flow.t list) Hashtbl.t = Hashtbl.create 1024 in
    let order = ref [] in
    List.iter
      (fun f ->
        let k = flow_ec_key_pre ecx f in
        match Hashtbl.find_opt groups k with
        | Some fs -> Hashtbl.replace groups k (f :: fs)
        | None ->
            Hashtbl.add groups k [ f ];
            order := k :: !order)
      flows;
    let flow_results =
      List.concat_map
        (fun k ->
          let members = List.rev (Hashtbl.find groups k) in
          let rep = List.hd members in
          let w = walk_flow model fibs rep in
          List.map
            (fun (f : Flow.t) ->
              add_load w.w_edges
                (f.Flow.volume *. float_of_int f.Flow.population);
              {
                f_flow = f;
                f_paths = w.w_paths;
                f_delivered = w.w_delivered;
                f_dropped = w.w_dropped;
                f_looped = w.w_looped;
              })
            members)
        (List.rev !order)
    in
    let ec_count = Hashtbl.length groups in
    let res =
      {
        flow_results;
        link_load;
        flow_count = total_population;
        ec_count;
        compression =
          (if ec_count = 0 then 1.0
           else float_of_int (List.length flows) /. float_of_int ec_count);
      }
    in
    ev_result tm res;
    res
  end

(** Utilization of each directed link: load / bandwidth. *)
let utilizations (model : Model.t) (res : result) :
    ((string * string) * float * float) list =
  Hashtbl.fold
    (fun (src, dst) load acc ->
      let bw =
        match Topology.edge_between model.Model.topo src dst with
        | Some e -> e.Topology.bandwidth
        | None -> infinity
      in
      ((src, dst), load, load /. bw) :: acc)
    res.link_load []
