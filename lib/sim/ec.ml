(** Equivalence classes of input routes (§3.1).

    Two input routes are equivalent when (1) they are injected into the
    same router and VRF, (2) their prefixes have the same matching results
    across all prefix sets in the network and trigger the same aggregate
    prefixes on all routers, and (3) they carry the same values for all
    BGP attributes.

    Because best-path selection interacts {e all} copies of a prefix (a
    multi-homed prefix announced at two routers is one simulation unit),
    the classes are materialized at the granularity of prefixes: two
    prefixes belong to the same class when their route multisets are
    pairwise equivalent under (1)–(3).  Hoyan then simulates the full
    route set of one representative prefix per class — "one route for
    each EC" — and replicates the resulting rows for the other member
    prefixes.  This gives a ~4x input reduction on the paper's WAN. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Smap = Map.Make (String)

(** Precomputed network-wide prefix-matching context: every prefix list
    of every device, plus all aggregates. *)
type signature_ctx = {
  sig_prefix_lists : (string * Types.prefix_list) list; (* dev#name, pl *)
  sig_aggregates : (string * Types.aggregate) list;
}

let signature_ctx (configs : Types.t Smap.t) : signature_ctx =
  let pls =
    Smap.fold
      (fun dev cfg acc ->
        Types.Smap.fold
          (fun name pl acc -> (dev ^ "#" ^ name, pl) :: acc)
          cfg.Types.dc_prefix_lists acc)
      configs []
  in
  let ags =
    Smap.fold
      (fun dev cfg acc ->
        List.fold_left
          (fun acc ag -> (dev, ag) :: acc)
          acc cfg.Types.dc_bgp.Types.bgp_aggregates)
      configs []
  in
  { sig_prefix_lists = pls; sig_aggregates = ags }

(** Condition (2): the prefix's matching results across all prefix sets
    and the aggregates it triggers. *)
let match_signature (ctx : signature_ctx) (p : Prefix.t) : string =
  let b = Buffer.create 128 in
  List.iter
    (fun (_, pl) ->
      let c =
        match Types.prefix_list_eval pl p with
        | Some Types.Permit -> 'P'
        | Some Types.Deny -> 'D'
        | None -> '-'
      in
      Buffer.add_char b c)
    ctx.sig_prefix_lists;
  List.iter
    (fun ((_, ag) : string * Types.aggregate) ->
      Buffer.add_char b
        (if
           Prefix.subsumes ag.Types.ag_prefix p
           && not (Prefix.equal ag.Types.ag_prefix p)
         then 'A'
         else '-'))
    ctx.sig_aggregates;
  Buffer.contents b

(** Condition (3): the propagating BGP attributes of one route.  The
    prefix length is included because exact-length prefix-list entries
    and ge/le windows can distinguish lengths even when containment
    results agree — conservative, never merges differing behaviours.

    This is the uninterned reference implementation; {!group_routes}
    uses {!attrs_signature_interned}, which discriminates identically
    (intern ids are injective exactly like the canonical renderings)
    but renders each distinct community set / AS path once per phase
    instead of once per route. *)
let attrs_signature (r : Route.t) : string =
  Printf.sprintf "%d|%d|%s|%s|%s|%s|%d" (Route.local_pref r) (Route.med r)
    (Community.Set.to_string r.Route.communities)
    (As_path.to_string r.Route.as_path)
    (Route.origin_to_string (Route.origin r))
    (Route.nexthop_string r)
    (Prefix.len r.Route.prefix)

let attrs_signature_interned ~(paths : Intern.As_paths.t)
    ~(comms : Intern.Communities.t) (r : Route.t) : string =
  Printf.sprintf "%d|%d|c%d|a%d|%s|%s|%d" (Route.local_pref r) (Route.med r)
    (Intern.Communities.intern comms r.Route.communities)
    (Intern.As_paths.intern paths r.Route.as_path)
    (Route.origin_to_string (Route.origin r))
    (Route.nexthop_string r)
    (Prefix.len r.Route.prefix)

(** The class key of a prefix given all its input routes: the match
    signature plus the sorted (device, vrf, attrs) multiset. *)
let prefix_key ?paths ?comms (ctx : signature_ctx) (p : Prefix.t)
    (routes : Route.t list) : string =
  let attrs =
    match (paths, comms) with
    | Some paths, Some comms -> attrs_signature_interned ~paths ~comms
    | _ -> attrs_signature
  in
  let route_sigs =
    List.map
      (fun (r : Route.t) ->
        Printf.sprintf "%s|%s|%s" r.Route.device r.Route.vrf (attrs r))
      routes
    |> List.sort String.compare
  in
  match_signature ctx p ^ "||" ^ String.concat "&&" route_sigs

type group = {
  rep_prefix : Prefix.t;
  rep_routes : Route.t list; (* all input routes of the representative *)
  member_prefixes : Prefix.t list; (* including the representative *)
}

(** Group the input routes into prefix-level equivalence classes.

    One pair of intern tables lives for the duration of the grouping
    (the per-phase table lifecycle): every distinct community set and
    AS path is interned on first sight and signatures carry the small
    ids, so repeated attribute values cost an id lookup instead of a
    full rendering.  The tables are frozen afterwards. *)
let group_routes (ctx : signature_ctx) (routes : Route.t list) : group list =
  let paths = Intern.As_paths.create () in
  let comms = Intern.Communities.create () in
  (* prefixes with their route sets, in first-appearance order *)
  let by_prefix = Hashtbl.create (List.length routes) in
  let order = ref [] in
  List.iter
    (fun (r : Route.t) ->
      match Hashtbl.find_opt by_prefix r.Route.prefix with
      | Some rs -> Hashtbl.replace by_prefix r.Route.prefix (r :: rs)
      | None ->
          Hashtbl.add by_prefix r.Route.prefix [ r ];
          order := r.Route.prefix :: !order)
    routes;
  let classes = Hashtbl.create 256 in
  let class_order = ref [] in
  List.iter
    (fun p ->
      let rs = List.rev (Hashtbl.find by_prefix p) in
      let k = prefix_key ~paths ~comms ctx p rs in
      match Hashtbl.find_opt classes k with
      | Some (rep_prefix, rep_routes, members) ->
          Hashtbl.replace classes k (rep_prefix, rep_routes, p :: members)
      | None ->
          Hashtbl.add classes k (p, rs, [ p ]);
          class_order := k :: !class_order)
    (List.rev !order);
  Intern.As_paths.freeze paths;
  Intern.Communities.freeze comms;
  List.rev_map
    (fun k ->
      let rep_prefix, rep_routes, members = Hashtbl.find classes k in
      { rep_prefix; rep_routes; member_prefixes = List.rev members })
    !class_order

(** Number of input routes that actually need simulating (the routes of
    the representative prefixes). *)
let simulated_routes (groups : group list) =
  List.concat_map (fun g -> g.rep_routes) groups

(** Compression ratio: total input routes / simulated input routes. *)
let compression (groups : group list) =
  let total =
    List.fold_left
      (fun n g ->
        n + (List.length g.rep_routes * List.length g.member_prefixes))
      0 groups
  in
  let simulated =
    List.fold_left (fun n g -> n + List.length g.rep_routes) 0 groups
  in
  if simulated = 0 then 1.0 else float_of_int total /. float_of_int simulated
