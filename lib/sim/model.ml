(** The compiled network model.

    The pre-processing "network model building service" (§2.2) parses all
    routers' configurations into Hoyan's internal model once a day; change
    verification then updates it incrementally.  This module compiles a
    topology plus per-device configurations into everything the simulators
    need: address ownership, BGP sessions, the IGP view, SR tunnels and
    the per-device local tables (connected + static routes). *)

open Hoyan_net
module Types = Hoyan_config.Types
module Vsb = Hoyan_config.Vsb
module Printer = Hoyan_config.Printer
module Isis = Hoyan_proto.Isis
module Sr = Hoyan_proto.Sr
module Bgp = Hoyan_proto.Bgp
module Smap = Map.Make (String)

type t = {
  topo : Topology.t;
  configs : Types.t Smap.t;
  igp : Isis.t;
  owner_tbl : (Ip.t, string) Hashtbl.t; (* address -> owning device *)
  net : Bgp.network;
  local_tables : Route.t list Smap.t;
  tunnels : Hoyan_proto.Sr.tunnel list Smap.t;
  te_aware : bool;
}

let owner (t : t) (addr : Ip.t) : string option =
  Hashtbl.find_opt t.owner_tbl addr

let config (t : t) dev = Smap.find_opt dev t.configs

let vsb_of (configs : Types.t Smap.t) dev =
  match Smap.find_opt dev configs with
  | Some cfg -> (
      match Vsb.of_vendor cfg.Types.dc_vendor with
      | Some v -> v
      | None -> Vsb.vendor_a)
  | None -> Vsb.vendor_a

(* ------------------------------------------------------------------ *)
(* Local tables: connected and static routes                           *)
(* ------------------------------------------------------------------ *)

(** Direct (connected) routes of a device.  A non-host interface address
    produces both the subnet route and an extra host /32 (or /128) route —
    the quirk behind two Table-5 VSBs. *)
let direct_routes (dev : string) (cfg : Types.t) : Route.t list =
  List.concat_map
    (fun (i : Types.iface_config) ->
      match i.Types.if_addr with
      | None -> []
      | Some addr ->
          let bits = Ip.family_bits (Ip.family addr) in
          let subnet =
            Route.make ~device:dev
              ~prefix:(Prefix.make addr i.Types.if_plen)
              ~proto:Route.Direct ~preference:0 ~out_iface:i.Types.if_name
              ~source:Route.Local ()
          in
          if i.Types.if_plen >= bits then [ subnet ]
          else
            let host =
              Route.make ~device:dev ~prefix:(Prefix.make addr bits)
                ~proto:Route.Direct ~preference:0 ~out_iface:i.Types.if_name
                ~source:Route.Local ()
            in
            [ subnet; host ])
    cfg.Types.dc_ifaces

let static_routes (dev : string) (cfg : Types.t) : Route.t list =
  List.map
    (fun (s : Types.static_route) ->
      Route.make ~device:dev ~prefix:s.Types.st_prefix ~vrf:s.Types.st_vrf
        ~proto:Route.Static ?nexthop:s.Types.st_nexthop
        ?out_iface:s.Types.st_iface ~preference:s.Types.st_preference
        ~tag:s.Types.st_tag ~source:Route.Local ())
    cfg.Types.dc_statics

(** IS-IS loopback routes (only materialized when the device redistributes
    IS-IS into BGP; the IGP matrix serves all other purposes). *)
let isis_routes (igp : Isis.t) (topo : Topology.t) (dev : string)
    (cfg : Types.t) : Route.t list =
  let redistributes_isis =
    List.exists
      (fun (p, _) -> p = Route.Isis)
      cfg.Types.dc_bgp.Types.bgp_redistribute
  in
  if not redistributes_isis then []
  else
    List.filter_map
      (fun (d : Topology.device) ->
        if String.equal d.Topology.name dev then None
        else
          match Isis.cost igp ~src:dev ~dst:d.Topology.name with
          | None -> None
          | Some c ->
              let bits = Ip.family_bits (Ip.family d.Topology.router_id) in
              Some
                (Route.make ~device:dev
                   ~prefix:(Prefix.make d.Topology.router_id bits)
                   ~proto:Route.Isis ~preference:15 ~igp_cost:c
                   ~source:Route.Local ()))
      (Topology.devices topo)

(* ------------------------------------------------------------------ *)
(* Session resolution                                                  *)
(* ------------------------------------------------------------------ *)

(** The local address a device uses towards a given peer address: the
    interface address sharing the peer's subnet, falling back to the
    router id (loopback peering). *)
let local_addr_towards (cfg : Types.t) (router_id : Ip.t) (peer : Ip.t) : Ip.t =
  let on_same_subnet =
    List.find_opt
      (fun (i : Types.iface_config) ->
        match i.Types.if_addr with
        | Some a ->
            Ip.family a = Ip.family peer
            && Prefix.mem peer (Prefix.make a i.Types.if_plen)
        | None -> false)
      cfg.Types.dc_ifaces
  in
  match on_same_subnet with
  | Some i -> Option.value i.Types.if_addr ~default:router_id
  | None -> router_id

let sessions_of (topo : Topology.t) (igp : Isis.t)
    (owner_tbl : (Ip.t, string) Hashtbl.t) (dev : string) (cfg : Types.t) :
    Bgp.session list =
  let router_id =
    match Topology.device topo dev with
    | Some d -> d.Topology.router_id
    | None ->
        Option.value cfg.Types.dc_bgp.Types.bgp_router_id ~default:(Ip.V4 0)
  in
  List.filter_map
    (fun (nb : Types.neighbor) ->
      match Hashtbl.find_opt owner_tbl nb.Types.nb_addr with
      | None -> None (* external neighbor not in the model: input routes
                        stand in for whatever it would send *)
      | Some peer_dev ->
          if String.equal peer_dev dev then None
          else if
            (* a session is only up when the peer is reachable: a
               link-address peering (the neighbor address sits on one of
               our connected subnets) needs the physical link itself,
               while a loopback peering needs an IGP path *)
            (let direct_peering =
               List.exists
                 (fun (i : Types.iface_config) ->
                   match Types.iface_subnet i with
                   | Some subnet -> Prefix.mem nb.Types.nb_addr subnet
                   | None -> false)
                 cfg.Types.dc_ifaces
             in
             if direct_peering then
               not (Option.is_some (Topology.edge_between topo dev peer_dev))
             else not (Isis.reachable igp ~src:dev ~dst:peer_dev))
          then None
          else
            let ebgp = nb.Types.nb_remote_asn <> cfg.Types.dc_bgp.Types.bgp_asn in
            Some
              {
                Bgp.s_local = dev;
                s_peer = peer_dev;
                s_local_addr =
                  local_addr_towards cfg router_id nb.Types.nb_addr;
                s_peer_addr = nb.Types.nb_addr;
                s_ebgp = ebgp;
                s_import = nb.Types.nb_import;
                s_export = nb.Types.nb_export;
                s_rr_client = nb.Types.nb_rr_client;
                s_next_hop_self = nb.Types.nb_next_hop_self;
                s_add_paths = nb.Types.nb_add_paths;
                s_vrf = nb.Types.nb_vrf;
              })
    cfg.Types.dc_bgp.Types.bgp_neighbors

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

(** Compile the model.  [regex] injects the AS-path regex engine (the
    diagnosis experiments pass {!Hoyan_regex.Regex.Legacy.matches_str});
    [te_aware = false] reproduces the pre-2023 IS-IS-TE modelling gap. *)
let build ?(te_aware = true)
    ?(regex = fun p s -> Hoyan_regex.Regex.matches_str p s)
    (topo : Topology.t) (configs : Types.t Smap.t) : t =
  let igp = Isis.compute ~te_aware topo configs in
  (* address ownership: interface addresses + router ids (loopbacks) *)
  let owner_tbl = Hashtbl.create 1024 in
  Smap.iter
    (fun dev (cfg : Types.t) ->
      List.iter
        (fun (i : Types.iface_config) ->
          match i.Types.if_addr with
          | Some a -> Hashtbl.replace owner_tbl a dev
          | None -> ())
        cfg.Types.dc_ifaces)
    configs;
  List.iter
    (fun (d : Topology.device) ->
      Hashtbl.replace owner_tbl d.Topology.router_id d.Topology.name)
    (Topology.devices topo);
  (* local tables *)
  let local_tables =
    Smap.mapi
      (fun dev cfg ->
        direct_routes dev cfg @ static_routes dev cfg
        @ isis_routes igp topo dev cfg)
      configs
  in
  (* SR tunnels *)
  let endpoint_of addr = Hashtbl.find_opt owner_tbl addr in
  let tunnels =
    Smap.mapi
      (fun dev cfg -> Sr.resolve igp ~device:dev ~endpoint_of cfg)
      configs
  in
  (* device contexts *)
  let net =
    Smap.mapi
      (fun dev (cfg : Types.t) ->
        let topo_dev = Topology.device topo dev in
        let router_id =
          match topo_dev with
          | Some d -> d.Topology.router_id
          | None ->
              Option.value cfg.Types.dc_bgp.Types.bgp_router_id
                ~default:(Ip.V4 0)
        in
        let vsb = vsb_of configs dev in
        let dev_tunnels = Option.value (Smap.find_opt dev tunnels) ~default:[] in
        let statics = Option.value (Smap.find_opt dev local_tables) ~default:[] in
        let igp_cost (addr : Ip.t) : int option =
          (* connected subnet? *)
          let connected =
            List.exists
              (fun (i : Types.iface_config) ->
                match Types.iface_subnet i with
                | Some subnet -> Prefix.mem addr subnet
                | None -> false)
              cfg.Types.dc_ifaces
          in
          if connected then Some 0
          else
            match Hashtbl.find_opt owner_tbl addr with
            | Some owner_dev ->
                if String.equal owner_dev dev then Some 0
                else Isis.cost igp ~src:dev ~dst:owner_dev
            | None ->
                (* resolvable through a static route? *)
                if
                  List.exists
                    (fun (r : Route.t) ->
                      r.Route.proto = Route.Static
                      && Prefix.mem addr r.Route.prefix)
                    statics
                then Some 1
                else None
        in
        {
          Bgp.d_name = dev;
          d_asn = cfg.Types.dc_bgp.Types.bgp_asn;
          d_router_id = router_id;
          d_cfg = cfg;
          d_vsb = vsb;
          d_sessions = sessions_of topo igp owner_tbl dev cfg;
          d_igp_cost = igp_cost;
          d_sr_reach = (fun nh -> Sr.reaches dev_tunnels nh);
          d_regex = regex;
        })
      configs
  in
  { topo; configs; igp; owner_tbl; net; local_tables; tunnels; te_aware }

(** Apply a change plan: topology ops plus per-device command blocks, then
    recompile.  Returns the updated model and the per-device application
    reports (parse/delete errors are risk signals surfaced to the
    verification layer). *)
let apply_change_plan ?(te_aware = true) ?regex (t : t)
    (cp : Hoyan_config.Change_plan.t) :
    t * Hoyan_config.Change_plan.apply_report list =
  let module Cp = Hoyan_config.Change_plan in
  let topo =
    List.fold_left
      (fun topo op ->
        match op with
        | Cp.Add_device d -> Topology.add_device topo d
        | Cp.Remove_device n -> Topology.remove_device topo n
        | Cp.Add_link { la; la_if; lb; lb_if; l_bandwidth } ->
            Topology.add_link topo ~a:la ~a_if:la_if ~b:lb ~b_if:lb_if
              ~bandwidth:l_bandwidth
        | Cp.Remove_link { ra; rb } -> Topology.remove_link topo ~a:ra ~b:rb)
      t.topo cp.Cp.cp_topo_ops
  in
  (* devices added by the plan get an empty config before the command
     blocks run, so a block can configure a brand-new router *)
  let configs =
    List.fold_left
      (fun configs op ->
        match op with
        | Cp.Add_device d ->
            if Smap.mem d.Topology.name configs then configs
            else
              Smap.add d.Topology.name
                (Types.empty ~device:d.Topology.name ~vendor:d.Topology.vendor)
                configs
        | Cp.Remove_device n -> Smap.remove n configs
        | Cp.Add_link _ | Cp.Remove_link _ -> configs)
      t.configs cp.Cp.cp_topo_ops
  in
  let configs, reports =
    List.fold_left
      (fun (configs, reports) (dev, block) ->
        match Smap.find_opt dev configs with
        | None ->
            (* "typos in the names of routers to be changed ... would cause
               the change to be ineffective on some routers" (Table 6) *)
            ( configs,
              Cp.report_failure ~device:dev
                (Printf.sprintf "unknown device %S" dev)
              :: reports )
        | Some cfg ->
            let cfg', report = Cp.apply_commands cfg block in
            (Smap.add dev cfg' configs, report :: reports))
      (configs, []) cp.Cp.cp_commands
  in
  (build ~te_aware ?regex topo configs, List.rev reports)

(** Total configuration line count across the model (Table-1 style
    statistics). *)
let total_config_lines (t : t) =
  Smap.fold (fun _ cfg n -> n + Types.line_count cfg) t.configs 0
