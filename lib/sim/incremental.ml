(** Incremental delta simulation: dirty-region fixpoint re-runs spliced
    into converged snapshots.  See the interface for the soundness
    contract; DESIGN.md §2.10 for the design notes.

    Why a restricted fixpoint is exact: every stage of the BGP pipeline
    — ingress (AS-loop check, import policy), selection, export (split
    horizon, community gates, RR rules, export policy) and delivery —
    is a function of a single (vrf, prefix) slot.  The only cross-prefix
    coupling is aggregation: an aggregate's row is computed from its
    component rows, and a component's presence can flip an aggregate.
    So a fixpoint restricted to a prefix set S converges exactly the
    S-restriction of the unrestricted fixpoint whenever S is closed
    under aggregate contribution in both directions.  [Route_sim.run
    ~only] implements the restriction; this module owns the closure, the
    splice and the oracle. *)

open Hoyan_net
module Smap = Map.Make (String)
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Lint = Hoyan_analysis.Lint
module Differential = Hoyan_analysis.Differential
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal

type ctx = {
  cx_model : Model.t;
  cx_input_routes : Route.t list;
  cx_flows : Flow.t list;
  cx_rib : Route.t list; (* the converged base global RIB, as captured *)
  cx_key : Rib.Key.ctx; (* packed-key universe of the base BGP rows *)
  cx_bgp : Rib.Arena.t; (* base RIB minus base local tables, canonical *)
  cx_fibs : Traffic_sim.fib;
  cx_ecx : Traffic_sim.ec_ctx;
  cx_universe : Prefix.t list; (* every prefix a base BGP row can have *)
  cx_degraded : string option;
      (* a base row's prefix escaped the enumerable universe: the dirty
         set cannot be trusted, every plan falls back to a full run *)
  mutable cx_simulates : int;
  mutable cx_fallbacks : int;
}

let base_model cx = cx.cx_model
let base_rib cx = cx.cx_rib
let base_fibs cx = cx.cx_fibs
let base_ec_ctx cx = cx.cx_ecx
let counters cx = (cx.cx_simulates, cx.cx_fallbacks)

(* ------------------------------------------------------------------ *)
(* The prefix universe and the aggregate closure                       *)
(* ------------------------------------------------------------------ *)

(* Every prefix a BGP RIB row of [model] can possibly carry, beyond the
   injected inputs: network statements, redistributable local-table rows
   (statics/connected/IGP), and configured aggregates.  Leaking
   preserves prefixes, so this is exhaustive. *)
let model_prefixes (model : Model.t) : Prefix.t list =
  let acc = ref [] in
  Smap.iter
    (fun _ (cfg : Types.t) ->
      List.iter
        (fun (p, _vrf) -> acc := p :: !acc)
        cfg.Types.dc_bgp.Types.bgp_networks;
      List.iter
        (fun (ag : Types.aggregate) -> acc := ag.Types.ag_prefix :: !acc)
        cfg.Types.dc_bgp.Types.bgp_aggregates)
    model.Model.configs;
  Smap.iter
    (fun _ rows ->
      List.iter (fun (r : Route.t) -> acc := r.Route.prefix :: !acc) rows)
    model.Model.local_tables;
  !acc

let aggregate_prefixes (model : Model.t) : Prefix.t list =
  let acc = ref [] in
  Smap.iter
    (fun _ (cfg : Types.t) ->
      List.iter
        (fun (ag : Types.aggregate) -> acc := ag.Types.ag_prefix :: !acc)
        cfg.Types.dc_bgp.Types.bgp_aggregates)
    model.Model.configs;
  List.sort_uniq Prefix.compare !acc

(* Close a dirty set (hashtable keyed by [Prefix.to_string]) under
   aggregate contribution over [universe]: a dirty component dirties its
   aggregates (their attributes are computed from component rows), and a
   dirty aggregate pulls in every candidate component (the restricted
   run must see them to originate it correctly). *)
let close_under_aggregates ~(aggs : Prefix.t list)
    ~(universe : Prefix.t list) (dirty : (string, unit) Hashtbl.t) : unit =
  let mem p = Hashtbl.mem dirty (Prefix.to_string p) in
  let add p =
    let k = Prefix.to_string p in
    if Hashtbl.mem dirty k then false
    else begin
      Hashtbl.add dirty k ();
      true
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ag ->
        let component u = (not (Prefix.equal u ag)) && Prefix.subsumes ag u in
        if mem ag then
          List.iter
            (fun u -> if component u && add u then changed := true)
            universe
        else if List.exists (fun u -> component u && mem u) universe then begin
          ignore (add ag);
          changed := true
        end)
      aggs
  done

(* ------------------------------------------------------------------ *)
(* Context capture                                                     *)
(* ------------------------------------------------------------------ *)

let local_rows (model : Model.t) : Route.t list =
  Smap.fold
    (fun _ rs acc -> List.rev_append rs acc)
    model.Model.local_tables []

let capture ?tm ~(model : Model.t) ~(input_routes : Route.t list)
    ~(flows : Flow.t list) ~(rib : Route.t list) () : ctx =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  Telemetry.with_span tm "inc.capture" (fun () ->
      let bgp_rows = Rib.Global.diff rib (local_rows model) in
      let key = Rib.Key.of_routes bgp_rows in
      let bgp = Rib.Arena.of_routes key bgp_rows in
      let universe =
        List.sort_uniq Prefix.compare
          (List.map (fun (r : Route.t) -> r.Route.prefix) input_routes
          @ model_prefixes model)
      in
      let in_universe =
        let tbl = Hashtbl.create (List.length universe * 2) in
        List.iter (fun p -> Hashtbl.replace tbl (Prefix.to_string p) ()) universe;
        fun p -> Hashtbl.mem tbl (Prefix.to_string p)
      in
      let degraded =
        List.find_map
          (fun (r : Route.t) ->
            if in_universe r.Route.prefix then None
            else
              Some
                (Printf.sprintf "base row prefix %s outside universe"
                   (Prefix.to_string r.Route.prefix)))
          bgp_rows
      in
      let fibs = Traffic_sim.build_fibs rib in
      let ecx = Traffic_sim.ec_ctx model fibs in
      if Telemetry.enabled tm then
        Telemetry.event tm "inc.capture"
          [
            ("rib_rows", Journal.I (List.length rib));
            ("bgp_rows", Journal.I (Rib.Arena.cardinal bgp));
            ("universe", Journal.I (List.length universe));
            ("degraded", Journal.B (Option.is_some degraded));
          ];
      {
        cx_model = model;
        cx_input_routes = input_routes;
        cx_flows = flows;
        cx_rib = rib;
        cx_key = key;
        cx_bgp = bgp;
        cx_fibs = fibs;
        cx_ecx = ecx;
        cx_universe = universe;
        cx_degraded = degraded;
        cx_simulates = 0;
        cx_fallbacks = 0;
      })

(* ------------------------------------------------------------------ *)
(* Simulate: dirty-region delta run + arena splice                     *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_class : Differential.classification;
  st_full_fallback : bool;
  st_fallback_reason : string option;
  st_dirty_prefixes : int;
  st_dirty_devices : int;
  st_reused_rows : int;
  st_delta_rows : int;
}

type sim = {
  s_plan : Cp.t;
  s_model : Model.t;
  s_reports : Cp.apply_report list;
  s_diff : Differential.diff;
  s_rib : Route.t list;
  s_stats : stats;
  s_fibs : Traffic_sim.fib Lazy.t;
  s_ecx : Traffic_sim.ec_ctx Lazy.t;
  s_traffic : Traffic_sim.result Lazy.t;
}

let compute_diff ?tm (cx : ctx) (plan : Cp.t) : Differential.diff =
  let m = cx.cx_model in
  Differential.diff ?tm
    (Lint.make ~topo:m.Model.topo ~render:false m.Model.configs)
    plan

(* Devices whose local tables differ between base and patched model:
   their FIBs can change even without a BGP row change. *)
let changed_local_devices (base : Model.t) (patched : Model.t) : string list =
  let devs = ref [] in
  let keys m =
    Smap.fold (fun k _ acc -> k :: acc) m.Model.local_tables []
  in
  List.iter
    (fun dev ->
      let rows m =
        Option.value (Smap.find_opt dev m.Model.local_tables) ~default:[]
      in
      if not (List.equal Route.equal (rows base) (rows patched)) then
        devs := dev :: !devs)
    (List.sort_uniq String.compare (keys base @ keys patched));
  !devs

let make_traffic tm (cx : ctx) (model : Model.t) rib fibs ecx =
  lazy
    (Telemetry.with_span tm "inc.traffic" (fun () ->
         Traffic_sim.run ~tm ~fibs:(Lazy.force fibs) ~ecx:(Lazy.force ecx)
           model ~rib ~flows:cx.cx_flows ()))

(* The full-run escape hatch: canonicalized so cached artifacts and the
   oracle compare the same representation either way. *)
let full_fallback tm (cx : ctx) (d : Differential.diff) (plan : Cp.t)
    ~(patched : Model.t) ~(reports : Cp.apply_report list) ~reason : sim =
  cx.cx_fallbacks <- cx.cx_fallbacks + 1;
  Telemetry.count tm "hoyan_inc_fallback_total" 1;
  let inputs = Differential.patched_routes plan cx.cx_input_routes in
  let full =
    Telemetry.with_span tm "inc.full_fallback" (fun () ->
        Route_sim.run ~tm patched ~input_routes:inputs ())
  in
  let rib = List.sort_uniq Route.compare full.Route_sim.rib in
  let fibs = lazy (Traffic_sim.build_fibs rib) in
  let ecx = lazy (Traffic_sim.ec_ctx patched (Lazy.force fibs)) in
  {
    s_plan = plan;
    s_model = patched;
    s_reports = reports;
    s_diff = d;
    s_rib = rib;
    s_stats =
      {
        st_class = d.Differential.df_class;
        st_full_fallback = true;
        st_fallback_reason = Some reason;
        st_dirty_prefixes = 0;
        st_dirty_devices = 0;
        st_reused_rows = 0;
        st_delta_rows = List.length rib;
      };
    s_fibs = fibs;
    s_ecx = ecx;
    s_traffic = make_traffic tm cx patched rib fibs ecx;
  }

let simulate ?tm ?d ?prune_dirty (cx : ctx) (plan : Cp.t) : sim =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  cx.cx_simulates <- cx.cx_simulates + 1;
  Telemetry.count tm "hoyan_inc_simulate_total" 1;
  Telemetry.with_span tm "inc.simulate" (fun () ->
      let d = match d with Some d -> d | None -> compute_diff ~tm cx plan in
      let patched, reports = Model.apply_change_plan cx.cx_model plan in
      match
        if d.Differential.df_topo_dirty then
          Some "topology ops dirty an unenumerable prefix set"
        else cx.cx_degraded
      with
      | Some reason -> full_fallback tm cx d plan ~patched ~reports ~reason
      | None ->
          let plan_prefixes =
            plan.Cp.cp_withdraw
            @ List.map
                (fun (r : Route.t) -> r.Route.prefix)
                plan.Cp.cp_new_routes
          in
          let universe =
            List.sort_uniq Prefix.compare
              (cx.cx_universe @ model_prefixes patched @ plan_prefixes)
          in
          let dirty_tbl = Hashtbl.create 64 in
          List.iter
            (fun p ->
              if
                Differential.prefix_affected ~tm d
                  ~input_routes:cx.cx_input_routes p
              then Hashtbl.replace dirty_tbl (Prefix.to_string p) ())
            universe;
          let aggs =
            List.sort_uniq Prefix.compare
              (aggregate_prefixes cx.cx_model @ aggregate_prefixes patched)
          in
          close_under_aggregates ~aggs ~universe dirty_tbl;
          (match prune_dirty with
          | None -> ()
          | Some drop ->
              List.iter
                (fun p ->
                  if drop p then Hashtbl.remove dirty_tbl (Prefix.to_string p))
                universe);
          let is_dirty p = Hashtbl.mem dirty_tbl (Prefix.to_string p) in
          let n_dirty = Hashtbl.length dirty_tbl in
          (* the restricted re-convergence: from-scratch fixpoint over
             only the dirty prefixes (base adj-RIB state for them is
             invalid by definition; clean prefixes never enter) *)
          let delta_rows =
            if n_dirty = 0 then []
            else
              Telemetry.with_span tm "inc.delta_fixpoint" (fun () ->
                  (Route_sim.run ~tm ~include_locals:false ~only:is_dirty
                     patched
                     ~input_routes:
                       (Differential.patched_routes plan cx.cx_input_routes)
                     ())
                    .Route_sim.rib)
          in
          (* splice: clean base rows + delta rows + patched local tables *)
          let clean =
            Rib.Arena.filter
              (fun (r : Route.t) -> not (is_dirty r.Route.prefix))
              cx.cx_bgp
          in
          let delta = Rib.Arena.of_routes cx.cx_key delta_rows in
          let locals = Rib.Arena.of_routes cx.cx_key (local_rows patched) in
          let rib =
            Telemetry.with_span tm "inc.splice" (fun () ->
                Rib.Arena.merge [ clean; delta; locals ])
          in
          (* dirty devices: whose rows were dropped, whose rows the delta
             produced, or whose local tables changed *)
          let dirty_devs = Hashtbl.create 32 in
          let mark_dirty_rows (r : Route.t) =
            if is_dirty r.Route.prefix then
              Hashtbl.replace dirty_devs r.Route.device ()
          in
          Array.iter mark_dirty_rows cx.cx_bgp.Rib.Arena.rows;
          List.iter mark_dirty_rows cx.cx_bgp.Rib.Arena.overflow;
          List.iter
            (fun (r : Route.t) -> Hashtbl.replace dirty_devs r.Route.device ())
            delta_rows;
          List.iter
            (fun dev -> Hashtbl.replace dirty_devs dev ())
            (changed_local_devices cx.cx_model patched);
          let dirty_dev d = Hashtbl.mem dirty_devs d in
          let stats =
            {
              st_class = d.Differential.df_class;
              st_full_fallback = false;
              st_fallback_reason = None;
              st_dirty_prefixes = n_dirty;
              st_dirty_devices = Hashtbl.length dirty_devs;
              st_reused_rows = Rib.Arena.cardinal clean;
              st_delta_rows = Rib.Arena.cardinal delta;
            }
          in
          if Telemetry.enabled tm then
            Telemetry.event tm "inc.simulate"
              [
                ( "class",
                  Journal.S
                    (Differential.classification_to_string
                       d.Differential.df_class) );
                ("dirty_prefixes", Journal.I stats.st_dirty_prefixes);
                ("dirty_devices", Journal.I stats.st_dirty_devices);
                ("reused_rows", Journal.I stats.st_reused_rows);
                ("delta_rows", Journal.I stats.st_delta_rows);
              ];
          let fibs =
            lazy
              (Telemetry.with_span tm "inc.rebuild_fibs" (fun () ->
                   Traffic_sim.rebuild_fibs ~base:cx.cx_fibs ~dirty:dirty_dev
                     rib))
          in
          let ecx =
            lazy (Traffic_sim.ec_ctx patched (Lazy.force fibs))
          in
          {
            s_plan = plan;
            s_model = patched;
            s_reports = reports;
            s_diff = d;
            s_rib = rib;
            s_stats = stats;
            s_fibs = fibs;
            s_ecx = ecx;
            s_traffic = make_traffic tm cx patched rib fibs ecx;
          })

(* ------------------------------------------------------------------ *)
(* Footprint restriction for failure scenarios                         *)
(* ------------------------------------------------------------------ *)

let scenario_only (cx : ctx) ~(prefixes : Prefix.t list) :
    Prefix.t -> bool =
  let dirty = Hashtbl.create 16 in
  List.iter
    (fun p -> Hashtbl.replace dirty (Prefix.to_string p) ())
    prefixes;
  close_under_aggregates
    ~aggs:(aggregate_prefixes cx.cx_model)
    ~universe:cx.cx_universe dirty;
  fun p -> Hashtbl.mem dirty (Prefix.to_string p)

(* ------------------------------------------------------------------ *)
(* The byte-identity oracle                                            *)
(* ------------------------------------------------------------------ *)

type check = {
  ck_ok : bool;
  ck_rib_ok : bool;
  ck_traffic_ok : bool;
  ck_stats : stats;
  ck_missing : Route.t list;
  ck_extra : Route.t list;
}

let traffic_identical (a : Traffic_sim.result) (b : Traffic_sim.result) :
    bool =
  let loads (r : Traffic_sim.result) =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.Traffic_sim.link_load []
    |> List.sort compare
  in
  loads a = loads b
  && List.length a.Traffic_sim.flow_results
     = List.length b.Traffic_sim.flow_results
  && List.for_all2
       (fun (x : Traffic_sim.flow_result) (y : Traffic_sim.flow_result) ->
         Flow.equal x.Traffic_sim.f_flow y.Traffic_sim.f_flow
         && x.Traffic_sim.f_delivered = y.Traffic_sim.f_delivered
         && x.Traffic_sim.f_dropped = y.Traffic_sim.f_dropped
         && x.Traffic_sim.f_looped = y.Traffic_sim.f_looped)
       a.Traffic_sim.flow_results b.Traffic_sim.flow_results

let selfcheck ?tm ?(traffic = true) ?prune_dirty (cx : ctx) (plan : Cp.t) :
    check =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let sim = simulate ~tm ?prune_dirty cx plan in
  (* the independent witness: full from-scratch patched simulation *)
  let patched, _ = Model.apply_change_plan cx.cx_model plan in
  let inputs = Differential.patched_routes plan cx.cx_input_routes in
  let full =
    List.sort_uniq Route.compare
      (Route_sim.run ~tm patched ~input_routes:inputs ()).Route_sim.rib
  in
  let rib_ok = List.equal Route.equal full sim.s_rib in
  let missing = if rib_ok then [] else Rib.Global.diff full sim.s_rib in
  let extra = if rib_ok then [] else Rib.Global.diff sim.s_rib full in
  let traffic_ok =
    if not traffic then true
    else
      let full_traffic =
        Traffic_sim.run ~tm patched ~rib:full ~flows:cx.cx_flows ()
      in
      traffic_identical full_traffic (Lazy.force sim.s_traffic)
  in
  if Telemetry.enabled tm then
    Telemetry.event tm "inc.selfcheck"
      [
        ("rib_ok", Journal.B rib_ok);
        ("traffic_ok", Journal.B traffic_ok);
        ("missing", Journal.I (List.length missing));
        ("extra", Journal.I (List.length extra));
      ];
  {
    ck_ok = rib_ok && traffic_ok;
    ck_rib_ok = rib_ok;
    ck_traffic_ok = traffic_ok;
    ck_stats = sim.s_stats;
    ck_missing = missing;
    ck_extra = extra;
  }
