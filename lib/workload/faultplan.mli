(** Named chaos plans for fault-injection runs: seeded, deterministic
    {!Hoyan_dist.Chaos} configurations used by the CLI's [--chaos MODE]
    flag, the fault-injection test matrix and the chaos bench. *)

(** The failure modes the matrix sweeps. *)
type mode =
  | Crashes  (** worker crashes mid-subtask *)
  | Storage_loss  (** uploaded objects vanish from the store *)
  | Mq_faults  (** messages lost in flight or delivered twice *)
  | Stalls  (** workers wedge until their lease expires *)
  | Mixed  (** all of the above, each at a quarter of the budget *)

val mode_to_string : mode -> string
val mode_of_string : string -> mode option
val all_modes : mode list

(** [plan mode ~prob ~seed] builds the chaos plan for one matrix cell;
    [prob = 0.] yields {!Hoyan_dist.Chaos.none}. *)
val plan : ?seed:int -> prob:float -> mode -> Hoyan_dist.Chaos.t

(** The fault probabilities the test matrix and the chaos bench sweep:
    [0.0; 0.2; 0.5]. *)
val matrix_probs : float list
