(** Lintable-defect injection.

    Takes a clean generated workload and plants exactly one instance of
    each defect class the static-analysis pass ({!Hoyan_analysis.Lint})
    detects, so the test suite (and [hoyan lint --inject]) can assert
    every check fires with its stable code on the right device.  One
    class per {!inject} call; {!inject_all} covers the whole catalog. *)

open Hoyan_net
module G = Generator
module Model = Hoyan_sim.Model
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Lint = Hoyan_analysis.Lint
module Smap = Types.Smap

type injected = {
  inj_class : string; (* kebab-case check name, as in the catalog *)
  inj_code : string; (* the diagnostic code expected to fire *)
  inj_device : string option; (* device the defect was planted on *)
  inj_input : Lint.input; (* ready to pass to Lint.run *)
}

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let find_device (configs : Types.t Smap.t) pred : string =
  match
    Smap.fold
      (fun dev cfg acc ->
        match acc with Some _ -> acc | None -> if pred cfg then Some dev else None)
      configs None
  with
  | Some dev -> dev
  | None -> invalid_arg "Defects: no suitable device in the corpus"

let update_config configs dev f = Smap.add dev (f (Smap.find dev configs)) configs

let with_policy_nodes name f (cfg : Types.t) : Types.t =
  match Types.find_policy cfg name with
  | None -> invalid_arg (Printf.sprintf "Defects: policy %s missing" name)
  | Some rp ->
      {
        cfg with
        Types.dc_policies =
          Smap.add name
            { rp with Types.rp_nodes = f rp.Types.rp_nodes }
            cfg.Types.dc_policies;
      }

let pe seq prefix ge le =
  {
    Types.pe_seq = seq;
    pe_action = Types.Permit;
    pe_prefix = Prefix.of_string_exn prefix;
    pe_ge = ge;
    pe_le = le;
  }

let match_all_node seq =
  {
    Types.pn_seq = seq;
    pn_action = Some Types.Permit;
    pn_matches = [];
    pn_sets = [];
    pn_goto_next = false;
  }

let catch_all_acl name =
  {
    Types.acl_name = name;
    acl_entries =
      [
        {
          Types.ace_seq = 10;
          ace_action = Types.Permit;
          ace_src = None;
          ace_dst = None;
          ace_proto = None;
          ace_dport = None;
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Injection                                                           *)
(* ------------------------------------------------------------------ *)

let classes =
  [
    "undefined-prefix-list";
    "undefined-community-list";
    "undefined-aspath-filter";
    "undefined-route-policy";
    "undefined-acl";
    "ebgp-missing-policy";
    "shadowed-policy-term";
    "shadowed-prefix-entry";
    "invalid-aspath-regex";
    "vrf-import-no-exporter";
    "vrf-export-no-importer";
    "plan-unknown-device";
    "plan-delete-error";
    "plan-parse-error";
    "rcl-parse-error";
    "rcl-field-type";
    "rcl-invalid-regex";
    "rcl-unreachable-predicate";
    "undefined-interface";
  ]

let inject (g : G.t) (cls : string) : injected =
  let configs = g.G.model.Model.configs in
  let topo = g.G.model.Model.topo in
  let code =
    match Hoyan_analysis.Diagnostics.code_of_check cls with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Defects.inject: unknown class %s" cls)
  in
  let mk ?plan ?(specs = []) ?device configs =
    {
      inj_class = cls;
      inj_code = code;
      inj_device = device;
      inj_input = Lint.make ~topo ?plan ~specs configs;
    }
  in
  let with_cfg dev f = mk ~device:dev (update_config configs dev f) in
  let with_plan plan = mk ~plan configs in
  let with_spec spec = mk ~specs:[ ("injected", spec) ] configs in
  let has_policy name cfg = Types.find_policy cfg name <> None in
  let vendor_a_dev = find_device configs (fun c -> c.Types.dc_vendor = "vendorA") in
  match cls with
  | "undefined-prefix-list" ->
      let dev = find_device configs (has_policy "PASS") in
      with_cfg dev
        (with_policy_nodes "PASS" (fun nodes ->
             List.map
               (fun (n : Types.policy_node) ->
                 {
                   n with
                   Types.pn_matches =
                     Types.Match_prefix_list "NO_SUCH_PL" :: n.Types.pn_matches;
                 })
               nodes))
  | "undefined-community-list" ->
      (* the RRs' RR_OUT_CORE references the community list of every
         region, including the device's own *)
      let dev =
        find_device configs (fun c ->
            has_policy "RR_OUT_CORE" c
            && Types.find_community_list c "ISP_R1" <> None)
      in
      with_cfg dev (fun c ->
          {
            c with
            Types.dc_community_lists =
              Smap.remove "ISP_R1" c.Types.dc_community_lists;
          })
  | "undefined-aspath-filter" ->
      let dev =
        find_device configs (fun c ->
            has_policy "RR_OUT" c && Types.find_aspath_filter c "BOGON" <> None)
      in
      with_cfg dev (fun c ->
          {
            c with
            Types.dc_aspath_filters = Smap.remove "BOGON" c.Types.dc_aspath_filters;
          })
  | "undefined-route-policy" ->
      let dev =
        find_device configs (fun c -> c.Types.dc_bgp.Types.bgp_neighbors <> [])
      in
      with_cfg dev (fun c ->
          let bgp = c.Types.dc_bgp in
          let neighbors =
            match bgp.Types.bgp_neighbors with
            | nb :: rest ->
                { nb with Types.nb_import = Some "NO_SUCH_POLICY" } :: rest
            | [] -> assert false
          in
          { c with Types.dc_bgp = { bgp with Types.bgp_neighbors = neighbors } })
  | "undefined-acl" ->
      let dev = find_device configs (fun c -> c.Types.dc_ifaces <> []) in
      with_cfg dev (fun c ->
          let ifaces =
            match c.Types.dc_ifaces with
            | i :: rest -> { i with Types.if_acl_in = Some "NO_SUCH_ACL" } :: rest
            | [] -> assert false
          in
          { c with Types.dc_ifaces = ifaces })
  | "ebgp-missing-policy" ->
      (* a policy-less eBGP session on the strict vendor-B profile *)
      let dev = find_device configs (fun c -> c.Types.dc_vendor = "vendorB") in
      with_cfg dev (fun c ->
          let bgp = c.Types.dc_bgp in
          let nb =
            {
              Types.nb_addr = Ip.of_string_exn "192.0.2.1";
              nb_remote_asn = bgp.Types.bgp_asn + 1;
              nb_import = None;
              nb_export = None;
              nb_rr_client = false;
              nb_next_hop_self = false;
              nb_add_paths = 0;
              nb_vrf = Route.default_vrf;
            }
          in
          {
            c with
            Types.dc_bgp =
              { bgp with Types.bgp_neighbors = bgp.Types.bgp_neighbors @ [ nb ] };
          })
  | "shadowed-policy-term" ->
      (* PASS's single node matches everything; a node after it is dead *)
      let dev = find_device configs (has_policy "PASS") in
      with_cfg dev
        (with_policy_nodes "PASS" (fun nodes -> nodes @ [ match_all_node 20 ]))
  | "shadowed-prefix-entry" ->
      with_cfg vendor_a_dev (fun c ->
          let pl =
            {
              Types.pl_name = "SHADOW";
              pl_family = Ip.Ipv4;
              pl_entries =
                [ pe 5 "10.0.0.0/8" None (Some 32); pe 10 "10.1.0.0/16" None (Some 24) ];
            }
          in
          {
            c with
            Types.dc_prefix_lists = Smap.add "SHADOW" pl c.Types.dc_prefix_lists;
          })
  | "invalid-aspath-regex" ->
      with_cfg vendor_a_dev (fun c ->
          let af =
            {
              Types.af_name = "BADRE";
              af_entries =
                [ { Types.ae_seq = 10; ae_action = Types.Permit; ae_regex = "(" } ];
            }
          in
          {
            c with
            Types.dc_aspath_filters = Smap.add "BADRE" af c.Types.dc_aspath_filters;
          })
  | "vrf-import-no-exporter" | "vrf-export-no-importer" ->
      let importing = String.equal cls "vrf-import-no-exporter" in
      with_cfg vendor_a_dev (fun c ->
          let vd =
            {
              Types.vd_name = "VPN_TEST";
              vd_rd = "64512:900";
              vd_import_rts = (if importing then [ "64512:999" ] else []);
              vd_export_rts = (if importing then [] else [ "64512:998" ]);
              vd_export_policy = None;
            }
          in
          let bgp = c.Types.dc_bgp in
          {
            c with
            Types.dc_bgp = { bgp with Types.bgp_vrfs = bgp.Types.bgp_vrfs @ [ vd ] };
          })
  | "plan-unknown-device" ->
      with_plan
        (Cp.make "injected"
           ~commands:[ ("no-such-device", "interface Eth0\n") ])
  | "plan-delete-error" ->
      with_plan
        (Cp.make "injected"
           ~commands:[ (vendor_a_dev, "no route-map NO_SUCH_RM 10\n") ])
  | "plan-parse-error" ->
      with_plan
        (Cp.make "injected"
           ~commands:[ (vendor_a_dev, "frobnicate 42 unknown keyword\n") ])
  | "rcl-parse-error" -> with_spec "PRE = "
  | "rcl-field-type" ->
      with_spec "POST || localPref = \"high\" |> count() = 0"
  | "rcl-invalid-regex" ->
      with_spec "POST || aspath matches \"(\" |> count() = 0"
  | "rcl-unreachable-predicate" ->
      with_spec
        "POST || (localPref = 100 and localPref = 200) |> count() = 0"
  | "undefined-interface" ->
      with_cfg vendor_a_dev (fun c ->
          let rule =
            {
              Types.pbr_iface = "NoSuchEth99";
              pbr_acl = "PBR_ACL";
              pbr_nexthop = Ip.of_string_exn "192.0.2.254";
            }
          in
          {
            c with
            Types.dc_acls = Smap.add "PBR_ACL" (catch_all_acl "PBR_ACL") c.Types.dc_acls;
            dc_pbr = rule :: c.Types.dc_pbr;
          })
  | cls -> invalid_arg (Printf.sprintf "Defects.inject: unknown class %s" cls)

let inject_all (g : G.t) : injected list = List.map (inject g) classes
