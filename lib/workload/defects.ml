(** Lintable-defect injection.

    Takes a clean generated workload and plants exactly one instance of
    each defect class the static-analysis pass ({!Hoyan_analysis.Lint})
    detects, so the test suite (and [hoyan lint --inject]) can assert
    every check fires with its stable code on the right device.  One
    class per {!inject} call; {!inject_all} covers the whole catalog. *)

open Hoyan_net
module G = Generator
module Model = Hoyan_sim.Model
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Lint = Hoyan_analysis.Lint
module Semantic = Hoyan_analysis.Semantic
module Smap = Types.Smap

type injected = {
  inj_class : string; (* kebab-case check name, as in the catalog *)
  inj_code : string; (* the diagnostic code expected to fire *)
  inj_device : string option; (* device the defect was planted on *)
  inj_input : Lint.input; (* ready to pass to {!detect} *)
  inj_intents : Semantic.reach_intent list;
      (* reachability intents the semantic pre-checker should refute *)
  inj_routes : Route.t list;
      (* monitored input routes the differential pass should see *)
}

(** Run the full static-analysis stack (per-device lint + cross-device
    semantic pass + the differential change-impact pass when the corpus
    carries a plan) over an injected corpus — the union every HOY0xx
    class is detectable in. *)
let detect (inj : injected) : Hoyan_analysis.Diagnostics.t list =
  let diff_diags =
    match inj.inj_input.Lint.li_plan with
    | None -> []
    | Some plan ->
        Hoyan_analysis.Differential.check ~input_routes:inj.inj_routes
          (Hoyan_analysis.Differential.diff inj.inj_input plan)
  in
  Lint.run inj.inj_input
  @ Semantic.analyze ~intents:inj.inj_intents inj.inj_input
  @ diff_diags

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let find_device (configs : Types.t Smap.t) pred : string =
  match
    Smap.fold
      (fun dev cfg acc ->
        match acc with Some _ -> acc | None -> if pred cfg then Some dev else None)
      configs None
  with
  | Some dev -> dev
  | None -> invalid_arg "Defects: no suitable device in the corpus"

let update_config configs dev f = Smap.add dev (f (Smap.find dev configs)) configs

let with_policy_nodes name f (cfg : Types.t) : Types.t =
  match Types.find_policy cfg name with
  | None -> invalid_arg (Printf.sprintf "Defects: policy %s missing" name)
  | Some rp ->
      {
        cfg with
        Types.dc_policies =
          Smap.add name
            { rp with Types.rp_nodes = f rp.Types.rp_nodes }
            cfg.Types.dc_policies;
      }

let pe seq prefix ge le =
  {
    Types.pe_seq = seq;
    pe_action = Types.Permit;
    pe_prefix = Prefix.of_string_exn prefix;
    pe_ge = ge;
    pe_le = le;
  }

let match_all_node seq =
  {
    Types.pn_seq = seq;
    pn_action = Some Types.Permit;
    pn_matches = [];
    pn_sets = [];
    pn_goto_next = false;
  }

let catch_all_acl name =
  {
    Types.acl_name = name;
    acl_entries =
      [
        {
          Types.ace_seq = 10;
          ace_action = Types.Permit;
          ace_src = None;
          ace_dst = None;
          ace_proto = None;
          ace_dport = None;
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Injection                                                           *)
(* ------------------------------------------------------------------ *)

let classes =
  [
    "undefined-prefix-list";
    "undefined-community-list";
    "undefined-aspath-filter";
    "undefined-route-policy";
    "undefined-acl";
    "ebgp-missing-policy";
    "shadowed-policy-term";
    "shadowed-prefix-entry";
    "invalid-aspath-regex";
    "vrf-import-no-exporter";
    "vrf-export-no-importer";
    "plan-unknown-device";
    "plan-delete-error";
    "plan-parse-error";
    "rcl-parse-error";
    "rcl-field-type";
    "rcl-invalid-regex";
    "rcl-unreachable-predicate";
    "undefined-interface";
    "bgp-session-unidirectional";
    "bgp-session-as-mismatch";
    "redistribution-loop";
    "vrf-route-leak";
    "dead-policy-term";
    "ibgp-propagation-gap";
    "dangling-static-nexthop";
    "bgp-session-family-mismatch";
    "isis-adjacency-mismatch";
    "intent-statically-refuted";
    "plan-semantic-noop";
    "plan-wrong-dialect";
    "plan-edits-dead-term";
    "plan-widens-ebgp-transit";
    "plan-breaks-session";
    "plan-removes-origination";
    "plan-withdraws-unknown-prefix";
    "plan-impact-summary";
  ]

(* The HOY024 dead-term recipe, shared by "dead-policy-term" and the
   differential "plan-edits-dead-term": node 20's /9 range is exactly the
   union of node 10's two /10 guarantee regions. *)
let plant_dead_policy (c : Types.t) : Types.t =
  let cover =
    {
      Types.pl_name = "PL_COVER";
      pl_family = Ip.Ipv4;
      pl_entries =
        [ pe 5 "10.0.0.0/10" None (Some 24); pe 10 "10.64.0.0/10" None (Some 24) ];
    }
  in
  let dead =
    {
      Types.pl_name = "PL_DEAD";
      pl_family = Ip.Ipv4;
      pl_entries = [ pe 5 "10.0.0.0/9" (Some 10) (Some 24) ];
    }
  in
  let node seq pl =
    {
      Types.pn_seq = seq;
      pn_action = Some Types.Permit;
      pn_matches = [ Types.Match_prefix_list pl ];
      pn_sets = [];
      pn_goto_next = false;
    }
  in
  let policy =
    {
      Types.rp_name = "DEAD_TEST";
      rp_nodes = [ node 10 "PL_COVER"; node 20 "PL_DEAD" ];
    }
  in
  {
    c with
    Types.dc_prefix_lists =
      Smap.add "PL_COVER" cover (Smap.add "PL_DEAD" dead c.Types.dc_prefix_lists);
    dc_policies = Smap.add "DEAD_TEST" policy c.Types.dc_policies;
  }

let inject (g : G.t) (cls : string) : injected =
  let configs = g.G.model.Model.configs in
  let topo = g.G.model.Model.topo in
  let code =
    match Hoyan_analysis.Diagnostics.code_of_check cls with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Defects.inject: unknown class %s" cls)
  in
  let mk ?plan ?(specs = []) ?(intents = []) ?(routes = []) ?device configs =
    {
      inj_class = cls;
      inj_code = code;
      inj_device = device;
      inj_input = Lint.make ~topo ?plan ~specs configs;
      inj_intents = intents;
      inj_routes = routes;
    }
  in
  let with_cfg dev f = mk ~device:dev (update_config configs dev f) in
  let with_plan plan = mk ~plan configs in
  let with_spec spec = mk ~specs:[ ("injected", spec) ] configs in
  let has_policy name cfg = Types.find_policy cfg name <> None in
  let vendor_a_dev = find_device configs (fun c -> c.Types.dc_vendor = "vendorA") in
  let with_bgp f (c : Types.t) =
    { c with Types.dc_bgp = f c.Types.dc_bgp }
  in
  let mk_nb addr remote_asn =
    {
      Types.nb_addr = addr;
      nb_remote_asn = remote_asn;
      nb_import = Some "PASS";
      nb_export = Some "PASS";
      nb_rr_client = false;
      nb_next_hop_self = false;
      nb_add_paths = 0;
      nb_vrf = Route.default_vrf;
    }
  in
  let role_names role =
    List.filter_map
      (fun (d : Topology.device) ->
        if d.Topology.role = role && Smap.mem d.Topology.name configs then
          Some d.Topology.name
        else None)
      (Topology.devices topo)
    |> List.sort String.compare
  in
  let router_id dev = (Topology.device_exn topo dev).Topology.router_id in
  let mk_vrf name ~imports ~exports ~policy =
    {
      Types.vd_name = name;
      vd_rd = Printf.sprintf "64512:%s" name;
      vd_import_rts = imports;
      vd_export_rts = exports;
      vd_export_policy = policy;
    }
  in
  match cls with
  | "undefined-prefix-list" ->
      let dev = find_device configs (has_policy "PASS") in
      with_cfg dev
        (with_policy_nodes "PASS" (fun nodes ->
             List.map
               (fun (n : Types.policy_node) ->
                 {
                   n with
                   Types.pn_matches =
                     Types.Match_prefix_list "NO_SUCH_PL" :: n.Types.pn_matches;
                 })
               nodes))
  | "undefined-community-list" ->
      (* the RRs' RR_OUT_CORE references the community list of every
         region, including the device's own *)
      let dev =
        find_device configs (fun c ->
            has_policy "RR_OUT_CORE" c
            && Types.find_community_list c "ISP_R1" <> None)
      in
      with_cfg dev (fun c ->
          {
            c with
            Types.dc_community_lists =
              Smap.remove "ISP_R1" c.Types.dc_community_lists;
          })
  | "undefined-aspath-filter" ->
      let dev =
        find_device configs (fun c ->
            has_policy "RR_OUT" c && Types.find_aspath_filter c "BOGON" <> None)
      in
      with_cfg dev (fun c ->
          {
            c with
            Types.dc_aspath_filters = Smap.remove "BOGON" c.Types.dc_aspath_filters;
          })
  | "undefined-route-policy" ->
      let dev =
        find_device configs (fun c -> c.Types.dc_bgp.Types.bgp_neighbors <> [])
      in
      with_cfg dev (fun c ->
          let bgp = c.Types.dc_bgp in
          let neighbors =
            match bgp.Types.bgp_neighbors with
            | nb :: rest ->
                { nb with Types.nb_import = Some "NO_SUCH_POLICY" } :: rest
            | [] -> assert false
          in
          { c with Types.dc_bgp = { bgp with Types.bgp_neighbors = neighbors } })
  | "undefined-acl" ->
      let dev = find_device configs (fun c -> c.Types.dc_ifaces <> []) in
      with_cfg dev (fun c ->
          let ifaces =
            match c.Types.dc_ifaces with
            | i :: rest -> { i with Types.if_acl_in = Some "NO_SUCH_ACL" } :: rest
            | [] -> assert false
          in
          { c with Types.dc_ifaces = ifaces })
  | "ebgp-missing-policy" ->
      (* a policy-less eBGP session on the strict vendor-B profile *)
      let dev = find_device configs (fun c -> c.Types.dc_vendor = "vendorB") in
      with_cfg dev (fun c ->
          let bgp = c.Types.dc_bgp in
          let nb =
            {
              Types.nb_addr = Ip.of_string_exn "192.0.2.1";
              nb_remote_asn = bgp.Types.bgp_asn + 1;
              nb_import = None;
              nb_export = None;
              nb_rr_client = false;
              nb_next_hop_self = false;
              nb_add_paths = 0;
              nb_vrf = Route.default_vrf;
            }
          in
          {
            c with
            Types.dc_bgp =
              { bgp with Types.bgp_neighbors = bgp.Types.bgp_neighbors @ [ nb ] };
          })
  | "shadowed-policy-term" ->
      (* PASS's single node matches everything; a node after it is dead *)
      let dev = find_device configs (has_policy "PASS") in
      with_cfg dev
        (with_policy_nodes "PASS" (fun nodes -> nodes @ [ match_all_node 20 ]))
  | "shadowed-prefix-entry" ->
      with_cfg vendor_a_dev (fun c ->
          let pl =
            {
              Types.pl_name = "SHADOW";
              pl_family = Ip.Ipv4;
              pl_entries =
                [ pe 5 "10.0.0.0/8" None (Some 32); pe 10 "10.1.0.0/16" None (Some 24) ];
            }
          in
          {
            c with
            Types.dc_prefix_lists = Smap.add "SHADOW" pl c.Types.dc_prefix_lists;
          })
  | "invalid-aspath-regex" ->
      with_cfg vendor_a_dev (fun c ->
          let af =
            {
              Types.af_name = "BADRE";
              af_entries =
                [ { Types.ae_seq = 10; ae_action = Types.Permit; ae_regex = "(" } ];
            }
          in
          {
            c with
            Types.dc_aspath_filters = Smap.add "BADRE" af c.Types.dc_aspath_filters;
          })
  | "vrf-import-no-exporter" | "vrf-export-no-importer" ->
      let importing = String.equal cls "vrf-import-no-exporter" in
      with_cfg vendor_a_dev (fun c ->
          let vd =
            {
              Types.vd_name = "VPN_TEST";
              vd_rd = "64512:900";
              vd_import_rts = (if importing then [ "64512:999" ] else []);
              vd_export_rts = (if importing then [] else [ "64512:998" ]);
              vd_export_policy = None;
            }
          in
          let bgp = c.Types.dc_bgp in
          {
            c with
            Types.dc_bgp = { bgp with Types.bgp_vrfs = bgp.Types.bgp_vrfs @ [ vd ] };
          })
  | "plan-unknown-device" ->
      with_plan
        (Cp.make "injected"
           ~commands:[ ("no-such-device", "interface Eth0\n") ])
  | "plan-delete-error" ->
      with_plan
        (Cp.make "injected"
           ~commands:[ (vendor_a_dev, "no route-map NO_SUCH_RM 10\n") ])
  | "plan-parse-error" ->
      with_plan
        (Cp.make "injected"
           ~commands:[ (vendor_a_dev, "frobnicate 42 unknown keyword\n") ])
  | "rcl-parse-error" -> with_spec "PRE = "
  | "rcl-field-type" ->
      with_spec "POST || localPref = \"high\" |> count() = 0"
  | "rcl-invalid-regex" ->
      with_spec "POST || aspath matches \"(\" |> count() = 0"
  | "rcl-unreachable-predicate" ->
      with_spec
        "POST || (localPref = 100 and localPref = 200) |> count() = 0"
  | "undefined-interface" ->
      with_cfg vendor_a_dev (fun c ->
          let rule =
            {
              Types.pbr_iface = "NoSuchEth99";
              pbr_acl = "PBR_ACL";
              pbr_nexthop = Ip.of_string_exn "192.0.2.254";
            }
          in
          {
            c with
            Types.dc_acls = Smap.add "PBR_ACL" (catch_all_acl "PBR_ACL") c.Types.dc_acls;
            dc_pbr = rule :: c.Types.dc_pbr;
          })
  | "bgp-session-unidirectional" -> (
      (* a stanza towards another border's loopback with nothing back *)
      match role_names Topology.Wan_border with
      | b1 :: b2 :: _ ->
          with_cfg b1
            (with_bgp (fun bgp ->
                 {
                   bgp with
                   Types.bgp_neighbors =
                     bgp.Types.bgp_neighbors
                     @ [ mk_nb (router_id b2) bgp.Types.bgp_asn ];
                 }))
      | _ -> invalid_arg "Defects: needs two WAN borders")
  | "bgp-session-as-mismatch" ->
      (* corrupt the remote-as of an existing reciprocal RR session *)
      let rr_rids = List.map router_id (role_names Topology.Rr) in
      let border = List.hd (role_names Topology.Wan_border) in
      with_cfg border
        (with_bgp (fun bgp ->
             let corrupted = ref false in
             let neighbors =
               List.map
                 (fun (nb : Types.neighbor) ->
                   if
                     (not !corrupted)
                     && List.exists (Ip.equal nb.Types.nb_addr) rr_rids
                   then begin
                     corrupted := true;
                     { nb with Types.nb_remote_asn = nb.Types.nb_remote_asn + 1000 }
                   end
                   else nb)
                 bgp.Types.bgp_neighbors
             in
             if not !corrupted then
               invalid_arg "Defects: border has no RR session";
             { bgp with Types.bgp_neighbors = neighbors }))
  | "redistribution-loop" ->
      (* two VRFs importing each other's exports: a cycle, but with export
         policies so no leak finding rides along *)
      let dev =
        find_device configs (fun c ->
            c.Types.dc_vendor = "vendorA" && has_policy "PASS" c)
      in
      with_cfg dev
        (with_bgp (fun bgp ->
             {
               bgp with
               Types.bgp_vrfs =
                 bgp.Types.bgp_vrfs
                 @ [
                     mk_vrf "VPN_A" ~imports:[ "64512:801" ]
                       ~exports:[ "64512:802" ] ~policy:(Some "PASS");
                     mk_vrf "VPN_B" ~imports:[ "64512:802" ]
                       ~exports:[ "64512:801" ] ~policy:(Some "PASS");
                   ];
             }))
  | "vrf-route-leak" ->
      (* a one-way cross-VRF route-target edge with no export policy *)
      let dev =
        find_device configs (fun c ->
            c.Types.dc_vendor = "vendorA" && has_policy "PASS" c)
      in
      with_cfg dev
        (with_bgp (fun bgp ->
             {
               bgp with
               Types.bgp_vrfs =
                 bgp.Types.bgp_vrfs
                 @ [
                     mk_vrf "VPN_SRC" ~imports:[] ~exports:[ "64512:810" ]
                       ~policy:None;
                     mk_vrf "VPN_DST" ~imports:[ "64512:810" ] ~exports:[]
                       ~policy:(Some "PASS");
                   ];
             }))
  | "dead-policy-term" ->
      (* node 20's /9 range is exactly the union of node 10's two /10
         guarantee regions — dead, but invisible to the pairwise check *)
      with_cfg vendor_a_dev plant_dead_policy
  | "ibgp-propagation-gap" ->
      (* no route reflector treats anyone as a client any more: iBGP
         routes arrive at the RRs and die there *)
      let rr_names = role_names Topology.Rr in
      if rr_names = [] then invalid_arg "Defects: corpus has no RRs";
      let configs' =
        List.fold_left
          (fun cs rr ->
            update_config cs rr
              (with_bgp (fun bgp ->
                   {
                     bgp with
                     Types.bgp_neighbors =
                       List.map
                         (fun (nb : Types.neighbor) ->
                           { nb with Types.nb_rr_client = false })
                         bgp.Types.bgp_neighbors;
                   })))
          configs rr_names
      in
      let wan_asn =
        (Smap.find (List.hd rr_names) configs).Types.dc_bgp.Types.bgp_asn
      in
      let first_member =
        Smap.fold
          (fun dev (cfg : Types.t) acc ->
            if
              acc = None
              && cfg.Types.dc_bgp.Types.bgp_asn = wan_asn
              && cfg.Types.dc_bgp.Types.bgp_neighbors <> []
            then Some dev
            else acc)
          configs' None
      in
      mk ?device:first_member configs'
  | "dangling-static-nexthop" ->
      with_cfg vendor_a_dev (fun c ->
          let st =
            {
              Types.st_prefix = Prefix.of_string_exn "203.0.113.0/24";
              st_nexthop = Some (Ip.of_string_exn "198.51.100.1");
              st_iface = None;
              st_preference = 1;
              st_tag = 0;
              st_vrf = Route.default_vrf;
            }
          in
          { c with Types.dc_statics = st :: c.Types.dc_statics })
  | "bgp-session-family-mismatch" ->
      (* repoint the RR's stanza for a border at a freshly added IPv6
         loopback of that border: reciprocity holds, families disagree *)
      let border = List.hd (role_names Topology.Wan_border) in
      let rr =
        match role_names Topology.Rr with
        | rr :: _ -> rr
        | [] -> invalid_arg "Defects: corpus has no RRs"
      in
      let v6 = Ip.of_string_exn "2001:db8::99" in
      let border_rid = router_id border in
      let configs' =
        update_config configs border (fun c ->
            let lo6 =
              {
                Types.if_name = "Loopback6";
                if_addr = Some v6;
                if_plen = 128;
                if_bandwidth = 1e9;
                if_acl_in = None;
              }
            in
            { c with Types.dc_ifaces = c.Types.dc_ifaces @ [ lo6 ] })
      in
      let configs' =
        update_config configs' rr
          (with_bgp (fun bgp ->
               {
                 bgp with
                 Types.bgp_neighbors =
                   List.map
                     (fun (nb : Types.neighbor) ->
                       if Ip.equal nb.Types.nb_addr border_rid then
                         { nb with Types.nb_addr = v6 }
                       else nb)
                     bgp.Types.bgp_neighbors;
               }))
      in
      mk ~device:border configs'
  | "isis-adjacency-mismatch" ->
      let e =
        List.find
          (fun (e : Topology.edge) ->
            match
              ( Smap.find_opt e.Topology.src configs,
                Smap.find_opt e.Topology.dst configs )
            with
            | Some sc, Some dc ->
                sc.Types.dc_isis.Types.isis_enabled
                && dc.Types.dc_isis.Types.isis_enabled
                && List.exists
                     (fun (ii : Types.isis_iface) ->
                       String.equal ii.Types.ii_name e.Topology.src_if)
                     sc.Types.dc_isis.Types.isis_ifaces
            | _ -> false)
          (Topology.edges topo)
      in
      with_cfg e.Topology.src (fun c ->
          let isis = c.Types.dc_isis in
          {
            c with
            Types.dc_isis =
              {
                isis with
                Types.isis_ifaces =
                  List.filter
                    (fun (ii : Types.isis_iface) ->
                      not (String.equal ii.Types.ii_name e.Topology.src_if))
                    isis.Types.isis_ifaces;
              };
          })
  | "intent-statically-refuted" ->
      (* nobody originates this prefix, so expecting it present anywhere
         is statically refutable *)
      let dev = List.hd (role_names Topology.Wan_border) in
      mk ~device:dev
        ~intents:
          [
            {
              Semantic.ri_name = "injected-intent";
              ri_prefix = Prefix.of_string_exn "203.0.113.0/24";
              ri_devices = [ dev ];
              ri_expect = true;
            };
          ]
        configs
  | "plan-semantic-noop" ->
      (* comment lines parse cleanly and merge to nothing *)
      mk ~device:vendor_a_dev
        ~plan:
          (Cp.make "injected"
             ~commands:
               [ (vendor_a_dev, "! scheduled maintenance window\n! no-op\n") ])
        configs
  | "plan-wrong-dialect" ->
      (* vendor-B commands against a vendor-A device: parse errors on
         (at least) half the lines and an unchanged config *)
      mk ~device:vendor_a_dev
        ~plan:
          (Cp.make "injected"
             ~commands:
               [
                 ( vendor_a_dev,
                   "ip ip-prefix CUST index 10 permit 10.0.0.0 8\n\
                    bgp 64999\n\
                    peer 192.0.2.9 as-number 65001\n" );
               ])
        configs
  | "plan-edits-dead-term" ->
      (* the edited node 20 stays inside node 10's guarantee regions:
         dead (HOY024) before and after the change *)
      mk ~device:vendor_a_dev
        ~plan:
          (Cp.make "injected"
             ~commands:
               [
                 ( vendor_a_dev,
                   "ip prefix-list PL_DEAD2 seq 5 permit 10.0.0.0/9 ge 12 \
                    le 24\n\
                    route-map DEAD_TEST permit 20\n\
                   \ match ip prefix-list PL_DEAD2\n" );
               ])
        (update_config configs vendor_a_dev plant_dead_policy)
  | "plan-widens-ebgp-transit" ->
      let dev =
        find_device configs (fun c ->
            c.Types.dc_vendor = "vendorA"
            && c.Types.dc_bgp.Types.bgp_neighbors <> [])
      in
      let asn = (Smap.find dev configs).Types.dc_bgp.Types.bgp_asn in
      mk ~device:dev
        ~plan:
          (Cp.make "injected"
             ~commands:
               [
                 ( dev,
                   Printf.sprintf
                     "router bgp %d\n\
                     \ neighbor 192.0.2.101 remote-as 65090\n\
                     \ neighbor 192.0.2.105 remote-as 65091\n"
                     asn );
               ])
        configs
  | "plan-breaks-session" ->
      (* delete the border's stanza of a reciprocal border-RR session;
         the RR still points back after the change *)
      let border = List.hd (role_names Topology.Wan_border) in
      let rr_rids = List.map router_id (role_names Topology.Rr) in
      let nb =
        List.find_opt
          (fun (nb : Types.neighbor) ->
            List.exists (Ip.equal nb.Types.nb_addr) rr_rids)
          (Smap.find border configs).Types.dc_bgp.Types.bgp_neighbors
      in
      let addr =
        match nb with
        | Some nb -> nb.Types.nb_addr
        | None -> invalid_arg "Defects: border has no RR session"
      in
      mk ~device:border
        ~plan:
          (Cp.make "injected"
             ~commands:
               [
                 ( border,
                   Printf.sprintf "no router bgp neighbor %s\n"
                     (Ip.to_string addr) );
               ])
        configs
  | "plan-removes-origination" ->
      (* plant an extra origination on a well-connected device, then have
         the plan delete it: the only origin of a propagated prefix *)
      let dev =
        find_device configs (fun c ->
            c.Types.dc_vendor = "vendorA"
            && has_policy "PASS" c
            && c.Types.dc_bgp.Types.bgp_neighbors <> [])
      in
      let p = Prefix.of_string_exn "198.51.100.0/24" in
      mk ~device:dev
        ~plan:
          (Cp.make "injected"
             ~commands:
               [ (dev, "no router bgp network 198.51.100.0/24\n") ])
        (update_config configs dev
           (with_bgp (fun bgp ->
                {
                  bgp with
                  Types.bgp_networks =
                    bgp.Types.bgp_networks @ [ (p, Route.default_vrf) ];
                })))
  | "plan-withdraws-unknown-prefix" ->
      mk ~routes:g.G.input_routes
        ~plan:
          (Cp.make "injected"
             ~withdraw:[ Prefix.of_string_exn "203.0.113.0/24" ])
        configs
  | "plan-impact-summary" ->
      (* a new origination is a propagating change: the blast-radius
         summary fires *)
      let dev =
        find_device configs (fun c ->
            c.Types.dc_vendor = "vendorA"
            && c.Types.dc_bgp.Types.bgp_neighbors <> [])
      in
      let asn = (Smap.find dev configs).Types.dc_bgp.Types.bgp_asn in
      (* no ~device: the HOY037 summary is network-wide, not anchored *)
      mk ~routes:g.G.input_routes
        ~plan:
          (Cp.make "injected"
             ~commands:
               [
                 ( dev,
                   Printf.sprintf
                     "router bgp %d\n network 198.51.100.0/24\n" asn );
               ])
        configs
  | cls -> invalid_arg (Printf.sprintf "Defects.inject: unknown class %s" cls)

let inject_all (g : G.t) : injected list = List.map (inject g) classes
