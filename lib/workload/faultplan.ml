(** Named chaos plans for fault-injection runs.

    Each plan is a seeded {!Hoyan_dist.Chaos} configuration: the fault
    decisions it drives are pure functions of (seed, site, key,
    sequence), so a plan replays identically across runs and machines —
    a failure found under chaos can always be reproduced by name and
    seed.  Used by the CLI's [--chaos MODE] flag, the fault-injection
    test matrix and the chaos bench. *)

module Chaos = Hoyan_dist.Chaos

(** The failure modes the matrix sweeps.  Each mode concentrates the
    whole probability budget on one injection site, so a run isolates
    that site's recovery path. *)
type mode =
  | Crashes  (** worker crashes mid-subtask *)
  | Storage_loss  (** uploaded objects vanish from the store *)
  | Mq_faults  (** messages lost in flight or delivered twice *)
  | Stalls  (** workers wedge until their lease expires *)
  | Mixed  (** all of the above, each at a quarter of the budget *)

let mode_to_string = function
  | Crashes -> "crashes"
  | Storage_loss -> "storage-loss"
  | Mq_faults -> "mq-faults"
  | Stalls -> "stalls"
  | Mixed -> "mixed"

let mode_of_string = function
  | "crashes" | "crash" -> Some Crashes
  | "storage-loss" | "storage" -> Some Storage_loss
  | "mq-faults" | "mq" -> Some Mq_faults
  | "stalls" | "stall" -> Some Stalls
  | "mixed" | "all" -> Some Mixed
  | _ -> None

let all_modes = [ Crashes; Storage_loss; Mq_faults; Stalls; Mixed ]

(** [plan mode ~prob ~seed] builds the chaos plan for one matrix cell:
    [prob] is the per-decision fault probability at the mode's site(s).
    [prob = 0.] yields {!Chaos.none} (the failure-free baseline the
    matrix compares against). *)
let plan ?(seed = 42) ~prob (mode : mode) : Chaos.t =
  if prob <= 0. then Chaos.none
  else
    match mode with
    | Crashes -> Chaos.make ~seed ~crash_prob:prob ()
    | Storage_loss -> Chaos.make ~seed ~storage_loss_prob:prob ()
    | Mq_faults ->
        (* split between loss and duplication: both ends of at-least- /
           at-most-once delivery get exercised *)
        Chaos.make ~seed ~mq_drop_prob:(prob /. 2.)
          ~mq_dup_prob:(prob /. 2.) ()
    | Stalls -> Chaos.make ~seed ~stall_prob:prob ()
    | Mixed ->
        let p = prob /. 4. in
        Chaos.make ~seed ~crash_prob:p ~storage_loss_prob:p
          ~mq_drop_prob:(p /. 2.) ~mq_dup_prob:(p /. 2.) ~stall_prob:p ()

(** The fault probabilities the test matrix and the chaos bench sweep. *)
let matrix_probs = [ 0.0; 0.2; 0.5 ]
