(** Configuration parser for vendor B (a VRP-like dialect).

    {v
    sysname BORDER-2
    interface Eth0
     ip address 10.0.0.2 31
     isis cost 10
    ip ip-prefix PL index 5 permit 10.0.0.0 24 less-equal 32
    route-policy RP permit node 10
     if-match ip-prefix PL
     apply local-preference 300
    bgp 65001
     peer 10.0.0.1 as-number 65002
     peer 10.0.0.1 route-policy RP import
    v}

    Note the Figure-10(b) trap this dialect reproduces: [ip ip-prefix]
    defines an {e IPv4} list; when a policy matches it against an IPv6
    route, vendor B "only checks IPv4 prefixes and permits all IPv6
    prefixes by default" (see {!Vsb.ip_prefix_permits_other_family}).
    Operators must use [ip ipv6-prefix] for IPv6. *)

open Hoyan_net
module L = Lexutil

let ( let* ) = Option.bind

let parse_action = function
  | "permit" -> Some Types.Permit
  | "deny" -> Some Types.Deny
  | _ -> None

let parse_proto = function
  | "bgp" -> Some Route.Bgp
  | "isis" -> Some Route.Isis
  | "static" -> Some Route.Static
  | "direct" -> Some Route.Direct
  | _ -> None

type state = { mutable cfg : Types.t; mutable errors : L.error list }

let err st lnum fmt =
  Printf.ksprintf
    (fun msg -> st.errors <- { L.err_line = lnum; err_msg = msg } :: st.errors)
    fmt

let sort_by f l = List.sort (fun a b -> Int.compare (f a) (f b)) l

(* The accumulation helpers mirror Parser_a; kept separate because the two
   parsers evolved independently in production (and their divergence is
   itself a source of the Table-4 "parsing" issue class). *)

let add_prefix_list st name family entry =
  let cfg = st.cfg in
  let pl =
    match Types.find_prefix_list cfg name with
    | Some pl -> pl
    | None -> { Types.pl_name = name; pl_family = family; pl_entries = [] }
  in
  let pl =
    { pl with
      Types.pl_entries =
        sort_by (fun e -> e.Types.pe_seq) (entry :: pl.Types.pl_entries) }
  in
  st.cfg <-
    { cfg with
      Types.dc_prefix_lists = Types.Smap.add name pl cfg.Types.dc_prefix_lists }

let add_community_list st name entry =
  let cfg = st.cfg in
  let cl =
    match Types.find_community_list cfg name with
    | Some cl -> cl
    | None -> { Types.cl_name = name; cl_entries = [] }
  in
  let cl =
    { cl with
      Types.cl_entries =
        sort_by (fun e -> e.Types.ce_seq) (entry :: cl.Types.cl_entries) }
  in
  st.cfg <-
    { cfg with
      Types.dc_community_lists =
        Types.Smap.add name cl cfg.Types.dc_community_lists }

let add_aspath_filter st name entry =
  let cfg = st.cfg in
  let af =
    match Types.find_aspath_filter cfg name with
    | Some af -> af
    | None -> { Types.af_name = name; af_entries = [] }
  in
  let af =
    { af with
      Types.af_entries =
        sort_by (fun e -> e.Types.ae_seq) (entry :: af.Types.af_entries) }
  in
  st.cfg <-
    { cfg with
      Types.dc_aspath_filters =
        Types.Smap.add name af cfg.Types.dc_aspath_filters }

let add_acl_entry st name entry =
  let cfg = st.cfg in
  let acl =
    match Types.find_acl cfg name with
    | Some a -> a
    | None -> { Types.acl_name = name; acl_entries = [] }
  in
  let acl =
    { acl with
      Types.acl_entries =
        sort_by (fun e -> e.Types.ace_seq) (entry :: acl.Types.acl_entries) }
  in
  st.cfg <-
    { cfg with Types.dc_acls = Types.Smap.add name acl cfg.Types.dc_acls }

let add_policy_node st name node =
  let cfg = st.cfg in
  let rp =
    match Types.find_policy cfg name with
    | Some rp -> rp
    | None -> { Types.rp_name = name; rp_nodes = [] }
  in
  let nodes =
    node
    :: List.filter (fun n -> n.Types.pn_seq <> node.Types.pn_seq) rp.Types.rp_nodes
  in
  let rp = { rp with Types.rp_nodes = sort_by (fun n -> n.Types.pn_seq) nodes } in
  st.cfg <-
    { cfg with Types.dc_policies = Types.Smap.add name rp cfg.Types.dc_policies }

(* --- clause parsers ---------------------------------------------------- *)

let parse_if_match tokens : Types.match_clause option =
  match tokens with
  | [ "ip-prefix"; name ] | [ "ipv6-prefix"; name ] ->
      Some (Types.Match_prefix_list name)
  | [ "community-filter"; name ] -> Some (Types.Match_community_list name)
  | [ "as-path-filter"; name ] -> Some (Types.Match_aspath_filter name)
  | [ "next-hop"; p ] ->
      let* p = Prefix.of_string p in
      Some (Types.Match_nexthop p)
  | [ "tag"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Match_tag n)
  | [ "protocol"; p ] ->
      let* p = parse_proto p in
      Some (Types.Match_protocol p)
  | _ -> None

let parse_communities toks =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest ->
        let* c = Community.of_string c in
        go (c :: acc) rest
  in
  go [] toks

let parse_apply tokens : Types.set_clause option =
  match tokens with
  | [ "local-preference"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_local_pref n)
  | [ "cost"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_med n)
  | [ "preferred-value"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_weight n)
  | [ "preference"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_preference n)
  | [ "tag"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_tag n)
  | [ "ip-address"; "next-hop"; ip ] ->
      let* ip = Ip.of_string ip in
      Some (Types.Set_nexthop ip)
  | "as-path" :: rest -> (
      match List.rev rest with
      | "overwrite" :: asns_rev ->
          let* asns =
            List.fold_left
              (fun acc a ->
                let* acc = acc in
                let* a = L.int_opt a in
                Some (a :: acc))
              (Some []) (List.rev asns_rev)
          in
          Some (Types.Set_aspath_overwrite (List.rev asns))
      | "additive" :: asns_rev -> (
          match List.rev asns_rev with
          | [ asn ] ->
              let* asn = L.int_opt asn in
              Some (Types.Set_aspath_prepend (asn, 1))
          | [ asn; count ] ->
              let* asn = L.int_opt asn in
              let* count = L.int_opt count in
              Some (Types.Set_aspath_prepend (asn, count))
          | _ -> None)
      | _ -> None)
  | "community-delete" :: comms ->
      let* cs = parse_communities comms in
      Some (Types.Set_communities (Types.Comm_remove, cs))
  | "community" :: rest ->
      let additive, comms =
        match List.rev rest with
        | "additive" :: r -> (true, List.rev r)
        | _ -> (false, rest)
      in
      let* cs = parse_communities comms in
      Some
        (Types.Set_communities
           ((if additive then Types.Comm_add else Types.Comm_replace), cs))
  | _ -> None

(* --- stanza parsers ---------------------------------------------------- *)

let parse_interface st (header : L.line) (body : L.line list) =
  let name = match header.L.tokens with _ :: n :: _ -> n | _ -> "" in
  let iface =
    ref
      { Types.if_name = name; if_addr = None; if_plen = 32;
        if_bandwidth = 10e9; if_acl_in = None }
  in
  let isis_cost = ref None and isis_te = ref false in
  List.iter
    (fun (l : L.line) ->
      match l.L.tokens with
      | [ "ip"; "address"; a; len ] | [ "ipv6"; "address"; a; len ] -> (
          match (Ip.of_string a, L.int_opt len) with
          | Some a, Some len when len >= 0 && len <= Ip.family_bits (Ip.family a)
            ->
              iface := { !iface with Types.if_addr = Some a; if_plen = len }
          | _ -> err st l.L.lnum "bad interface address")
      | [ "bandwidth"; b ] -> (
          match L.float_opt b with
          | Some b -> iface := { !iface with Types.if_bandwidth = b }
          | None -> err st l.L.lnum "bad bandwidth")
      | [ "traffic-filter"; "inbound"; "acl"; acl ] ->
          iface := { !iface with Types.if_acl_in = Some acl }
      | [ "isis"; "enable"; _ ] -> ()
      | [ "isis"; "cost"; c ] -> isis_cost := L.int_opt c
      | [ "isis"; "traffic-eng" ] -> isis_te := true
      | _ -> err st l.L.lnum "unknown interface line: %s" l.L.raw)
    body;
  st.cfg <- { st.cfg with Types.dc_ifaces = !iface :: st.cfg.Types.dc_ifaces };
  match !isis_cost with
  | Some c ->
      let ii = { Types.ii_name = name; ii_cost = c; ii_te = !isis_te } in
      st.cfg <-
        { st.cfg with
          Types.dc_isis =
            { st.cfg.Types.dc_isis with
              Types.isis_enabled = true;
              isis_ifaces = ii :: st.cfg.Types.dc_isis.Types.isis_ifaces } }
  | None -> ()

let parse_route_policy st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | "route-policy" :: name :: rest -> (
      let action, seq =
        match rest with
        | [ a; "node"; s ] -> (parse_action a, L.int_opt s)
        | [ "node"; s ] -> (None, L.int_opt s) (* no explicit action: VSB *)
        | _ -> (None, None)
      in
      match seq with
      | None -> err st header.L.lnum "bad route-policy header: %s" header.L.raw
      | Some seq ->
          let matches = ref [] and sets = ref [] and goto_next = ref false in
          List.iter
            (fun (l : L.line) ->
              match l.L.tokens with
              | "if-match" :: rest -> (
                  match parse_if_match rest with
                  | Some m -> matches := m :: !matches
                  | None -> err st l.L.lnum "unknown if-match: %s" l.L.raw)
              | "apply" :: rest -> (
                  match parse_apply rest with
                  | Some s -> sets := s :: !sets
                  | None -> err st l.L.lnum "unknown apply: %s" l.L.raw)
              | [ "goto"; "next-node" ] -> goto_next := true
              | _ -> err st l.L.lnum "unknown route-policy line: %s" l.L.raw)
            body;
          add_policy_node st name
            {
              Types.pn_seq = seq;
              pn_action = action;
              pn_matches = List.rev !matches;
              pn_sets = List.rev !sets;
              pn_goto_next = !goto_next;
            })
  | _ -> err st header.L.lnum "bad route-policy header"

let parse_bgp st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | [ "bgp"; asn ] -> (
      match L.int_opt asn with
      | None -> err st header.L.lnum "bad BGP ASN"
      | Some asn ->
          let bgp = ref { st.cfg.Types.dc_bgp with Types.bgp_asn = asn } in
          let update_peer ip f =
            match Ip.of_string ip with
            | None -> None
            | Some addr ->
                let nb =
                  match
                    List.find_opt
                      (fun n -> Ip.equal n.Types.nb_addr addr)
                      !bgp.Types.bgp_neighbors
                  with
                  | Some nb -> nb
                  | None ->
                      {
                        Types.nb_addr = addr;
                        nb_remote_asn = 0;
                        nb_import = None;
                        nb_export = None;
                        nb_rr_client = false;
                        nb_next_hop_self = false;
                        nb_add_paths = 0;
                        nb_vrf = Route.default_vrf;
                      }
                in
                let nb = f nb in
                bgp :=
                  { !bgp with
                    Types.bgp_neighbors =
                      nb
                      :: List.filter
                           (fun n -> not (Ip.equal n.Types.nb_addr addr))
                           !bgp.Types.bgp_neighbors };
                Some ()
          in
          List.iter
            (fun (l : L.line) ->
              let bad () = err st l.L.lnum "unknown bgp line: %s" l.L.raw in
              let ok = function Some () -> () | None -> bad () in
              match l.L.tokens with
              | [ "router-id"; ip ] -> (
                  match Ip.of_string ip with
                  | Some ip -> bgp := { !bgp with Types.bgp_router_id = Some ip }
                  | None -> bad ())
              | "network" :: a :: len :: rest -> (
                  let vrf =
                    match rest with
                    | [ "vpn-instance"; v ] -> Some v
                    | [] -> Some Route.default_vrf
                    | _ -> None
                  in
                  match (Ip.of_string a, L.int_opt len, vrf) with
                  | Some a, Some len, Some vrf -> (
                      match Prefix.make_opt a len with
                      | Some p ->
                          bgp :=
                            { !bgp with
                              Types.bgp_networks =
                                (p, vrf) :: !bgp.Types.bgp_networks }
                      | None -> bad ())
                  | _ -> bad ())
              | "aggregate" :: a :: len :: opts -> (
                  match
                    (Option.bind
                       (match (Ip.of_string a, L.int_opt len) with
                       | Some a, Some len -> Some (a, len)
                       | _ -> None)
                       (fun (a, len) -> Prefix.make_opt a len))
                  with
                  | Some agg_prefix ->
                      let rec scan as_set summary vrf = function
                        | [] -> Some (as_set, summary, vrf)
                        | "as-set" :: r -> scan true summary vrf r
                        | "detail-suppressed" :: r -> scan as_set true vrf r
                        | "vpn-instance" :: v :: r -> scan as_set summary v r
                        | _ -> None
                      in
                      (match scan false false Route.default_vrf opts with
                      | Some (as_set, summary_only, vrf) ->
                          bgp :=
                            { !bgp with
                              Types.bgp_aggregates =
                                {
                                  Types.ag_prefix = agg_prefix;
                                  ag_as_set = as_set;
                                  ag_summary_only = summary_only;
                                  ag_vrf = vrf;
                                }
                                :: !bgp.Types.bgp_aggregates }
                      | None -> bad ())
                  | _ -> bad ())
              | "import-route" :: proto :: rest -> (
                  match parse_proto proto with
                  | Some p ->
                      let policy =
                        match rest with
                        | [ "route-policy"; rp ] -> Some rp
                        | [] -> None
                        | _ -> None
                      in
                      bgp :=
                        { !bgp with
                          Types.bgp_redistribute =
                            (p, policy) :: !bgp.Types.bgp_redistribute }
                  | None -> bad ())
              | [ "peer"; ip; "as-number"; asn ] -> (
                  match L.int_opt asn with
                  | Some asn ->
                      ok
                        (update_peer ip (fun nb ->
                             { nb with Types.nb_remote_asn = asn }))
                  | None -> bad ())
              | [ "peer"; ip; "route-policy"; rp;
                  (("import" | "export") as dir) ] ->
                  ok
                    (update_peer ip (fun nb ->
                         if String.equal dir "import" then
                           { nb with Types.nb_import = Some rp }
                         else { nb with Types.nb_export = Some rp }))
              | [ "peer"; ip; "next-hop-local" ] ->
                  ok
                    (update_peer ip (fun nb ->
                         { nb with Types.nb_next_hop_self = true }))
              | [ "peer"; ip; "reflect-client" ] ->
                  ok
                    (update_peer ip (fun nb ->
                         { nb with Types.nb_rr_client = true }))
              | [ "peer"; ip; "additional-paths"; n ] -> (
                  match L.int_opt n with
                  | Some n ->
                      ok
                        (update_peer ip (fun nb ->
                             { nb with Types.nb_add_paths = n }))
                  | None -> bad ())
              | [ "peer"; ip; "vpn-instance"; v ] ->
                  ok (update_peer ip (fun nb -> { nb with Types.nb_vrf = v }))
              | _ -> bad ())
            body;
          st.cfg <- { st.cfg with Types.dc_bgp = !bgp })
  | _ -> err st header.L.lnum "bad bgp header"

let parse_isis st (_header : L.line) (body : L.line list) =
  let isis = ref { st.cfg.Types.dc_isis with Types.isis_enabled = true } in
  List.iter
    (fun (l : L.line) ->
      match l.L.tokens with
      | [ "network-entity"; n ] -> isis := { !isis with Types.isis_net = n }
      | [ "circuit-cost"; c ] -> (
          match L.int_opt c with
          | Some c -> isis := { !isis with Types.isis_default_cost = Some c }
          | None -> err st l.L.lnum "bad circuit-cost")
      | [ "traffic-eng" ] -> isis := { !isis with Types.isis_te = true }
      | [ "cost-style"; _ ] -> ()
      | _ -> err st l.L.lnum "unknown isis line: %s" l.L.raw)
    body;
  st.cfg <- { st.cfg with Types.dc_isis = !isis }

let parse_vpn_instance st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | [ "ip"; "vpn-instance"; name ] ->
      let vd =
        ref
          {
            Types.vd_name = name;
            vd_rd = "";
            vd_import_rts = [];
            vd_export_rts = [];
            vd_export_policy = None;
          }
      in
      List.iter
        (fun (l : L.line) ->
          match l.L.tokens with
          | [ "route-distinguisher"; rd ] -> vd := { !vd with Types.vd_rd = rd }
          | [ "vpn-target"; rt; "import-extcommunity" ] ->
              vd :=
                { !vd with Types.vd_import_rts = rt :: !vd.Types.vd_import_rts }
          | [ "vpn-target"; rt; "export-extcommunity" ] ->
              vd :=
                { !vd with Types.vd_export_rts = rt :: !vd.Types.vd_export_rts }
          | [ "export"; "route-policy"; rp ] ->
              vd := { !vd with Types.vd_export_policy = Some rp }
          | _ -> err st l.L.lnum "unknown vpn-instance line: %s" l.L.raw)
        body;
      st.cfg <-
        { st.cfg with
          Types.dc_bgp =
            { st.cfg.Types.dc_bgp with
              Types.bgp_vrfs = !vd :: st.cfg.Types.dc_bgp.Types.bgp_vrfs } }
  | _ -> err st header.L.lnum "bad vpn-instance header"

let parse_sr_policy st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | [ "sr-policy"; name; "endpoint"; ep; "color"; color ] -> (
      match (Ip.of_string ep, L.int_opt color) with
      | Some endpoint, Some color ->
          let pref = ref 100 and segments = ref [] in
          List.iter
            (fun (l : L.line) ->
              match l.L.tokens with
              | "segment-list" :: segs -> segments := segs
              | [ "preference"; p ] -> (
                  match L.int_opt p with
                  | Some p -> pref := p
                  | None -> err st l.L.lnum "bad preference")
              | _ -> err st l.L.lnum "unknown sr-policy line: %s" l.L.raw)
            body;
          st.cfg <-
            { st.cfg with
              Types.dc_sr_policies =
                {
                  Types.sp_name = name;
                  sp_endpoint = endpoint;
                  sp_color = color;
                  sp_segments = !segments;
                  sp_preference = !pref;
                }
                :: st.cfg.Types.dc_sr_policies }
      | _ -> err st header.L.lnum "bad sr-policy header")
  | _ -> err st header.L.lnum "bad sr-policy header"

let parse_acl st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | [ "acl"; "name"; name ] ->
      List.iter
        (fun (l : L.line) ->
          let bad () = err st l.L.lnum "unknown acl rule: %s" l.L.raw in
          match l.L.tokens with
          | "rule" :: seq :: action :: spec -> (
              match (L.int_opt seq, parse_action action) with
              | Some seq, Some action ->
                  let proto, spec =
                    match spec with
                    | "tcp" :: r -> (Some 6, r)
                    | "udp" :: r -> (Some 17, r)
                    | r -> (None, r)
                  in
                  let rec scan src dst dport = function
                    | [] -> Some (src, dst, dport)
                    | "source" :: p :: r -> (
                        match Prefix.of_string p with
                        | Some p -> scan (Some p) dst dport r
                        | None -> None)
                    | "destination" :: p :: r -> (
                        match Prefix.of_string p with
                        | Some p -> scan src (Some p) dport r
                        | None -> None)
                    | "destination-port" :: "eq" :: p :: r -> (
                        match L.int_opt p with
                        | Some p -> scan src dst (Some (p, p)) r
                        | None -> None)
                    | _ -> None
                  in
                  (match scan None None None spec with
                  | Some (src, dst, dport) ->
                      add_acl_entry st name
                        {
                          Types.ace_seq = seq;
                          ace_action = action;
                          ace_src = src;
                          ace_dst = dst;
                          ace_proto = proto;
                          ace_dport = dport;
                        }
                  | None -> bad ())
              | _ -> bad ())
          | _ -> bad ())
        body
  | _ -> err st header.L.lnum "bad acl header"

(* --- single-line top-level statements ----------------------------------- *)

let rec parse_ge_le ge le = function
  | [] -> Some (ge, le)
  | "greater-equal" :: n :: rest ->
      let* n = L.int_opt n in
      parse_ge_le (Some n) le rest
  | "less-equal" :: n :: rest ->
      let* n = L.int_opt n in
      parse_ge_le ge (Some n) rest
  | _ -> None

let parse_top_line st (l : L.line) =
  let bad () = err st l.L.lnum "unknown line: %s" l.L.raw in
  match l.L.tokens with
  | [ "sysname"; h ] -> st.cfg <- { st.cfg with Types.dc_device = h }
  | [ "isolate"; "enable" ] -> st.cfg <- { st.cfg with Types.dc_isolated = true }
  | "ip" :: (("ip-prefix" | "ipv6-prefix") as kind) :: name :: "index" :: seq
    :: action :: addr :: len :: rest -> (
      match
        (L.int_opt seq, parse_action action, Ip.of_string addr, L.int_opt len,
         parse_ge_le None None rest)
      with
      | Some seq, Some action, Some addr, Some len, Some (ge, le) ->
          let family =
            if String.equal kind "ip-prefix" then Ip.Ipv4 else Ip.Ipv6
          in
          (* A mismatched family (e.g. "ip ip-prefix" with an IPv6
             address) is the Figure-10(b) operator mistake: the vendor
             accepts the command but the entry can never match — the list
             exists with its *declared* family and no usable entry, and
             the "ip-prefix permits other family" VSB then lets every
             IPv6 route through the policy node. *)
          if Ip.family addr <> family then begin
            err st l.L.lnum
              "address family of %s does not match %s (entry ineffective)"
              (Ip.to_string addr) kind;
            (* declare the list so policy references resolve *)
            if Types.find_prefix_list st.cfg name = None then
              st.cfg <-
                { st.cfg with
                  Types.dc_prefix_lists =
                    Types.Smap.add name
                      { Types.pl_name = name; pl_family = family;
                        pl_entries = [] }
                      st.cfg.Types.dc_prefix_lists }
          end
          else (
            match Prefix.make_opt addr len with
            | Some pe_prefix ->
                add_prefix_list st name family
                  { Types.pe_seq = seq; pe_action = action; pe_prefix;
                    pe_ge = ge; pe_le = le }
            | None -> bad ())
      | _ -> bad ())
  | "ip" :: "community-filter" :: name :: "index" :: seq :: action :: comms
    -> (
      match (L.int_opt seq, parse_action action, parse_communities comms) with
      | Some seq, Some action, Some members ->
          add_community_list st name
            { Types.ce_seq = seq; ce_action = action; ce_members = members }
      | _ -> bad ())
  | "ip" :: "as-path-filter" :: name :: "index" :: seq :: action :: re -> (
      match (L.int_opt seq, parse_action action) with
      | Some seq, Some action ->
          add_aspath_filter st name
            { Types.ae_seq = seq; ae_action = action;
              ae_regex = String.concat " " re }
      | _ -> bad ())
  | "ip" :: "route-static" :: rest -> (
      let vrf, rest =
        match rest with
        | "vpn-instance" :: v :: r -> (v, r)
        | r -> (Route.default_vrf, r)
      in
      match rest with
      | addr :: len :: target :: opts -> (
          match (Ip.of_string addr, L.int_opt len) with
          | Some addr, Some len ->
              let nexthop = Ip.of_string target in
              let iface = if nexthop = None then Some target else None in
              let rec scan pref tag = function
                | [] -> Some (pref, tag)
                | "preference" :: n :: r -> (
                    match L.int_opt n with Some n -> scan n tag r | None -> None)
                | "tag" :: n :: r -> (
                    match L.int_opt n with Some n -> scan pref n r | None -> None)
                | _ -> None
              in
              (match (scan 60 0 opts, Prefix.make_opt addr len) with
              | Some (pref, tag), Some st_prefix ->
                  st.cfg <-
                    { st.cfg with
                      Types.dc_statics =
                        {
                          Types.st_prefix;
                          st_nexthop = nexthop;
                          st_iface = iface;
                          st_preference = pref;
                          st_tag = tag;
                          st_vrf = vrf;
                        }
                        :: st.cfg.Types.dc_statics }
              | _ -> bad ())
          | _ -> bad ())
      | _ -> bad ())
  | [ "traffic-policy"; "interface"; ifname; "acl"; acl; "redirect";
      "next-hop"; nh ] -> (
      match Ip.of_string nh with
      | Some nh ->
          st.cfg <-
            { st.cfg with
              Types.dc_pbr =
                { Types.pbr_iface = ifname; pbr_acl = acl; pbr_nexthop = nh }
                :: st.cfg.Types.dc_pbr }
      | None -> bad ())
  | _ -> bad ()

(* --- entry point -------------------------------------------------------- *)

(** Parse a full vendor-B configuration. *)
let parse ?(device = "unknown") (text : string) : Types.t * L.error list =
  let st = { cfg = Types.empty ~device ~vendor:"vendorB"; errors = [] } in
  let lines = L.lines_of_string ~comment:'#' text in
  List.iter
    (fun (header, body) ->
      match header.L.tokens with
      | "interface" :: _ -> parse_interface st header body
      | "route-policy" :: _ -> parse_route_policy st header body
      | [ "bgp"; _ ] -> parse_bgp st header body
      | [ "isis"; _ ] -> parse_isis st header body
      | [ "ip"; "vpn-instance"; _ ] -> parse_vpn_instance st header body
      | "sr-policy" :: _ -> parse_sr_policy st header body
      | [ "acl"; "name"; _ ] -> parse_acl st header body
      | _ ->
          if body = [] then parse_top_line st header
          else err st header.L.lnum "unknown stanza: %s" header.L.raw)
    (L.stanzas lines);
  (st.cfg, List.rev st.errors)
