(** Change plans: the input of a change-verification request (§2.2).

    A change plan consists of planned topology changes plus, per target
    device, a block of configuration commands written in {e that device's
    vendor dialect} ("typically a few hundred to a few thousand lines of
    commands").  Hoyan parses the commands and applies them incrementally
    to the pre-computed base network model.

    Command blocks mix two kinds of lines:
    - ordinary configuration stanzas (added/merged into the device config);
    - deletion commands ([no ...] for vendor A, [undo ...] for vendor B).

    Applying a block to a device of the {e wrong} vendor yields parse
    errors and an (almost) unchanged config — which is exactly the
    "wrong command format used for a different vendor" risk class of
    Table 6 that Hoyan catches as an intent violation downstream. *)

open Hoyan_net
module L = Lexutil

type topo_op =
  | Add_device of Topology.device
  | Remove_device of string
  | Add_link of {
      la : string;
      la_if : string;
      lb : string;
      lb_if : string;
      l_bandwidth : float;
    }
  | Remove_link of { ra : string; rb : string }

type t = {
  cp_name : string;
  cp_topo_ops : topo_op list;
  cp_commands : (string * string) list; (* device name, command block *)
  cp_new_routes : Route.t list; (* e.g. a new prefix announcement *)
  cp_withdraw : Prefix.t list; (* prefix reclamation: inputs to remove *)
}

let make ?(topo_ops = []) ?(commands = []) ?(new_routes = [])
    ?(withdraw = []) name =
  {
    cp_name = name;
    cp_topo_ops = topo_ops;
    cp_commands = commands;
    cp_new_routes = new_routes;
    cp_withdraw = withdraw;
  }

let command_line_count t =
  List.fold_left
    (fun n (_, block) ->
      n
      + (String.split_on_char '\n' block
        |> List.filter (fun l -> String.trim l <> "")
        |> List.length))
    0 t.cp_commands

(* ------------------------------------------------------------------ *)
(* Config merging                                                      *)
(* ------------------------------------------------------------------ *)

let merge_sorted_by key xs ys =
  (* ys (the delta) override xs entries with equal keys *)
  let keep x = not (List.exists (fun y -> key y = key x) ys) in
  List.sort (fun a b -> Int.compare (key a) (key b)) (List.filter keep xs @ ys)

let merge_prefix_lists base delta =
  Types.Smap.union
    (fun _ (b : Types.prefix_list) (d : Types.prefix_list) ->
      Some
        { d with
          Types.pl_entries =
            merge_sorted_by
              (fun e -> e.Types.pe_seq)
              b.Types.pl_entries d.Types.pl_entries })
    base delta

let merge_community_lists base delta =
  Types.Smap.union
    (fun _ (b : Types.community_list) (d : Types.community_list) ->
      Some
        { d with
          Types.cl_entries =
            merge_sorted_by
              (fun e -> e.Types.ce_seq)
              b.Types.cl_entries d.Types.cl_entries })
    base delta

let merge_aspath_filters base delta =
  Types.Smap.union
    (fun _ (b : Types.aspath_filter) (d : Types.aspath_filter) ->
      Some
        { d with
          Types.af_entries =
            merge_sorted_by
              (fun e -> e.Types.ae_seq)
              b.Types.af_entries d.Types.af_entries })
    base delta

let merge_policies base delta =
  Types.Smap.union
    (fun _ (b : Types.route_policy) (d : Types.route_policy) ->
      Some
        { d with
          Types.rp_nodes =
            merge_sorted_by
              (fun n -> n.Types.pn_seq)
              b.Types.rp_nodes d.Types.rp_nodes })
    base delta

let merge_acls base delta =
  Types.Smap.union
    (fun _ (b : Types.acl) (d : Types.acl) ->
      Some
        { d with
          Types.acl_entries =
            merge_sorted_by
              (fun e -> e.Types.ace_seq)
              b.Types.acl_entries d.Types.acl_entries })
    base delta

(* Neighbor commands are attribute-wise: "peer X route-policy P export"
   only touches the export policy, it does not reset the session's other
   attributes.  Overlay the delta's non-default fields onto the base. *)
let overlay_neighbor (b : Types.neighbor) (d : Types.neighbor) :
    Types.neighbor =
  {
    Types.nb_addr = b.Types.nb_addr;
    nb_remote_asn =
      (if d.Types.nb_remote_asn <> 0 then d.Types.nb_remote_asn
       else b.Types.nb_remote_asn);
    nb_import =
      (match d.Types.nb_import with Some _ as p -> p | None -> b.Types.nb_import);
    nb_export =
      (match d.Types.nb_export with Some _ as p -> p | None -> b.Types.nb_export);
    nb_rr_client = b.Types.nb_rr_client || d.Types.nb_rr_client;
    nb_next_hop_self = b.Types.nb_next_hop_self || d.Types.nb_next_hop_self;
    nb_add_paths =
      (if d.Types.nb_add_paths > 0 then d.Types.nb_add_paths
       else b.Types.nb_add_paths);
    nb_vrf =
      (if String.equal d.Types.nb_vrf Route.default_vrf then b.Types.nb_vrf
       else d.Types.nb_vrf);
  }

let merge_neighbors base delta =
  let merged_base =
    List.map
      (fun (n : Types.neighbor) ->
        match
          List.find_opt
            (fun (d : Types.neighbor) -> Ip.equal d.Types.nb_addr n.Types.nb_addr)
            delta
        with
        | Some d -> overlay_neighbor n d
        | None -> n)
      base
  in
  let new_neighbors =
    List.filter
      (fun (d : Types.neighbor) ->
        not
          (List.exists
             (fun (n : Types.neighbor) ->
               Ip.equal n.Types.nb_addr d.Types.nb_addr)
             base))
      delta
  in
  merged_base @ new_neighbors

let merge_bgp (base : Types.bgp_config) (delta : Types.bgp_config) =
  let or_default d b = if d = 0 then b else d in
  {
    Types.bgp_asn = or_default delta.Types.bgp_asn base.Types.bgp_asn;
    bgp_router_id =
      (match delta.Types.bgp_router_id with
      | Some _ as r -> r
      | None -> base.Types.bgp_router_id);
    bgp_neighbors = merge_neighbors base.Types.bgp_neighbors delta.Types.bgp_neighbors;
    bgp_networks =
      List.sort_uniq Stdlib.compare
        (base.Types.bgp_networks @ delta.Types.bgp_networks);
    bgp_aggregates =
      List.filter
        (fun (a : Types.aggregate) ->
          not
            (List.exists
               (fun (d : Types.aggregate) ->
                 Prefix.equal d.Types.ag_prefix a.Types.ag_prefix
                 && String.equal d.Types.ag_vrf a.Types.ag_vrf)
               delta.Types.bgp_aggregates))
        base.Types.bgp_aggregates
      @ delta.Types.bgp_aggregates;
    bgp_redistribute =
      List.sort_uniq Stdlib.compare
        (base.Types.bgp_redistribute @ delta.Types.bgp_redistribute);
    bgp_vrfs =
      List.filter
        (fun (v : Types.vrf_def) ->
          not
            (List.exists
               (fun (d : Types.vrf_def) ->
                 String.equal d.Types.vd_name v.Types.vd_name)
               delta.Types.bgp_vrfs))
        base.Types.bgp_vrfs
      @ delta.Types.bgp_vrfs;
  }

let merge_isis (base : Types.isis_config) (delta : Types.isis_config) =
  if not delta.Types.isis_enabled then base
  else
    {
      Types.isis_enabled = true;
      isis_net =
        (if delta.Types.isis_net <> "" then delta.Types.isis_net
         else base.Types.isis_net);
      isis_te = base.Types.isis_te || delta.Types.isis_te;
      isis_default_cost =
        (match delta.Types.isis_default_cost with
        | Some _ as c -> c
        | None -> base.Types.isis_default_cost);
      isis_ifaces =
        List.filter
          (fun (i : Types.isis_iface) ->
            not
              (List.exists
                 (fun (d : Types.isis_iface) ->
                   String.equal d.Types.ii_name i.Types.ii_name)
                 delta.Types.isis_ifaces))
          base.Types.isis_ifaces
        @ delta.Types.isis_ifaces;
    }

(** Merge a parsed command delta into a base device config. *)
let merge (base : Types.t) (delta : Types.t) : Types.t =
  {
    base with
    Types.dc_ifaces =
      List.filter
        (fun (i : Types.iface_config) ->
          not
            (List.exists
               (fun (d : Types.iface_config) ->
                 String.equal d.Types.if_name i.Types.if_name)
               delta.Types.dc_ifaces))
        base.Types.dc_ifaces
      @ delta.Types.dc_ifaces;
    dc_prefix_lists =
      merge_prefix_lists base.Types.dc_prefix_lists delta.Types.dc_prefix_lists;
    dc_community_lists =
      merge_community_lists base.Types.dc_community_lists
        delta.Types.dc_community_lists;
    dc_aspath_filters =
      merge_aspath_filters base.Types.dc_aspath_filters
        delta.Types.dc_aspath_filters;
    dc_policies = merge_policies base.Types.dc_policies delta.Types.dc_policies;
    dc_bgp = merge_bgp base.Types.dc_bgp delta.Types.dc_bgp;
    dc_isis = merge_isis base.Types.dc_isis delta.Types.dc_isis;
    dc_statics =
      List.sort_uniq Stdlib.compare
        (base.Types.dc_statics @ delta.Types.dc_statics);
    dc_sr_policies =
      List.filter
        (fun (s : Types.sr_policy) ->
          not
            (List.exists
               (fun (d : Types.sr_policy) ->
                 String.equal d.Types.sp_name s.Types.sp_name)
               delta.Types.dc_sr_policies))
        base.Types.dc_sr_policies
      @ delta.Types.dc_sr_policies;
    dc_acls = merge_acls base.Types.dc_acls delta.Types.dc_acls;
    dc_pbr = List.sort_uniq Stdlib.compare (base.Types.dc_pbr @ delta.Types.dc_pbr);
    dc_isolated = base.Types.dc_isolated || delta.Types.dc_isolated;
  }

(* ------------------------------------------------------------------ *)
(* Deletion commands                                                   *)
(* ------------------------------------------------------------------ *)

type del_error = { del_line : string; del_msg : string }

let update_policy_nodes cfg name f =
  match Types.find_policy cfg name with
  | None -> None
  | Some rp ->
      let nodes = f rp.Types.rp_nodes in
      let policies =
        if nodes = [] then Types.Smap.remove name cfg.Types.dc_policies
        else
          Types.Smap.add name
            { rp with Types.rp_nodes = nodes }
            cfg.Types.dc_policies
      in
      Some { cfg with Types.dc_policies = policies }

(** Apply one deletion command (tokens after the [no]/[undo] keyword). *)
let apply_delete (cfg : Types.t) (tokens : string list) (raw : string) :
    (Types.t, del_error) result =
  let fail msg = Error { del_line = raw; del_msg = msg } in
  match tokens with
  (* delete a route-map / route-policy node *)
  | [ "route-map"; name; seq ]
  | [ "route-map"; name; ("permit" | "deny"); seq ]
  | [ "route-policy"; name; "node"; seq ]
  | [ "route-policy"; name; ("permit" | "deny"); "node"; seq ] -> (
      match L.int_opt seq with
      | None -> fail "bad sequence number"
      | Some seq -> (
          match
            update_policy_nodes cfg name (fun nodes ->
                List.filter (fun n -> n.Types.pn_seq <> seq) nodes)
          with
          | Some cfg' ->
              if
                Types.Smap.mem name cfg.Types.dc_policies
                && Types.find_policy cfg name
                   = Types.find_policy cfg' name
              then fail (Printf.sprintf "node %d not found in %s" seq name)
              else Ok cfg'
          | None -> fail (Printf.sprintf "policy %s not found" name)))
  (* delete an entire route-map / route-policy *)
  | [ "route-map"; name ] | [ "route-policy"; name ] ->
      if Types.Smap.mem name cfg.Types.dc_policies then
        Ok
          { cfg with
            Types.dc_policies = Types.Smap.remove name cfg.Types.dc_policies }
      else fail (Printf.sprintf "policy %s not found" name)
  (* delete a prefix-list entry *)
  | [ "ip"; "prefix-list"; name; "seq"; seq ]
  | [ "ipv6"; "prefix-list"; name; "seq"; seq ]
  | [ "ip"; "ip-prefix"; name; "index"; seq ]
  | [ "ip"; "ipv6-prefix"; name; "index"; seq ] -> (
      match (L.int_opt seq, Types.find_prefix_list cfg name) with
      | Some seq, Some pl ->
          let entries =
            List.filter (fun e -> e.Types.pe_seq <> seq) pl.Types.pl_entries
          in
          let pls =
            if entries = [] then Types.Smap.remove name cfg.Types.dc_prefix_lists
            else
              Types.Smap.add name
                { pl with Types.pl_entries = entries }
                cfg.Types.dc_prefix_lists
          in
          Ok { cfg with Types.dc_prefix_lists = pls }
      | None, _ -> fail "bad sequence number"
      | _, None -> fail (Printf.sprintf "prefix-list %s not found" name))
  (* delete a whole prefix list *)
  | [ "ip"; "prefix-list"; name ] | [ "ip"; "ip-prefix"; name ] ->
      if Types.Smap.mem name cfg.Types.dc_prefix_lists then
        Ok
          { cfg with
            Types.dc_prefix_lists =
              Types.Smap.remove name cfg.Types.dc_prefix_lists }
      else fail (Printf.sprintf "prefix-list %s not found" name)
  (* delete a community list *)
  | [ "ip"; "community-list"; name ] | [ "ip"; "community-filter"; name ] ->
      if Types.Smap.mem name cfg.Types.dc_community_lists then
        Ok
          { cfg with
            Types.dc_community_lists =
              Types.Smap.remove name cfg.Types.dc_community_lists }
      else fail (Printf.sprintf "community-list %s not found" name)
  (* delete a BGP neighbor *)
  | [ "router"; "bgp"; "neighbor"; ip ] | [ "bgp"; "peer"; ip ] -> (
      match Ip.of_string ip with
      | None -> fail "bad neighbor address"
      | Some addr ->
          let bgp = cfg.Types.dc_bgp in
          let kept =
            List.filter
              (fun (n : Types.neighbor) -> not (Ip.equal n.Types.nb_addr addr))
              bgp.Types.bgp_neighbors
          in
          if List.length kept = List.length bgp.Types.bgp_neighbors then
            fail (Printf.sprintf "neighbor %s not found" ip)
          else
            Ok
              { cfg with
                Types.dc_bgp = { bgp with Types.bgp_neighbors = kept } })
  (* delete a BGP network statement *)
  | [ "router"; "bgp"; "network"; p ] | [ "bgp"; "network"; p ] -> (
      match Prefix.of_string p with
      | None -> fail "bad prefix"
      | Some p ->
          let bgp = cfg.Types.dc_bgp in
          let kept =
            List.filter
              (fun (q, _) -> not (Prefix.equal p q))
              bgp.Types.bgp_networks
          in
          if List.length kept = List.length bgp.Types.bgp_networks then
            fail (Printf.sprintf "network %s not found" (Prefix.to_string p))
          else
            Ok
              { cfg with Types.dc_bgp = { bgp with Types.bgp_networks = kept } })
  (* delete a static route *)
  | [ "ip"; "route"; p ] -> (
      match Prefix.of_string p with
      | None -> fail "bad prefix"
      | Some p ->
          let kept =
            List.filter
              (fun (s : Types.static_route) ->
                not (Prefix.equal s.Types.st_prefix p))
              cfg.Types.dc_statics
          in
          if List.length kept = List.length cfg.Types.dc_statics then
            fail (Printf.sprintf "static %s not found" (Prefix.to_string p))
          else Ok { cfg with Types.dc_statics = kept })
  | [ "ip"; "route-static"; addr; len ] -> (
      match
        (Option.bind
           (match (Ip.of_string addr, L.int_opt len) with
           | Some addr, Some len -> Some (addr, len)
           | _ -> None)
           (fun (addr, len) -> Prefix.make_opt addr len))
      with
      | Some p ->
          let kept =
            List.filter
              (fun (s : Types.static_route) ->
                not (Prefix.equal s.Types.st_prefix p))
              cfg.Types.dc_statics
          in
          if List.length kept = List.length cfg.Types.dc_statics then
            fail (Printf.sprintf "static %s not found" (Prefix.to_string p))
          else Ok { cfg with Types.dc_statics = kept }
      | _ -> fail "bad static route")
  (* delete an SR policy *)
  | [ "segment-routing"; "policy"; name ] | [ "sr-policy"; name ] ->
      let kept =
        List.filter
          (fun (s : Types.sr_policy) -> not (String.equal s.Types.sp_name name))
          cfg.Types.dc_sr_policies
      in
      if List.length kept = List.length cfg.Types.dc_sr_policies then
        fail (Printf.sprintf "sr policy %s not found" name)
      else Ok { cfg with Types.dc_sr_policies = kept }
  | _ -> fail "unknown deletion command"

(* ------------------------------------------------------------------ *)
(* Command-block application                                           *)
(* ------------------------------------------------------------------ *)

(** One command line the application pass could not act on, with enough
    structure (device comes from the enclosing report) for the analysis
    layer to render it as a located diagnostic instead of a bare count. *)
type issue_kind = Parse | Delete

type line_issue = {
  ci_lnum : int; (* 1-based line number within the command block *)
  ci_text : string; (* the raw command line, trimmed *)
  ci_kind : issue_kind;
  ci_msg : string;
}

type apply_report = {
  ar_device : string;
  ar_issues : line_issue list; (* in block order *)
}

let issue_to_string (i : line_issue) =
  Printf.sprintf "line %d: %s%s" i.ci_lnum i.ci_msg
    (if i.ci_text = "" then "" else Printf.sprintf " (%s)" i.ci_text)

let parse_issues r =
  List.filter (fun i -> i.ci_kind = Parse) r.ar_issues

let delete_issues r =
  List.filter (fun i -> i.ci_kind = Delete) r.ar_issues

(** A report for a command block that never reached a device config
    (e.g. the plan names an unknown device). *)
let report_failure ~device msg =
  {
    ar_device = device;
    ar_issues = [ { ci_lnum = 0; ci_text = ""; ci_kind = Parse; ci_msg = msg } ];
  }

(** Apply a command block (in the device's own dialect) to its config.
    Deletion lines start with [no] (vendor A) or [undo] (vendor B); the
    other lines are parsed as a config fragment and merged.  Lines the
    pass cannot act on (parse failures, deletions of absent objects) come
    back as structured {!line_issue}s carrying the original block line
    number and raw text. *)
let apply_commands (cfg : Types.t) (block : string) : Types.t * apply_report =
  let is_delete l =
    let t = String.trim l in
    String.length t > 3
    && (String.sub t 0 3 = "no " || (String.length t > 5 && String.sub t 0 5 = "undo "))
  in
  let numbered =
    String.split_on_char '\n' block |> List.mapi (fun i l -> (i + 1, l))
  in
  let deletes = List.filter (fun (_, l) -> is_delete l) numbered in
  let adds = List.filter (fun (_, l) -> not (is_delete l)) numbered in
  (* additions: parse the non-delete lines as one fragment; parser line
     numbers index into that fragment, so map them back to the block *)
  let adds_arr = Array.of_list adds in
  let delta, parse_errors =
    Printer.parse ~vendor:cfg.Types.dc_vendor ~device:cfg.Types.dc_device
      (String.concat "\n" (List.map snd adds))
  in
  let parse_issue (e : L.error) =
    let lnum, text =
      let idx = e.L.err_line - 1 in
      if idx >= 0 && idx < Array.length adds_arr then
        (fst adds_arr.(idx), String.trim (snd adds_arr.(idx)))
      else (e.L.err_line, "")
    in
    { ci_lnum = lnum; ci_text = text; ci_kind = Parse; ci_msg = e.L.err_msg }
  in
  (* a bare device-name-only delta (no content) keeps the base unchanged *)
  let cfg = merge cfg delta in
  (* deletions, in order *)
  let cfg, del_issues =
    List.fold_left
      (fun (cfg, errs) (lnum, raw) ->
        let tokens = L.tokenize_line (String.trim raw) in
        let tokens =
          match tokens with
          | "no" :: rest -> rest
          | "undo" :: rest -> rest
          | rest -> rest
        in
        match apply_delete cfg tokens raw with
        | Ok cfg' -> (cfg', errs)
        | Error e ->
            ( cfg,
              {
                ci_lnum = lnum;
                ci_text = String.trim e.del_line;
                ci_kind = Delete;
                ci_msg = e.del_msg;
              }
              :: errs ))
      (cfg, []) deletes
  in
  let issues =
    List.sort
      (fun a b -> Int.compare a.ci_lnum b.ci_lnum)
      (List.map parse_issue parse_errors @ List.rev del_issues)
  in
  (cfg, { ar_device = cfg.Types.dc_device; ar_issues = issues })
