(** Route-policy evaluation with vendor-specific-behaviour hooks.

    This is the single place where an update is accepted/denied/rewritten
    by configuration; the BGP simulator calls it on ingress, egress and
    redistribution.  Every decision that Table 5 lists as vendor-specific
    is delegated to the device's {!Vsb.t} profile. *)

open Hoyan_net

type verdict = {
  pv_action : Types.action;
  pv_route : Route.t; (* rewritten route (meaningful when permitted) *)
  pv_aspath_overwritten : bool;
      (* a policy overwrote the AS path; interacts with the
         "adding own ASN" VSB at eBGP export time *)
  pv_matched_node : int option; (* seq of the node that decided *)
}

let denied r =
  { pv_action = Types.Deny; pv_route = r; pv_aspath_overwritten = false;
    pv_matched_node = None }

let permitted ?(overwrote = false) ?node r =
  { pv_action = Types.Permit; pv_route = r; pv_aspath_overwritten = overwrote;
    pv_matched_node = node }

(** Default regex matching for AS-path filters: full-string match with the
    production engine.  The diagnosis experiments inject {!Regex.Legacy}
    here to reproduce the flawed-regex issue class. *)
let default_regex pattern input = Hoyan_regex.Regex.matches_str pattern input

let eval_match ?(regex = default_regex) (cfg : Types.t) (vsb : Vsb.t)
    (clause : Types.match_clause) (r : Route.t) : bool =
  match clause with
  | Types.Match_prefix_list name -> (
      match Types.find_prefix_list cfg name with
      | None -> vsb.Vsb.undefined_filter_matches
      | Some pl ->
          if pl.Types.pl_family <> Prefix.family r.Route.prefix then
            (* Figure 10(b): an [ip-prefix] list applied to an IPv6 route —
               this vendor checks only IPv4 prefixes and permits the other
               family wholesale. *)
            vsb.Vsb.ip_prefix_permits_other_family
          else (
            match Types.prefix_list_eval pl r.Route.prefix with
            | Some Types.Permit -> true
            | Some Types.Deny | None -> false))
  | Types.Match_community_list name -> (
      match Types.find_community_list cfg name with
      | None -> vsb.Vsb.undefined_filter_matches
      | Some cl -> (
          match Types.community_list_eval cl r.Route.communities with
          | Some Types.Permit -> true
          | Some Types.Deny | None -> false))
  | Types.Match_aspath_filter name -> (
      match Types.find_aspath_filter cfg name with
      | None -> vsb.Vsb.undefined_filter_matches
      | Some af ->
          let path_str = As_path.to_string r.Route.as_path in
          let rec eval = function
            | [] -> false
            | (e : Types.aspath_entry) :: rest ->
                if regex e.Types.ae_regex path_str then
                  e.Types.ae_action = Types.Permit
                else eval rest
          in
          eval af.Types.af_entries)
  | Types.Match_nexthop p -> (
      match r.Route.nexthop with
      | Some nh -> Prefix.mem nh p
      | None -> false)
  | Types.Match_tag t -> r.Route.tag = t
  | Types.Match_protocol p -> r.Route.proto = p
  | Types.Match_family f -> Prefix.family r.Route.prefix = f

let apply_set (r : Route.t) (clause : Types.set_clause) :
    Route.t * bool (* overwrote AS path *) =
  match clause with
  | Types.Set_local_pref v -> (Route.with_local_pref r v, false)
  | Types.Set_med v -> (Route.with_med r v, false)
  | Types.Set_weight v -> (Route.with_weight r v, false)
  | Types.Set_preference v -> ({ r with Route.preference = v }, false)
  | Types.Set_tag v -> ({ r with Route.tag = v }, false)
  | Types.Set_nexthop ip -> ({ r with Route.nexthop = Some ip }, false)
  | Types.Set_communities (op, cs) ->
      let communities =
        match op with
        | Types.Comm_replace -> Community.Set.of_list cs
        | Types.Comm_add ->
            Community.Set.union r.Route.communities (Community.Set.of_list cs)
        | Types.Comm_remove ->
            Community.Set.diff r.Route.communities (Community.Set.of_list cs)
      in
      ({ r with Route.communities }, false)
  | Types.Set_aspath_prepend (asn, count) ->
      ({ r with Route.as_path = As_path.prepend_n asn count r.Route.as_path },
       false)
  | Types.Set_aspath_overwrite asns ->
      ({ r with Route.as_path = As_path.of_asns asns }, true)

(** Evaluate policy [name] of [cfg] on route [r].

    [name = None] means no policy is applied at that attachment point; on
    an eBGP session ([ebgp = true], the default) the "missing route
    policy" VSB decides — some vendors require an explicit policy on eBGP
    sessions and drop everything otherwise — while iBGP and internal
    attachment points (redistribution, VRF leaking) accept.  An undefined
    name triggers the "undefined route policy" VSB.  A route matching no
    node triggers the "default route policy" VSB, and a matched node
    without an explicit action triggers "no explicit permit/deny". *)
let eval ?(regex = default_regex) ?(ebgp = true) (cfg : Types.t) (vsb : Vsb.t)
    (name : string option) (r : Route.t) : verdict =
  match name with
  | None ->
      if (not ebgp) || vsb.Vsb.missing_policy_accepts then permitted r
      else denied r
  | Some name -> (
      match Types.find_policy cfg name with
      | None ->
          if vsb.Vsb.undefined_policy_accepts then permitted r else denied r
      | Some policy ->
          let rec eval_nodes r overwrote = function
            | [] ->
                if vsb.Vsb.default_policy_action_permit then
                  permitted ~overwrote r
                else denied r
            | (node : Types.policy_node) :: rest ->
                let all_match =
                  List.for_all
                    (fun c -> eval_match ~regex cfg vsb c r)
                    node.Types.pn_matches
                in
                if not all_match then eval_nodes r overwrote rest
                else
                  let action =
                    match node.Types.pn_action with
                    | Some a -> a
                    | None ->
                        if vsb.Vsb.no_explicit_action_permits then Types.Permit
                        else Types.Deny
                  in
                  if action = Types.Deny then denied r
                  else
                    let r', overwrote' =
                      List.fold_left
                        (fun (acc, ow) s ->
                          let acc', ow' = apply_set acc s in
                          (acc', ow || ow'))
                        (r, overwrote) node.Types.pn_sets
                    in
                    if node.Types.pn_goto_next then eval_nodes r' overwrote' rest
                    else permitted ~overwrote:overwrote' ~node:node.Types.pn_seq r'
          in
          eval_nodes r false policy.Types.rp_nodes)
