(** Configuration parser for vendor A (an IOS-like dialect).

    The dialect is line-oriented with indented stanza bodies:

    {v
    hostname CORE-1
    interface Eth0
     ip address 10.0.0.1/31
     isis cost 10
    ip prefix-list PL seq 5 permit 10.0.0.0/24 le 32
    route-map RM permit 10
     match ip prefix-list PL
     set local-preference 300
    router bgp 65001
     neighbor 10.0.0.2 remote-as 65002
     neighbor 10.0.0.2 route-map RM in
    v}

    [parse] returns the model plus a list of parse errors (unknown or
    malformed lines are skipped and reported, mirroring the paper's
    "parsing may be flawed / incomplete" accuracy-issue class).  The
    [flaws] argument deliberately re-introduces historical parser bugs for
    the diagnosis experiments (Table 4, "input pre-processing"). *)

open Hoyan_net
module L = Lexutil

type flaw =
  | Ignore_additive
      (** "set community ... additive" mis-parsed as a plain replace. *)
  | Drop_ipv6_prefix_lists
      (** ipv6 prefix-lists skipped (historical incomplete implementation);
          the drop is reported as a parse error, never silent. *)

let ( let* ) = Option.bind

let parse_action = function
  | "permit" -> Some Types.Permit
  | "deny" -> Some Types.Deny
  | _ -> None

let parse_proto = function
  | "bgp" -> Some Route.Bgp
  | "isis" -> Some Route.Isis
  | "static" -> Some Route.Static
  | "direct" | "connected" -> Some Route.Direct
  | _ -> None

(* Parse trailing [ge N] [le N] options of a prefix-list entry. *)
let rec parse_ge_le ge le = function
  | [] -> Some (ge, le)
  | "ge" :: n :: rest ->
      let* n = L.int_opt n in
      parse_ge_le (Some n) le rest
  | "le" :: n :: rest ->
      let* n = L.int_opt n in
      parse_ge_le ge (Some n) rest
  | _ -> None

type state = {
  mutable cfg : Types.t;
  mutable errors : L.error list;
  flaws : flaw list;
}

let err st lnum fmt =
  Printf.ksprintf
    (fun msg -> st.errors <- { L.err_line = lnum; err_msg = msg } :: st.errors)
    fmt

let has_flaw st f = List.mem f st.flaws

(* --- accumulation helpers -------------------------------------------- *)

let sort_by f l = List.sort (fun a b -> Int.compare (f a) (f b)) l

let add_prefix_list st name family entry =
  let cfg = st.cfg in
  let pl =
    match Types.find_prefix_list cfg name with
    | Some pl -> pl
    | None -> { Types.pl_name = name; pl_family = family; pl_entries = [] }
  in
  let pl =
    { pl with
      Types.pl_entries =
        sort_by (fun e -> e.Types.pe_seq) (entry :: pl.Types.pl_entries) }
  in
  st.cfg <-
    { cfg with
      Types.dc_prefix_lists = Types.Smap.add name pl cfg.Types.dc_prefix_lists }

let add_community_list st name entry =
  let cfg = st.cfg in
  let cl =
    match Types.find_community_list cfg name with
    | Some cl -> cl
    | None -> { Types.cl_name = name; cl_entries = [] }
  in
  let cl =
    { cl with
      Types.cl_entries =
        sort_by (fun e -> e.Types.ce_seq) (entry :: cl.Types.cl_entries) }
  in
  st.cfg <-
    { cfg with
      Types.dc_community_lists =
        Types.Smap.add name cl cfg.Types.dc_community_lists }

let add_aspath_filter st name entry =
  let cfg = st.cfg in
  let af =
    match Types.find_aspath_filter cfg name with
    | Some af -> af
    | None -> { Types.af_name = name; af_entries = [] }
  in
  let af =
    { af with
      Types.af_entries =
        sort_by (fun e -> e.Types.ae_seq) (entry :: af.Types.af_entries) }
  in
  st.cfg <-
    { cfg with
      Types.dc_aspath_filters =
        Types.Smap.add name af cfg.Types.dc_aspath_filters }

let add_acl_entry st name entry =
  let cfg = st.cfg in
  let acl =
    match Types.find_acl cfg name with
    | Some a -> a
    | None -> { Types.acl_name = name; acl_entries = [] }
  in
  let acl =
    { acl with
      Types.acl_entries =
        sort_by (fun e -> e.Types.ace_seq) (entry :: acl.Types.acl_entries) }
  in
  st.cfg <-
    { cfg with Types.dc_acls = Types.Smap.add name acl cfg.Types.dc_acls }

let add_policy_node st name node =
  let cfg = st.cfg in
  let rp =
    match Types.find_policy cfg name with
    | Some rp -> rp
    | None -> { Types.rp_name = name; rp_nodes = [] }
  in
  let nodes =
    node :: List.filter (fun n -> n.Types.pn_seq <> node.Types.pn_seq) rp.Types.rp_nodes
  in
  let rp = { rp with Types.rp_nodes = sort_by (fun n -> n.Types.pn_seq) nodes } in
  st.cfg <-
    { cfg with Types.dc_policies = Types.Smap.add name rp cfg.Types.dc_policies }

(* --- clause parsers ---------------------------------------------------- *)

let parse_match_clause tokens : Types.match_clause option =
  match tokens with
  | [ "ip"; "prefix-list"; name ] | [ "ipv6"; "prefix-list"; name ] ->
      Some (Types.Match_prefix_list name)
  | [ "community"; name ] -> Some (Types.Match_community_list name)
  | [ "as-path"; name ] -> Some (Types.Match_aspath_filter name)
  | [ "ip"; "next-hop"; p ] | [ "ipv6"; "next-hop"; p ] ->
      let* p = Prefix.of_string p in
      Some (Types.Match_nexthop p)
  | [ "tag"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Match_tag n)
  | [ "protocol"; p ] ->
      let* p = parse_proto p in
      Some (Types.Match_protocol p)
  | [ "family"; "ipv4" ] -> Some (Types.Match_family Ip.Ipv4)
  | [ "family"; "ipv6" ] -> Some (Types.Match_family Ip.Ipv6)
  | _ -> None

let parse_communities toks =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | c :: rest ->
        let* c = Community.of_string c in
        go (c :: acc) rest
  in
  go [] toks

let parse_set_clause st tokens : Types.set_clause option =
  match tokens with
  | [ "local-preference"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_local_pref n)
  | [ "metric"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_med n)
  | [ "weight"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_weight n)
  | [ "preference"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_preference n)
  | [ "tag"; n ] ->
      let* n = L.int_opt n in
      Some (Types.Set_tag n)
  | [ "ip"; "next-hop"; ip ] | [ "ipv6"; "next-hop"; ip ] ->
      let* ip = Ip.of_string ip in
      Some (Types.Set_nexthop ip)
  | "as-path" :: "prepend" :: asn :: rest ->
      let* asn = L.int_opt asn in
      let count =
        match rest with
        | [ c ] -> Option.value (L.int_opt c) ~default:1
        | _ -> 1
      in
      Some (Types.Set_aspath_prepend (asn, count))
  | "as-path" :: "overwrite" :: asns ->
      let* asns =
        List.fold_left
          (fun acc a ->
            let* acc = acc in
            let* a = L.int_opt a in
            Some (a :: acc))
          (Some []) asns
      in
      Some (Types.Set_aspath_overwrite (List.rev asns))
  | "community" :: "delete" :: comms ->
      let* cs = parse_communities comms in
      Some (Types.Set_communities (Types.Comm_remove, cs))
  | "community" :: rest ->
      let additive, comms =
        match List.rev rest with
        | "additive" :: r -> (true, List.rev r)
        | _ -> (false, rest)
      in
      let* cs = parse_communities comms in
      let additive = if has_flaw st Ignore_additive then false else additive in
      Some
        (Types.Set_communities
           ((if additive then Types.Comm_add else Types.Comm_replace), cs))
  | _ -> None

(* --- stanza parsers ---------------------------------------------------- *)

let parse_interface st (header : L.line) (body : L.line list) =
  let name = match header.L.tokens with _ :: n :: _ -> n | _ -> "" in
  let iface =
    ref
      { Types.if_name = name; if_addr = None; if_plen = 32;
        if_bandwidth = 10e9; if_acl_in = None }
  in
  let isis_cost = ref None and isis_te = ref false in
  List.iter
    (fun (l : L.line) ->
      match l.L.tokens with
      | [ "ip"; "address"; p ] | [ "ipv6"; "address"; p ] -> (
          match String.index_opt p '/' with
          | Some i -> (
              let addr = Ip.of_string (String.sub p 0 i) in
              let len =
                L.int_opt (String.sub p (i + 1) (String.length p - i - 1))
              in
              match (addr, len) with
              | Some a, Some l when l >= 0 && l <= Ip.family_bits (Ip.family a)
                ->
                  iface := { !iface with Types.if_addr = Some a; if_plen = l }
              | _ -> err st l.L.lnum "bad interface address %s" p)
          | None -> err st l.L.lnum "bad interface address %s" p)
      | [ "bandwidth"; b ] -> (
          match L.float_opt b with
          | Some b -> iface := { !iface with Types.if_bandwidth = b }
          | None -> err st l.L.lnum "bad bandwidth")
      | [ "ip"; "access-group"; acl; "in" ] ->
          iface := { !iface with Types.if_acl_in = Some acl }
      | [ "isis"; "cost"; c ] -> isis_cost := L.int_opt c
      | [ "isis"; "traffic-eng" ] -> isis_te := true
      | _ -> err st l.L.lnum "unknown interface line: %s" l.L.raw)
    body;
  st.cfg <- { st.cfg with Types.dc_ifaces = !iface :: st.cfg.Types.dc_ifaces };
  match !isis_cost with
  | Some c ->
      let ii = { Types.ii_name = name; ii_cost = c; ii_te = !isis_te } in
      st.cfg <-
        { st.cfg with
          Types.dc_isis =
            { st.cfg.Types.dc_isis with
              Types.isis_enabled = true;
              isis_ifaces = ii :: st.cfg.Types.dc_isis.Types.isis_ifaces } }
  | None -> ()

let parse_route_map st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | "route-map" :: name :: rest -> (
      let action, seq =
        match rest with
        | [ a; s ] -> (
            match parse_action a with
            | Some act -> (Some act, L.int_opt s)
            | None -> (None, None))
        | [ s ] ->
            (* node without explicit permit/deny: VSB territory *)
            (None, L.int_opt s)
        | _ -> (None, None)
      in
      match seq with
      | None -> err st header.L.lnum "bad route-map header: %s" header.L.raw
      | Some seq ->
          let matches = ref [] and sets = ref [] and goto_next = ref false in
          List.iter
            (fun (l : L.line) ->
              match l.L.tokens with
              | "match" :: rest -> (
                  match parse_match_clause rest with
                  | Some m -> matches := m :: !matches
                  | None -> err st l.L.lnum "unknown match: %s" l.L.raw)
              | "set" :: rest -> (
                  match parse_set_clause st rest with
                  | Some s -> sets := s :: !sets
                  | None -> err st l.L.lnum "unknown set: %s" l.L.raw)
              | [ "continue" ] -> goto_next := true
              | _ -> err st l.L.lnum "unknown route-map line: %s" l.L.raw)
            body;
          add_policy_node st name
            {
              Types.pn_seq = seq;
              pn_action = action;
              pn_matches = List.rev !matches;
              pn_sets = List.rev !sets;
              pn_goto_next = !goto_next;
            })
  | _ -> err st header.L.lnum "bad route-map header"

let parse_router_bgp st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | [ "router"; "bgp"; asn ] -> (
      match L.int_opt asn with
      | None -> err st header.L.lnum "bad BGP ASN"
      | Some asn ->
          let bgp = ref { st.cfg.Types.dc_bgp with Types.bgp_asn = asn } in
          let find_neighbor ip =
            List.find_opt
              (fun n -> Ip.equal n.Types.nb_addr ip)
              !bgp.Types.bgp_neighbors
          in
          let update_neighbor ip f =
            match Ip.of_string ip with
            | None -> None
            | Some addr ->
                let nb =
                  match find_neighbor addr with
                  | Some nb -> nb
                  | None ->
                      {
                        Types.nb_addr = addr;
                        nb_remote_asn = 0;
                        nb_import = None;
                        nb_export = None;
                        nb_rr_client = false;
                        nb_next_hop_self = false;
                        nb_add_paths = 0;
                        nb_vrf = Route.default_vrf;
                      }
                in
                let nb = f nb in
                bgp :=
                  { !bgp with
                    Types.bgp_neighbors =
                      nb
                      :: List.filter
                           (fun n -> not (Ip.equal n.Types.nb_addr addr))
                           !bgp.Types.bgp_neighbors };
                Some ()
          in
          List.iter
            (fun (l : L.line) ->
              let bad () = err st l.L.lnum "unknown bgp line: %s" l.L.raw in
              match l.L.tokens with
              | [ "bgp"; "router-id"; ip ] -> (
                  match Ip.of_string ip with
                  | Some ip -> bgp := { !bgp with Types.bgp_router_id = Some ip }
                  | None -> bad ())
              | [ "network"; p ] | [ "network"; p; "vrf"; _ ] -> (
                  let vrf =
                    match l.L.tokens with
                    | [ _; _; "vrf"; v ] -> v
                    | _ -> Route.default_vrf
                  in
                  match Prefix.of_string p with
                  | Some p ->
                      bgp :=
                        { !bgp with
                          Types.bgp_networks = (p, vrf) :: !bgp.Types.bgp_networks }
                  | None -> bad ())
              | "aggregate-address" :: p :: opts -> (
                  match Prefix.of_string p with
                  | Some p ->
                      let rec scan as_set summary vrf = function
                        | [] -> Some (as_set, summary, vrf)
                        | "as-set" :: r -> scan true summary vrf r
                        | "summary-only" :: r -> scan as_set true vrf r
                        | "vrf" :: v :: r -> scan as_set summary v r
                        | _ -> None
                      in
                      (match scan false false Route.default_vrf opts with
                      | Some (as_set, summary_only, vrf) ->
                          bgp :=
                            { !bgp with
                              Types.bgp_aggregates =
                                {
                                  Types.ag_prefix = p;
                                  ag_as_set = as_set;
                                  ag_summary_only = summary_only;
                                  ag_vrf = vrf;
                                }
                                :: !bgp.Types.bgp_aggregates }
                      | None -> bad ())
                  | None -> bad ())
              | "redistribute" :: proto :: rest -> (
                  match parse_proto proto with
                  | Some p ->
                      let policy =
                        match rest with
                        | [ "route-map"; rm ] -> Some rm
                        | [] -> None
                        | _ -> None
                      in
                      bgp :=
                        { !bgp with
                          Types.bgp_redistribute =
                            (p, policy) :: !bgp.Types.bgp_redistribute }
                  | None -> bad ())
              | [ "neighbor"; ip; "remote-as"; asn ] -> (
                  match L.int_opt asn with
                  | Some asn -> (
                      match
                        update_neighbor ip (fun nb ->
                            { nb with Types.nb_remote_asn = asn })
                      with
                      | Some () -> ()
                      | None -> bad ())
                  | None -> bad ())
              | [ "neighbor"; ip; "route-map"; rm; (("in" | "out") as dir) ]
                -> (
                  match
                    update_neighbor ip (fun nb ->
                        if String.equal dir "in" then
                          { nb with Types.nb_import = Some rm }
                        else { nb with Types.nb_export = Some rm })
                  with
                  | Some () -> ()
                  | None -> bad ())
              | [ "neighbor"; ip; "next-hop-self" ] -> (
                  match
                    update_neighbor ip (fun nb ->
                        { nb with Types.nb_next_hop_self = true })
                  with
                  | Some () -> ()
                  | None -> bad ())
              | [ "neighbor"; ip; "route-reflector-client" ] -> (
                  match
                    update_neighbor ip (fun nb ->
                        { nb with Types.nb_rr_client = true })
                  with
                  | Some () -> ()
                  | None -> bad ())
              | [ "neighbor"; ip; "additional-paths"; n ] -> (
                  match L.int_opt n with
                  | Some n -> (
                      match
                        update_neighbor ip (fun nb ->
                            { nb with Types.nb_add_paths = n })
                      with
                      | Some () -> ()
                      | None -> bad ())
                  | None -> bad ())
              | [ "neighbor"; ip; "vrf"; v ] -> (
                  match
                    update_neighbor ip (fun nb -> { nb with Types.nb_vrf = v })
                  with
                  | Some () -> ()
                  | None -> bad ())
              | _ -> bad ())
            body;
          st.cfg <- { st.cfg with Types.dc_bgp = !bgp })
  | _ -> err st header.L.lnum "bad router bgp header"

let parse_router_isis st (_header : L.line) (body : L.line list) =
  let isis = ref { st.cfg.Types.dc_isis with Types.isis_enabled = true } in
  List.iter
    (fun (l : L.line) ->
      match l.L.tokens with
      | [ "net"; n ] -> isis := { !isis with Types.isis_net = n }
      | [ "default-cost"; c ] -> (
          match L.int_opt c with
          | Some c -> isis := { !isis with Types.isis_default_cost = Some c }
          | None -> err st l.L.lnum "bad default-cost")
      | [ "traffic-eng" ] | [ "traffic-eng"; _ ] ->
          isis := { !isis with Types.isis_te = true }
      | [ "metric-style"; _ ] -> ()
      | _ -> err st l.L.lnum "unknown isis line: %s" l.L.raw)
    body;
  st.cfg <- { st.cfg with Types.dc_isis = !isis }

let parse_vrf_definition st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | [ "vrf"; "definition"; name ] ->
      let vd =
        ref
          {
            Types.vd_name = name;
            vd_rd = "";
            vd_import_rts = [];
            vd_export_rts = [];
            vd_export_policy = None;
          }
      in
      List.iter
        (fun (l : L.line) ->
          match l.L.tokens with
          | [ "rd"; rd ] -> vd := { !vd with Types.vd_rd = rd }
          | [ "route-target"; "import"; rt ] ->
              vd := { !vd with Types.vd_import_rts = rt :: !vd.Types.vd_import_rts }
          | [ "route-target"; "export"; rt ] ->
              vd := { !vd with Types.vd_export_rts = rt :: !vd.Types.vd_export_rts }
          | [ "export"; "map"; rm ] ->
              vd := { !vd with Types.vd_export_policy = Some rm }
          | _ -> err st l.L.lnum "unknown vrf line: %s" l.L.raw)
        body;
      st.cfg <-
        { st.cfg with
          Types.dc_bgp =
            { st.cfg.Types.dc_bgp with
              Types.bgp_vrfs = !vd :: st.cfg.Types.dc_bgp.Types.bgp_vrfs } }
  | _ -> err st header.L.lnum "bad vrf definition"

let parse_sr_policy st (header : L.line) (body : L.line list) =
  match header.L.tokens with
  | [ "segment-routing"; "policy"; name; "color"; color; "end-point"; ep ] -> (
      match (L.int_opt color, Ip.of_string ep) with
      | Some color, Some endpoint ->
          let pref = ref 100 and segments = ref [] in
          List.iter
            (fun (l : L.line) ->
              match l.L.tokens with
              | "candidate-path" :: "preference" :: p :: rest -> (
                  (match L.int_opt p with
                  | Some p -> pref := p
                  | None -> err st l.L.lnum "bad preference");
                  match rest with
                  | "explicit" :: "segment-list" :: segs -> segments := segs
                  | [] -> ()
                  | _ -> err st l.L.lnum "bad candidate-path")
              | _ -> err st l.L.lnum "unknown sr line: %s" l.L.raw)
            body;
          st.cfg <-
            { st.cfg with
              Types.dc_sr_policies =
                {
                  Types.sp_name = name;
                  sp_endpoint = endpoint;
                  sp_color = color;
                  sp_segments = !segments;
                  sp_preference = !pref;
                }
                :: st.cfg.Types.dc_sr_policies }
      | _ -> err st header.L.lnum "bad segment-routing header")
  | _ -> err st header.L.lnum "bad segment-routing header"

(* --- single-line top-level statements ---------------------------------- *)

let parse_top_line st (l : L.line) =
  let bad () = err st l.L.lnum "unknown line: %s" l.L.raw in
  match l.L.tokens with
  | [ "hostname"; h ] -> st.cfg <- { st.cfg with Types.dc_device = h }
  | [ "isolate" ] -> st.cfg <- { st.cfg with Types.dc_isolated = true }
  | "ip" :: "prefix-list" :: name :: "seq" :: seq :: action :: prefix :: rest
    -> (
      match
        (L.int_opt seq, parse_action action, Prefix.of_string prefix,
         parse_ge_le None None rest)
      with
      | Some seq, Some action, Some prefix, Some (ge, le) ->
          add_prefix_list st name Ip.Ipv4
            { Types.pe_seq = seq; pe_action = action; pe_prefix = prefix;
              pe_ge = ge; pe_le = le }
      | _ -> bad ())
  | "ipv6" :: "prefix-list" :: name :: "seq" :: seq :: action :: prefix :: rest
    -> (
      if has_flaw st Drop_ipv6_prefix_lists then
        (* the historical bug dropped the entry; it must at least not be
           silent about it *)
        err st l.L.lnum "ipv6 prefix-list %s not supported (dropped)" name
      else
        match
          (L.int_opt seq, parse_action action, Prefix.of_string prefix,
           parse_ge_le None None rest)
        with
        | Some seq, Some action, Some prefix, Some (ge, le) ->
            add_prefix_list st name Ip.Ipv6
              { Types.pe_seq = seq; pe_action = action; pe_prefix = prefix;
                pe_ge = ge; pe_le = le }
        | _ -> bad ())
  | "ip" :: "community-list" :: name :: "seq" :: seq :: action :: comms -> (
      match (L.int_opt seq, parse_action action, parse_communities comms) with
      | Some seq, Some action, Some members ->
          add_community_list st name
            { Types.ce_seq = seq; ce_action = action; ce_members = members }
      | _ -> bad ())
  | "ip" :: "as-path" :: "access-list" :: name :: "seq" :: seq :: action :: re
    -> (
      match (L.int_opt seq, parse_action action) with
      | Some seq, Some action ->
          add_aspath_filter st name
            { Types.ae_seq = seq; ae_action = action;
              ae_regex = String.concat " " re }
      | _ -> bad ())
  | "ip" :: "route" :: rest -> (
      let vrf, rest =
        match rest with
        | "vrf" :: v :: r -> (v, r)
        | r -> (Route.default_vrf, r)
      in
      match rest with
      | prefix :: target :: opts -> (
          match Prefix.of_string prefix with
          | Some p ->
              let nexthop = Ip.of_string target in
              let iface = if nexthop = None then Some target else None in
              let rec scan pref tag = function
                | [] -> Some (pref, tag)
                | "preference" :: n :: r -> (
                    match L.int_opt n with
                    | Some n -> scan n tag r
                    | None -> None)
                | "tag" :: n :: r -> (
                    match L.int_opt n with
                    | Some n -> scan pref n r
                    | None -> None)
                | _ -> None
              in
              (match scan 1 0 opts with
              | Some (pref, tag) ->
                  st.cfg <-
                    { st.cfg with
                      Types.dc_statics =
                        {
                          Types.st_prefix = p;
                          st_nexthop = nexthop;
                          st_iface = iface;
                          st_preference = pref;
                          st_tag = tag;
                          st_vrf = vrf;
                        }
                        :: st.cfg.Types.dc_statics }
              | None -> bad ())
          | None -> bad ())
      | _ -> bad ())
  | "access-list" :: name :: "seq" :: seq :: action :: spec -> (
      match (L.int_opt seq, parse_action action) with
      | Some seq, Some action -> (
          (* spec: (PROTO|any) (SRC|any) (DST|any) [eq PORT | range LO HI] *)
          let proto, spec =
            match spec with
            | "any" :: r -> (None, r)
            | "tcp" :: r -> (Some 6, r)
            | "udp" :: r -> (Some 17, r)
            | p :: r when L.int_opt p <> None -> (L.int_opt p, r)
            | r -> (None, r)
          in
          let pfx tok =
            if tok = "any" then Some None
            else
              match Prefix.of_string tok with
              | Some p -> Some (Some p)
              | None -> None
          in
          match spec with
          | src :: dst :: port_spec -> (
              match (pfx src, pfx dst) with
              | Some src, Some dst -> (
                  let dport =
                    match port_spec with
                    | [] -> Some None
                    | [ "eq"; p ] ->
                        Option.map (fun p -> Some (p, p)) (L.int_opt p)
                    | [ "range"; lo; hi ] -> (
                        match (L.int_opt lo, L.int_opt hi) with
                        | Some lo, Some hi -> Some (Some (lo, hi))
                        | _ -> None)
                    | _ -> None
                  in
                  match dport with
                  | Some dport ->
                      add_acl_entry st name
                        {
                          Types.ace_seq = seq;
                          ace_action = action;
                          ace_src = src;
                          ace_dst = dst;
                          ace_proto = proto;
                          ace_dport = dport;
                        }
                  | None -> bad ())
              | _ -> bad ())
          | [] -> (
              (* bare "permit any"-style catch-all *)
              add_acl_entry st name
                {
                  Types.ace_seq = seq;
                  ace_action = action;
                  ace_src = None;
                  ace_dst = None;
                  ace_proto = proto;
                  ace_dport = None;
                })
          | _ -> bad ())
      | _ -> bad ())
  | [ "pbr"; "interface"; ifname; "acl"; acl; "next-hop"; nh ] -> (
      match Ip.of_string nh with
      | Some nh ->
          st.cfg <-
            { st.cfg with
              Types.dc_pbr =
                { Types.pbr_iface = ifname; pbr_acl = acl; pbr_nexthop = nh }
                :: st.cfg.Types.dc_pbr }
      | None -> bad ())
  | _ -> bad ()

(* --- entry point -------------------------------------------------------- *)

(** Parse a full vendor-A configuration.  [device] seeds the device name
    (overridden by a [hostname] line). *)
let parse ?(flaws = []) ?(device = "unknown") (text : string) :
    Types.t * L.error list =
  let st = { cfg = Types.empty ~device ~vendor:"vendorA"; errors = []; flaws } in
  let lines = L.lines_of_string ~comment:'!' text in
  List.iter
    (fun (header, body) ->
      match header.L.tokens with
      | "interface" :: _ -> parse_interface st header body
      | "route-map" :: _ -> parse_route_map st header body
      | [ "router"; "bgp"; _ ] -> parse_router_bgp st header body
      | [ "router"; "isis" ] -> parse_router_isis st header body
      | "vrf" :: "definition" :: _ -> parse_vrf_definition st header body
      | "segment-routing" :: _ -> parse_sr_policy st header body
      | _ ->
          if body = [] then parse_top_line st header
          else err st header.L.lnum "unknown stanza: %s" header.L.raw)
    (L.stanzas lines);
  (st.cfg, List.rev st.errors)
