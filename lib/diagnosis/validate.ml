(** Automatic accuracy validation (§5.1).

    Each day Hoyan simulates the base network on the monitored inputs and
    compares: (a) every simulated route against the route monitoring
    system, falling back to live-network [show] for selected high-priority
    prefixes (the monitoring view is lossy by design); (b) the simulated
    traffic load of every link against the SNMP-monitored load, reporting
    links whose difference exceeds a bandwidth fraction. *)

open Hoyan_net
module Route_monitor = Hoyan_monitor.Route_monitor

type route_discrepancy =
  | Missing_in_monitor of Route.t (* simulated but not collected *)
  | Missing_in_sim of Route.t (* collected but not simulated *)
  | Attr_mismatch of Route.t * Route.t (* same key, different attributes *)

let discrepancy_route = function
  | Missing_in_monitor r | Missing_in_sim r | Attr_mismatch (r, _) -> r

type load_discrepancy = {
  ld_link : string * string;
  ld_simulated : float;
  ld_monitored : float;
  ld_bandwidth : float;
}

let ld_gap d = Float.abs (d.ld_simulated -. d.ld_monitored)

type report = {
  rep_route_issues : route_discrepancy list;
  rep_load_issues : load_discrepancy list;
  rep_routes_checked : int;
  rep_links_checked : int;
}

let key (r : Route.t) = (r.Route.device, r.Route.vrf, r.Route.prefix)

(* The monitored view (BGP-agent mode) strips weight/preference/igp-cost
   and only exposes best routes; project a simulated route the same way
   before comparing attributes so the comparison is apples-to-apples. *)
let project_for_monitor (r : Route.t) =
  { (Route.with_weight r 0) with
    Route.preference = 0; igp_cost = 0; peer = None }

let same_attrs (sim : Route.t) (mon : Route.t) =
  Route.equal (project_for_monitor sim) (project_for_monitor mon)

(** Compare simulated routes with the monitoring system's collection.
    [live_check] is consulted for prefixes in [priority_prefixes]: for
    those, the full live RIB (show command) replaces the lossy monitored
    view, enabling ECMP and attribute validation. *)
let validate_routes ~(simulated : Route.t list) ~(monitored : Route.t list)
    ?(live : Route.t list = []) ?(priority_prefixes : Prefix.t list = []) () :
    route_discrepancy list * int =
  let is_priority p = List.exists (Prefix.equal p) priority_prefixes in
  (* index monitored and live views *)
  let mon_tbl = Hashtbl.create 1024 in
  List.iter
    (fun (r : Route.t) ->
      let k = key r in
      Hashtbl.replace mon_tbl k
        (r :: Option.value (Hashtbl.find_opt mon_tbl k) ~default:[]))
    monitored;
  let live_tbl = Hashtbl.create 1024 in
  List.iter
    (fun (r : Route.t) ->
      let k = key r in
      Hashtbl.replace live_tbl k
        (r :: Option.value (Hashtbl.find_opt live_tbl k) ~default:[]))
    live;
  let sim_bgp =
    List.filter (fun (r : Route.t) -> r.Route.proto = Route.Bgp) simulated
  in
  let checked = ref 0 in
  let issues = ref [] in
  (* simulated -> monitored direction *)
  List.iter
    (fun (r : Route.t) ->
      incr checked;
      let k = key r in
      if is_priority r.Route.prefix && live <> [] then begin
        (* full-fidelity comparison against the live RIB *)
        let lives = Option.value (Hashtbl.find_opt live_tbl k) ~default:[] in
        if not (List.exists (fun l -> Route.equal l r) lives) then
          match lives with
          | [] -> issues := Missing_in_monitor r :: !issues
          | l :: _ -> issues := Attr_mismatch (r, l) :: !issues
      end
      else if r.Route.route_type = Route.Best then begin
        (* only best routes are visible to the BGP-agent collector *)
        let mons = Option.value (Hashtbl.find_opt mon_tbl k) ~default:[] in
        match mons with
        | [] -> issues := Missing_in_monitor r :: !issues
        | _ ->
            if not (List.exists (fun m -> same_attrs r m) mons) then
              issues := Attr_mismatch (r, List.hd mons) :: !issues
      end)
    sim_bgp;
  (* monitored -> simulated direction *)
  let sim_tbl = Hashtbl.create 1024 in
  List.iter
    (fun (r : Route.t) -> Hashtbl.replace sim_tbl (key r) ())
    sim_bgp;
  List.iter
    (fun (r : Route.t) ->
      if not (Hashtbl.mem sim_tbl (key r)) then
        issues := Missing_in_sim r :: !issues)
    monitored;
  (List.rev !issues, !checked)

(** Compare simulated and monitored link loads; report links whose gap
    exceeds [threshold] (fraction of the link bandwidth, default the
    paper's 10%). *)
let validate_loads ?(threshold = 0.10) ~(topo : Topology.t)
    ~(simulated : (string * string, float) Hashtbl.t)
    ~(monitored : (string * string, float) Hashtbl.t) () :
    load_discrepancy list * int =
  let links = Topology.edges topo in
  let issues = ref [] in
  List.iter
    (fun (e : Topology.edge) ->
      let k = (e.Topology.src, e.Topology.dst) in
      let sim = Option.value (Hashtbl.find_opt simulated k) ~default:0. in
      let mon = Option.value (Hashtbl.find_opt monitored k) ~default:0. in
      if Float.abs (sim -. mon) > threshold *. e.Topology.bandwidth then
        issues :=
          {
            ld_link = k;
            ld_simulated = sim;
            ld_monitored = mon;
            ld_bandwidth = e.Topology.bandwidth;
          }
          :: !issues)
    links;
  (List.rev !issues, List.length links)

(** The daily accuracy report. *)
let daily ~simulated_rib ~monitored_rib ?live ?priority_prefixes ~topo
    ~simulated_loads ~monitored_loads ?threshold () : report =
  let route_issues, routes_checked =
    validate_routes ~simulated:simulated_rib ~monitored:monitored_rib
      ?live ?priority_prefixes ()
  in
  let load_issues, links_checked =
    validate_loads ?threshold ~topo ~simulated:simulated_loads
      ~monitored:monitored_loads ()
  in
  {
    rep_route_issues = route_issues;
    rep_load_issues = load_issues;
    rep_routes_checked = routes_checked;
    rep_links_checked = links_checked;
  }

let is_accurate (r : report) =
  r.rep_route_issues = [] && r.rep_load_issues = []
