(** Structured event journal: pipeline-level events as JSONL
    ({v {"seq":…,"ts_us":…,"ev":…,"fields":{…}} v}, one per line).

    Per-domain shards with a global atomic sequence number: the merged
    stream has a total order that is deterministic for a deterministic
    workload. *)

type field = S of string | I of int | F of float | B of bool

type event = {
  ev_seq : int;
  ev_ts_ns : int64;
  ev_name : string;
  ev_fields : (string * field) list;
}

type t

val create : unit -> t
val event : t -> string -> (string * field) list -> unit

(** All events, merged across shards, in sequence order. *)
val events : t -> event list

val count : t -> int
val event_to_json : event -> Json.t
val to_jsonl : t -> string
val write_file : t -> string -> unit

(** Events with the given name, in sequence order. *)
val find : t -> string -> event list
