(** Tracer: nestable timed spans emitting Chrome trace-event JSON.

    Spans are explicit handles rather than an implicit thread-local
    stack, so a span can be opened before work is handed to a
    {!Hoyan_dist.Parallel} domain and closed wherever the work finishes.
    Completed spans are recorded as Chrome "complete" events (ph "X")
    with the recording domain's id as [tid] — loading the file in
    chrome://tracing or Perfetto shows one lane per domain.

    Completed events land in per-domain shards (slot = domain id mod
    shard count) so concurrent domains almost never contend on a lock;
    shards are merged on read. *)

type event = {
  te_name : string;
  te_ts_ns : int64; (* span start, ns since process start *)
  te_dur_ns : int64;
  te_tid : int; (* domain that finished the span *)
  te_args : (string * string) list;
}

type span = {
  sp_name : string;
  sp_start_ns : int64;
  sp_args : (string * string) list;
}

(** Handle returned when telemetry is disabled; finishing it is a no-op. *)
let null_span = { sp_name = ""; sp_start_ns = -1L; sp_args = [] }

let shard_count = 64

type shard = { sh_mu : Mutex.t; mutable sh_events : event list }

type t = { shards : shard array }

let create () =
  {
    shards =
      Array.init shard_count (fun _ ->
          { sh_mu = Mutex.create (); sh_events = [] });
  }

let start ?(args = []) (name : string) : span =
  { sp_name = name; sp_start_ns = Clock.now_ns (); sp_args = args }

(** Close a span: record the completed event into the current domain's
    shard.  [args] are appended to the span's start-time args (e.g. a
    result size known only at the end). *)
let finish (t : t) ?(args = []) (sp : span) : unit =
  if sp != null_span then begin
    let now = Clock.now_ns () in
    let tid = (Domain.self () :> int) in
    let ev =
      {
        te_name = sp.sp_name;
        te_ts_ns = sp.sp_start_ns;
        te_dur_ns = Int64.sub now sp.sp_start_ns;
        te_tid = tid;
        te_args = sp.sp_args @ args;
      }
    in
    let shard = t.shards.(tid mod shard_count) in
    Mutex.lock shard.sh_mu;
    shard.sh_events <- ev :: shard.sh_events;
    Mutex.unlock shard.sh_mu
  end

(** All completed events, merged across shards and sorted by start time
    (ties broken by name for a deterministic order). *)
let events (t : t) : event list =
  let all =
    Array.fold_left
      (fun acc shard ->
        Mutex.lock shard.sh_mu;
        let evs = shard.sh_events in
        Mutex.unlock shard.sh_mu;
        List.rev_append evs acc)
      [] t.shards
  in
  List.sort
    (fun a b ->
      let c = Int64.compare a.te_ts_ns b.te_ts_ns in
      if c <> 0 then c else String.compare a.te_name b.te_name)
    all

let count (t : t) = List.length (events t)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let event_to_json (ev : event) : Json.t =
  Json.Obj
    [
      ("name", Json.String ev.te_name);
      ("cat", Json.String "hoyan");
      ("ph", Json.String "X");
      ("ts", Json.Float (Clock.ns_to_us ev.te_ts_ns));
      ("dur", Json.Float (Clock.ns_to_us ev.te_dur_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int ev.te_tid);
      ( "args",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ev.te_args) );
    ]

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events t)));
      ("displayTimeUnit", Json.String "ms");
    ]

let event_of_json (j : Json.t) : (event, string) result =
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  let num key = Option.bind (Json.member key j) Json.to_float_opt in
  match (str "name", num "ts", num "dur") with
  | Some name, Some ts, Some dur ->
      let tid =
        Option.value
          (Option.bind (Json.member "tid" j) Json.to_int_opt)
          ~default:0
      in
      let args =
        match Json.member "args" j with
        | Some (Json.Obj fields) ->
            List.filter_map
              (fun (k, v) ->
                Option.map (fun s -> (k, s)) (Json.to_string_opt v))
              fields
        | _ -> []
      in
      Ok
        {
          te_name = name;
          te_ts_ns = Int64.of_float (ts *. 1e3);
          te_dur_ns = Int64.of_float (dur *. 1e3);
          te_tid = tid;
          te_args = args;
        }
  | _ -> Error "trace event missing name/ts/dur"

(** Parse a Chrome trace file's JSON back into events (both the
    {"traceEvents": [...]} object form this module writes and a bare
    event array are accepted). *)
let events_of_json (j : Json.t) : (event list, string) result =
  let items =
    match j with
    | Json.List xs -> Some xs
    | Json.Obj _ -> Option.bind (Json.member "traceEvents" j) Json.to_list
    | _ -> None
  in
  match items with
  | None -> Error "not a trace: expected an array or a traceEvents object"
  | Some xs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match event_of_json x with
            | Ok ev -> go (ev :: acc) rest
            | Error e -> Error e)
      in
      go [] xs

let write_file (t : t) (path : string) : unit =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Summaries (used by `hoyan trace summarize` and the tests)           *)
(* ------------------------------------------------------------------ *)

type summary_row = {
  sr_name : string;
  sr_count : int;
  sr_total_ms : float;
  sr_mean_ms : float;
  sr_max_ms : float;
}

(** Aggregate events by span name, sorted by total time descending. *)
let summarize (evs : event list) : summary_row list =
  let tbl : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun ev ->
      let ms = Clock.ns_to_ms ev.te_dur_ns in
      match Hashtbl.find_opt tbl ev.te_name with
      | Some (n, total, mx) ->
          incr n;
          total := !total +. ms;
          if ms > !mx then mx := ms
      | None -> Hashtbl.add tbl ev.te_name (ref 1, ref ms, ref ms))
    evs;
  Hashtbl.fold
    (fun name (n, total, mx) acc ->
      {
        sr_name = name;
        sr_count = !n;
        sr_total_ms = !total;
        sr_mean_ms = !total /. float_of_int !n;
        sr_max_ms = !mx;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         let c = Float.compare b.sr_total_ms a.sr_total_ms in
         if c <> 0 then c else String.compare a.sr_name b.sr_name)

(** Aggregate events carrying the given arg key (e.g. a subtask "id") by
    that arg's value, sorted by total time descending. *)
let summarize_by_arg (key : string) (evs : event list) : summary_row list =
  List.filter_map
    (fun ev ->
      Option.map
        (fun v -> { ev with te_name = v })
        (List.assoc_opt key ev.te_args))
    evs
  |> summarize
