(** Monotonic process clock (non-decreasing across domains).

    Wall time clamped through an atomic high-water mark, standing in for
    CLOCK_MONOTONIC which the stdlib does not expose. *)

(** Nanoseconds since process start. *)
val now_ns : unit -> int64

val ns_to_us : int64 -> float
val ns_to_ms : int64 -> float
val ns_to_s : int64 -> float
