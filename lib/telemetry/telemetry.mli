(** The telemetry handle threaded through the simulation pipeline: a
    tracer, a metrics registry and an event journal behind one [enabled]
    flag.  With the default {!noop} handle every helper is a single
    branch (overhead measured in the `--telemetry` bench section).

    Hot call sites that would otherwise allocate an argument list should
    guard on {!enabled} before calling {!event}/{!count}. *)

type t = {
  enabled : bool;
  trace : Trace.t;
  metrics : Metrics.t;
  journal : Journal.t;
}

(** A live handle (fresh sinks, [enabled = true]). *)
val create : unit -> t

(** The disabled handle: all helpers return immediately. *)
val noop : t

val enabled : t -> bool

(** Install/read the process-global handle (default {!noop}); the
    default for every [?tm] parameter in the instrumented layers. *)
val set : t -> unit

val get : unit -> t

(** Open a span ({!Trace.null_span} when disabled). *)
val span : t -> ?args:(string * string) list -> string -> Trace.span

val finish : t -> ?args:(string * string) list -> Trace.span -> unit

(** Time [f] under a span; the span closes even if [f] raises. *)
val with_span :
  t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

val count : t -> ?labels:Metrics.labels -> string -> int -> unit
val gauge : t -> ?labels:Metrics.labels -> string -> float -> unit

(** Histogram observation (e.g. a duration in seconds). *)
val observe : t -> ?labels:Metrics.labels -> string -> float -> unit

val event : t -> string -> (string * Journal.field) list -> unit
