(** Metrics registry: counters, gauges and log-scale histograms.

    Counter increments and histogram observations go to per-domain
    shards (lock-cheap on the hot path: a domain locks only its own
    shard's mutex) and are merged on read.  Gauges live in one global
    table — last-write-wins is the only sensible merge for a gauge.
    Histograms use factor-2 log-scale buckets from 1 µs, matching the
    heavy skew of subtask run times (paper Figure 5c). *)

type labels = (string * string) list

type t

val create : unit -> t

(** [incr t name n] adds [n] to a counter. *)
val incr : t -> ?labels:labels -> string -> int -> unit

(** Record one histogram observation (e.g. a duration in seconds). *)
val observe : t -> ?labels:labels -> string -> float -> unit

val gauge_set : t -> ?labels:labels -> string -> float -> unit

(** Total update operations recorded (overhead accounting in the bench). *)
val ops : t -> int

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_buckets : (float * int) list;  (** upper bound, cumulative count *)
}

(** A merged snapshot; every list is sorted by name/labels, so fixed
    workloads render byte-identical counter sections. *)
type snapshot = {
  counters : (string * labels * int) list;
  gauges : (string * labels * float) list;
  hists : (string * labels * hist_view) list;
}

val snapshot : t -> snapshot

(** Merged value of one counter; 0 when never incremented. *)
val counter_value : t -> ?labels:labels -> string -> int

val gauge_value : t -> ?labels:labels -> string -> float option

(** Prometheus text exposition format. *)
val to_prometheus : t -> string

val to_json : t -> Json.t
val write_prometheus_file : t -> string -> unit
