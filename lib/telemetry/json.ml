(** Minimal JSON values: emission and parsing.

    The telemetry layer renders three artifact kinds — Chrome trace-event
    JSON, Prometheus/JSON metric snapshots and the JSONL event journal —
    and `hoyan trace summarize` parses trace files back.  The repo has no
    JSON dependency, so this is a small self-contained implementation;
    the round trip (emit then parse) is property-tested in the suite. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* keep integral floats round-trippable without a trailing ".0" mess *)
    Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string (j : t) : string =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when Char.equal c c' -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.equal (String.sub st.src st.pos n) word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some '"' -> advance st; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance st; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance st; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance st; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance st; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* ASCII range only; telemetry strings are ASCII *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub st.src start (st.pos - start) in
  if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

let of_string (s : string) : (t, string) result =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member (key : string) = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
