(** Structured event journal: pipeline-level events as JSONL.

    The production system's operators debug runs through the subtask DB
    and run-time curves (paper §3.2, Figure 5); the journal is that
    record for this reproduction — subtask lifecycle, fixpoint rounds,
    EC compression, gate outcomes — one JSON object per line, in a
    stable schema ({v {"seq":…,"ts_us":…,"ev":…,"fields":{…}} v}).

    Events land in per-domain shards; a global atomic sequence number
    gives the merged stream a total order that is deterministic for a
    deterministic workload (timestamps are not). *)

type field =
  | S of string
  | I of int
  | F of float
  | B of bool

type event = {
  ev_seq : int;
  ev_ts_ns : int64;
  ev_name : string;
  ev_fields : (string * field) list;
}

let shard_count = 64

type shard = { sh_mu : Mutex.t; mutable sh_events : event list }

type t = { shards : shard array; seq : int Atomic.t }

let create () =
  {
    shards =
      Array.init shard_count (fun _ ->
          { sh_mu = Mutex.create (); sh_events = [] });
    seq = Atomic.make 0;
  }

let event (t : t) (name : string) (fields : (string * field) list) : unit =
  let ev =
    {
      ev_seq = Atomic.fetch_and_add t.seq 1;
      ev_ts_ns = Clock.now_ns ();
      ev_name = name;
      ev_fields = fields;
    }
  in
  let shard = t.shards.((Domain.self () :> int) mod shard_count) in
  Mutex.lock shard.sh_mu;
  shard.sh_events <- ev :: shard.sh_events;
  Mutex.unlock shard.sh_mu

(** All events, merged across shards, in sequence order. *)
let events (t : t) : event list =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.sh_mu;
      let evs = shard.sh_events in
      Mutex.unlock shard.sh_mu;
      List.rev_append evs acc)
    [] t.shards
  |> List.sort (fun a b -> Int.compare a.ev_seq b.ev_seq)

let count (t : t) = List.length (events t)

let field_to_json = function
  | S s -> Json.String s
  | I n -> Json.Int n
  | F f -> Json.Float f
  | B b -> Json.Bool b

let event_to_json (ev : event) : Json.t =
  Json.Obj
    [
      ("seq", Json.Int ev.ev_seq);
      ("ts_us", Json.Float (Clock.ns_to_us ev.ev_ts_ns));
      ("ev", Json.String ev.ev_name);
      ( "fields",
        Json.Obj (List.map (fun (k, v) -> (k, field_to_json v)) ev.ev_fields)
      );
    ]

let to_jsonl (t : t) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Buffer.add_string buf (Json.to_string (event_to_json ev));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let write_file (t : t) (path : string) : unit =
  let oc = open_out path in
  output_string oc (to_jsonl t);
  close_out oc

(** Events with the given name, in sequence order (test helper). *)
let find (t : t) (name : string) : event list =
  List.filter (fun ev -> String.equal ev.ev_name name) (events t)
