(** Monotonic process clock for the telemetry layer.

    The stdlib exposes no CLOCK_MONOTONIC; [Unix.gettimeofday] is wall
    time and may step backwards under clock adjustment.  Span durations
    must never be negative, so the reading is clamped to be non-
    decreasing across all domains through an atomic high-water mark (the
    CAS loop only retries under a concurrent advance, and telemetry
    reads the clock only on enabled paths). *)

let t0 = Unix.gettimeofday ()
let last : int64 Atomic.t = Atomic.make 0L

(** Nanoseconds since process start; non-decreasing across domains. *)
let now_ns () : int64 =
  let raw = Int64.of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last in
    if Int64.compare raw prev <= 0 then prev
    else if Atomic.compare_and_set last prev raw then raw
    else clamp ()
  in
  clamp ()

let ns_to_us ns = Int64.to_float ns /. 1e3
let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_s ns = Int64.to_float ns /. 1e9
