(** Tracer: nestable timed spans emitting Chrome trace-event JSON.

    Spans are explicit handles (no implicit thread-local stack), so they
    compose with {!Hoyan_dist.Parallel} domains: open a span anywhere,
    close it wherever the work completes.  Completed spans are recorded
    as Chrome "complete" events with the recording domain's id as [tid];
    per-domain shards keep the hot path nearly contention-free and are
    merged on read. *)

type event = {
  te_name : string;
  te_ts_ns : int64;  (** span start, ns since process start *)
  te_dur_ns : int64;
  te_tid : int;  (** domain that finished the span *)
  te_args : (string * string) list;
}

type span

(** Handle returned when telemetry is disabled; finishing it is a no-op. *)
val null_span : span

type t

val create : unit -> t

(** Open a span (reads the clock; records nothing yet). *)
val start : ?args:(string * string) list -> string -> span

(** Close a span and record the completed event into the current
    domain's shard.  [args] are appended to the start-time args. *)
val finish : t -> ?args:(string * string) list -> span -> unit

(** All completed events, merged across shards, sorted by start time. *)
val events : t -> event list

val count : t -> int

(** The {v {"traceEvents": [...]} v} object chrome://tracing loads. *)
val to_json : t -> Json.t

(** Parse a trace back (the object form or a bare event array). *)
val events_of_json : Json.t -> (event list, string) result

val write_file : t -> string -> unit

type summary_row = {
  sr_name : string;
  sr_count : int;
  sr_total_ms : float;
  sr_mean_ms : float;
  sr_max_ms : float;
}

(** Aggregate by span name, sorted by total time descending. *)
val summarize : event list -> summary_row list

(** Aggregate by the value of the given arg key (e.g. subtask "id"). *)
val summarize_by_arg : string -> event list -> summary_row list
