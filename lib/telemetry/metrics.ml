(** Metrics registry: counters, gauges and log-scale histograms.

    Counters and histogram observations land in per-domain shards
    (slot = domain id mod shard count): a domain's update locks only its
    own shard's mutex, which is uncontended unless two domains share a
    slot, so the hot path is lock-cheap; shards are merged on read.
    Gauges (set rarely — compression ratios, queue depths) live in one
    global table under a single mutex, because last-write-wins is the
    only sensible merge for a gauge.

    Histograms use log-scale buckets (factor-2 boundaries from 1 µs),
    matching the paper's heavily skewed subtask run times (Figure 5c):
    linear buckets would waste resolution at the short end.

    Rendering: Prometheus text exposition and JSON, both with a
    deterministic sort order so fixed workloads produce byte-identical
    counter sections. *)

type labels = (string * string) list

(* canonical label rendering: sorted by key, Prometheus syntax *)
let render_labels (labels : labels) : string =
  match labels with
  | [] -> ""
  | _ ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> String.compare a b) labels
      in
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) sorted)
      ^ "}"

let key name labels = name ^ render_labels labels

(* ------------------------------------------------------------------ *)
(* Histogram buckets                                                   *)
(* ------------------------------------------------------------------ *)

let bucket_lo = 1e-6
let bucket_factor = 2.0
let bucket_n = 40 (* 1 µs * 2^39 ≈ 5.5e5 s upper boundary *)

(** Upper boundary of bucket [i] (the last bucket is +inf). *)
let bucket_bound i =
  if i >= bucket_n - 1 then infinity
  else bucket_lo *. (bucket_factor ** float_of_int i)

let bucket_index (v : float) : int =
  if v <= bucket_lo then 0
  else
    let i =
      int_of_float (Float.ceil (Float.log (v /. bucket_lo) /. Float.log bucket_factor))
    in
    if i >= bucket_n then bucket_n - 1 else i

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array; (* per-bucket (non-cumulative) counts *)
}

let hist_create () =
  { h_count = 0; h_sum = 0.; h_buckets = Array.make bucket_n 0 }

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type entry = { m_name : string; m_labels : labels; m_kind : kind }
and kind = Counter of int ref | Hist of hist

type shard = {
  sh_mu : Mutex.t;
  sh_entries : (string, entry) Hashtbl.t;
  mutable sh_ops : int; (* update operations, for overhead accounting *)
}

let shard_count = 64

type t = {
  shards : shard array;
  g_mu : Mutex.t;
  gauges : (string, string * labels * float ref) Hashtbl.t;
}

let create () =
  {
    shards =
      Array.init shard_count (fun _ ->
          {
            sh_mu = Mutex.create ();
            sh_entries = Hashtbl.create 32;
            sh_ops = 0;
          });
    g_mu = Mutex.create ();
    gauges = Hashtbl.create 16;
  }

let my_shard t = t.shards.((Domain.self () :> int) mod shard_count)

let incr (t : t) ?(labels = []) (name : string) (n : int) : unit =
  let shard = my_shard t in
  Mutex.lock shard.sh_mu;
  shard.sh_ops <- shard.sh_ops + 1;
  let k = key name labels in
  (match Hashtbl.find_opt shard.sh_entries k with
  | Some { m_kind = Counter r; _ } -> r := !r + n
  | Some _ -> () (* name reused with another kind: drop rather than raise *)
  | None ->
      Hashtbl.add shard.sh_entries k
        { m_name = name; m_labels = labels; m_kind = Counter (ref n) });
  Mutex.unlock shard.sh_mu

let observe (t : t) ?(labels = []) (name : string) (v : float) : unit =
  let shard = my_shard t in
  Mutex.lock shard.sh_mu;
  shard.sh_ops <- shard.sh_ops + 1;
  let k = key name labels in
  let h =
    match Hashtbl.find_opt shard.sh_entries k with
    | Some { m_kind = Hist h; _ } -> Some h
    | Some _ -> None
    | None ->
        let h = hist_create () in
        Hashtbl.add shard.sh_entries k
          { m_name = name; m_labels = labels; m_kind = Hist h };
        Some h
  in
  (match h with
  | Some h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      let i = bucket_index v in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1
  | None -> ());
  Mutex.unlock shard.sh_mu

let gauge_set (t : t) ?(labels = []) (name : string) (v : float) : unit =
  Mutex.lock t.g_mu;
  let k = key name labels in
  (match Hashtbl.find_opt t.gauges k with
  | Some (_, _, r) -> r := v
  | None -> Hashtbl.add t.gauges k (name, labels, ref v));
  Mutex.unlock t.g_mu

(** Total update operations across shards (overhead accounting). *)
let ops (t : t) : int =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.sh_mu;
      let n = shard.sh_ops in
      Mutex.unlock shard.sh_mu;
      acc + n)
    0 t.shards

(* ------------------------------------------------------------------ *)
(* Merged snapshot                                                     *)
(* ------------------------------------------------------------------ *)

type hist_view = {
  hv_count : int;
  hv_sum : float;
  hv_buckets : (float * int) list; (* upper bound, cumulative count *)
}

type snapshot = {
  counters : (string * labels * int) list; (* sorted by canonical key *)
  gauges : (string * labels * float) list;
  hists : (string * labels * hist_view) list;
}

let snapshot (t : t) : snapshot =
  let counters : (string, string * labels * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let hists : (string, string * labels * hist) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun shard ->
      Mutex.lock shard.sh_mu;
      Hashtbl.iter
        (fun k e ->
          match e.m_kind with
          | Counter r -> (
              match Hashtbl.find_opt counters k with
              | Some (_, _, acc) -> acc := !acc + !r
              | None ->
                  Hashtbl.add counters k (e.m_name, e.m_labels, ref !r))
          | Hist h -> (
              match Hashtbl.find_opt hists k with
              | Some (_, _, acc) ->
                  acc.h_count <- acc.h_count + h.h_count;
                  acc.h_sum <- acc.h_sum +. h.h_sum;
                  Array.iteri
                    (fun i n -> acc.h_buckets.(i) <- acc.h_buckets.(i) + n)
                    h.h_buckets
              | None ->
                  let copy =
                    {
                      h_count = h.h_count;
                      h_sum = h.h_sum;
                      h_buckets = Array.copy h.h_buckets;
                    }
                  in
                  Hashtbl.add hists k (e.m_name, e.m_labels, copy)))
        shard.sh_entries;
      Mutex.unlock shard.sh_mu)
    t.shards;
  let sorted_fold tbl f =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map f
  in
  let gauges =
    Mutex.lock t.g_mu;
    let gs =
      Hashtbl.fold (fun k (n, l, r) acc -> (k, (n, l, !r)) :: acc) t.gauges []
    in
    Mutex.unlock t.g_mu;
    List.sort (fun (a, _) (b, _) -> String.compare a b) gs
    |> List.map (fun (_, (n, l, v)) -> (n, l, v))
  in
  {
    counters = sorted_fold counters (fun (_, (n, l, r)) -> (n, l, !r));
    gauges;
    hists =
      sorted_fold hists (fun (_, (n, l, h)) ->
          let cum = ref 0 in
          let buckets =
            Array.to_list
              (Array.mapi
                 (fun i cnt ->
                   cum := !cum + cnt;
                   (bucket_bound i, !cum))
                 h.h_buckets)
          in
          (n, l, { hv_count = h.h_count; hv_sum = h.h_sum; hv_buckets = buckets }));
  }

(** Merged value of one counter (0 when never incremented) — the test
    hook for asserting deterministic counts. *)
let counter_value (t : t) ?(labels = []) (name : string) : int =
  let k = key name labels in
  let s = snapshot t in
  List.fold_left
    (fun acc (n, l, v) -> if String.equal (key n l) k then acc + v else acc)
    0 s.counters

let gauge_value (t : t) ?(labels = []) (name : string) : float option =
  let k = key name labels in
  let s = snapshot t in
  List.find_map
    (fun (n, l, v) -> if String.equal (key n l) k then Some v else None)
    s.gauges

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let prom_bound f = if f = infinity then "+Inf" else prom_float f

(** Prometheus text exposition format.  Counters, gauges, then
    histograms, each group sorted by name/labels. *)
let to_prometheus (t : t) : string =
  let s = snapshot t in
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (name, labels, v) ->
      type_line name "counter";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %d\n" name (render_labels labels) v))
    s.counters;
  List.iter
    (fun (name, labels, v) ->
      type_line name "gauge";
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (render_labels labels) (prom_float v)))
    s.gauges;
  List.iter
    (fun (name, labels, hv) ->
      type_line name "histogram";
      let with_le le =
        let sorted =
          List.sort (fun (a, _) (b, _) -> String.compare a b)
            (("le", le) :: labels)
        in
        "{"
        ^ String.concat ","
            (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) sorted)
        ^ "}"
      in
      (* only emit buckets up to the first one holding every observation:
         40 factor-2 buckets would be noise in the exposition *)
      let rec emit_buckets = function
        | [] -> ()
        | (bound, cum) :: rest ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" name
                 (with_le (prom_bound bound))
                 cum);
            if cum < hv.hv_count then emit_buckets rest
      in
      emit_buckets hv.hv_buckets;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" name (with_le "+Inf") hv.hv_count);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
           (prom_float hv.hv_sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
           hv.hv_count))
    s.hists;
  Buffer.contents buf

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_json (t : t) : Json.t =
  let s = snapshot t in
  Json.Obj
    [
      ( "counters",
        Json.List
          (List.map
             (fun (n, l, v) ->
               Json.Obj
                 [
                   ("name", Json.String n);
                   ("labels", labels_json l);
                   ("value", Json.Int v);
                 ])
             s.counters) );
      ( "gauges",
        Json.List
          (List.map
             (fun (n, l, v) ->
               Json.Obj
                 [
                   ("name", Json.String n);
                   ("labels", labels_json l);
                   ("value", Json.Float v);
                 ])
             s.gauges) );
      ( "histograms",
        Json.List
          (List.map
             (fun (n, l, hv) ->
               Json.Obj
                 [
                   ("name", Json.String n);
                   ("labels", labels_json l);
                   ("count", Json.Int hv.hv_count);
                   ("sum", Json.Float hv.hv_sum);
                   ( "buckets",
                     Json.List
                       (List.filter_map
                          (fun (bound, cum) ->
                            if cum = 0 then None
                            else
                              Some
                                (Json.Obj
                                   [
                                     ( "le",
                                       if bound = infinity then
                                         Json.String "+Inf"
                                       else Json.Float bound );
                                     ("cumulative", Json.Int cum);
                                   ]))
                          hv.hv_buckets) );
                 ])
             s.hists) );
    ]

let write_prometheus_file (t : t) (path : string) : unit =
  let oc = open_out path in
  output_string oc (to_prometheus t);
  close_out oc
