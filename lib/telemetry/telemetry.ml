(** The telemetry handle threaded through the simulation pipeline.

    A [t] bundles the three sinks — tracer ({!Trace}), metrics registry
    ({!Metrics}) and event journal ({!Journal}) — behind one [enabled]
    flag.  Every helper here checks that flag first, so with the default
    {!noop} handle the whole layer costs a single branch per
    instrumentation site (measured in the `--telemetry` bench section).

    Instrumented code reads the process-global handle ({!get}, an
    atomic, default {!noop}) unless an explicit handle is passed; the
    CLI installs a live handle with {!set} when `--trace`/`--metrics`/
    `--journal` are given.  Hot call sites that would otherwise build an
    argument list should guard on {!enabled} themselves:

    {[ if Telemetry.enabled tm then
         Telemetry.event tm "bgp.round" [ ("round", Journal.I n) ] ]} *)

type t = {
  enabled : bool;
  trace : Trace.t;
  metrics : Metrics.t;
  journal : Journal.t;
}

let create () =
  {
    enabled = true;
    trace = Trace.create ();
    metrics = Metrics.create ();
    journal = Journal.create ();
  }

(** The disabled handle: all helpers return immediately.  Its sinks are
    never written (shared safely by everyone). *)
let noop =
  {
    enabled = false;
    trace = Trace.create ();
    metrics = Metrics.create ();
    journal = Journal.create ();
  }

let enabled t = t.enabled

(* the process-global handle; an Atomic so Parallel domains read it
   safely (it is set before simulation starts, not during) *)
let global : t Atomic.t = Atomic.make noop

let set tm = Atomic.set global tm
let get () = Atomic.get global

(* ------------------------------------------------------------------ *)
(* Guarded helpers                                                     *)
(* ------------------------------------------------------------------ *)

let span (t : t) ?args name : Trace.span =
  if t.enabled then Trace.start ?args name else Trace.null_span

let finish (t : t) ?args (sp : Trace.span) : unit =
  if t.enabled then Trace.finish t.trace ?args sp

(** Time [f] under a span; the span closes even if [f] raises. *)
let with_span (t : t) ?args name (f : unit -> 'a) : 'a =
  if not t.enabled then f ()
  else begin
    let sp = Trace.start ?args name in
    Fun.protect ~finally:(fun () -> Trace.finish t.trace sp) f
  end

let count (t : t) ?labels name n : unit =
  if t.enabled then Metrics.incr t.metrics ?labels name n

let gauge (t : t) ?labels name v : unit =
  if t.enabled then Metrics.gauge_set t.metrics ?labels name v

let observe (t : t) ?labels name v : unit =
  if t.enabled then Metrics.observe t.metrics ?labels name v

let event (t : t) name fields : unit =
  if t.enabled then Journal.event t.journal name fields
