(** Minimal JSON values: emission and parsing (no external dependency).

    Used for every telemetry artifact — Chrome trace-event files, metric
    snapshots, the JSONL journal — and by [hoyan trace summarize] to read
    trace files back.  The emit/parse round trip is tested in the suite. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering.  Non-finite floats render as
    [null], as JSON has no representation for them. *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** [member key j] is the field [key] of an object, [None] otherwise. *)
val member : string -> t -> t option

val to_list : t -> t list option

(** Numeric accessor accepting both [Int] and [Float]. *)
val to_float_opt : t -> float option

val to_int_opt : t -> int option
val to_string_opt : t -> string option
