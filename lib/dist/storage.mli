(** The cloud object storage of the distributed framework (paper §3.2):
    an in-memory store whose transfers are all accounted in bytes and
    files, so the cost model can convert them into simulated I/O time.

    Mutex-protected (including the accounting), so one instance can be
    shared by concurrent {!Parallel} workers. *)

open Hoyan_net

(** A delivered flow path with the volume fraction taking it. *)
type flow_path = { fp_hops : string list; fp_fraction : float }

type flow_summary = {
  fs_flow : Flow.t;
  fs_paths : flow_path list;
  fs_delivered : float;
  fs_dropped : float;
  fs_looped : float;
}

type obj =
  | O_routes of Route.t list  (** a route subtask's input *)
  | O_flows of Flow.t list  (** a traffic subtask's input *)
  | O_rib of Route.t list  (** a route subtask's result (RIB rows) *)
  | O_traffic of {
      t_loads : ((string * string) * float) list;
      t_flows : flow_summary list;
    }

(** Approximate serialized sizes, for I/O accounting. *)
val bytes_per_route : int

val bytes_per_flow : int
val bytes_per_load_entry : int
val obj_size : obj -> int

(** Accumulated transfer accounting (an immutable snapshot). *)
type stats = {
  bytes_written : int;
  bytes_read : int;
  files_written : int;
  files_read : int;
}

type t

val create : unit -> t

(** Upload: replaces any object under [key]; accounted as one written
    file of the object's size. *)
val put : t -> key:string -> obj -> unit

(** Download: accounted as one read file of the object's size. *)
val get : t -> key:string -> obj option

(** Remove an object (no accounting: the data vanishes rather than
    transfers).  Used by chaos injection to model object loss. *)
val delete : t -> key:string -> unit

(** Size without transferring (no accounting). *)
val size_of : t -> key:string -> int option

val mem : t -> key:string -> bool
val keys : t -> string list
val stats : t -> stats
