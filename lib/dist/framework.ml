(** The distributed simulation framework (Figure 3).

    A simulation task is assigned to a master server, which splits the
    inputs into disjoint subsets (subtasks), uploads each subtask's input
    to the object store, and pushes a message per subtask into the MQ.
    Working servers consume messages, load inputs, run the subtask with
    the EC technique, update the subtask DB and write results back to the
    store; the master monitors the DB and re-sends failed subtasks.

    Fault tolerance is the master's monitor loop: between worker drains
    it scans the subtask DB for [Failed] entries, [Running] entries whose
    lease has expired (a worker died mid-subtask), [Pending] entries
    whose message was lost in flight, and [Done] entries whose result
    object has vanished — and re-sends each with exponential backoff
    until a bounded retry budget is exhausted, at which point the subtask
    goes [Terminal].  A phase's outcome contract then reports the exact
    set of permanently-failed subtasks ([rp_failed] / [tp_failed]): no
    code path merges partial results without flagging them.

    Failures are injected deterministically through a seeded {!Chaos}
    plan (worker crashes, storage-object loss, MQ message drop and
    duplication, worker stalls), so every failure mode is reproducible
    and testable.

    Subtasks are executed here on the calling thread, one after another,
    with their compute time measured and their I/O accounted; the
    multi-server end-to-end time is then obtained by replaying the
    measured durations through {!Schedule} (see DESIGN.md §2 for why this
    substitution preserves the paper's scalability behaviour).  A real
    multicore execution path is provided by {!Parallel}.

    Every phase is instrumented through {!Hoyan_telemetry.Telemetry}:
    spans around the master's split/upload/monitor and each worker step,
    counters for pushes/pops/re-sends/lease expiries/terminal failures,
    and journal events for the subtask lifecycle.  With the default noop
    handle each site costs one branch. *)

open Hoyan_net
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Smap = Map.Make (String)

(** Counters the master's monitor loop accumulates across a framework
    instance's phases (mutable; read for reports and benches). *)
type monitor_stats = {
  mutable ms_scans : int; (* monitor passes over the subtask DB *)
  mutable ms_scan_s : float; (* wall time spent scanning *)
  mutable ms_resends : int; (* subtasks re-sent to the MQ *)
  mutable ms_lease_expired : int; (* attempts reclaimed via lease expiry *)
  mutable ms_terminal : int; (* subtasks that went permanently failed *)
  mutable ms_reuploads : int; (* inputs re-uploaded from the master's split *)
  mutable ms_backoff_s : float; (* accumulated modelled backoff delay *)
  mutable ms_stale_msgs : int; (* duplicate/stale deliveries ignored *)
}

type t = {
  storage : Storage.t;
  mq : Mq.t;
  db : Db.t;
  model : Model.t;
  snapshot : string;
  chaos : Chaos.t; (* seeded fault-injection plan *)
  lease_s : float; (* per-attempt lease duration *)
  backoff_base_s : float; (* first-retry backoff (doubles per attempt) *)
  backoff_max_s : float;
  max_attempts : int; (* execution attempts before a subtask goes Terminal *)
  inputs : (string, string * Storage.obj) Hashtbl.t;
      (* subtask id -> (input key, retained input) so the monitor can
         re-upload a lost input object *)
  put_gens : (string, int) Hashtbl.t; (* object key -> puts so far *)
  mutable base_rows : Route.t list option;
      (* the shared base RIB, retained for re-upload on loss *)
  stats : monitor_stats;
  tm : Telemetry.t;
}

let create ?tm ?chaos ?(fail_prob = 0.) ?(seed = 42) ?(lease_s = 30.)
    ?(backoff_base_s = 0.05) ?(backoff_max_s = 5.) ?(max_attempts = 3)
    ?(snapshot = "base") (model : Model.t) : t =
  let chaos =
    match chaos with
    | Some c -> c
    | None ->
        if fail_prob > 0. then Chaos.make ~seed ~crash_prob:fail_prob ()
        else Chaos.none
  in
  {
    storage = Storage.create ();
    mq = Mq.create ();
    db = Db.create ();
    model;
    snapshot;
    chaos;
    lease_s;
    backoff_base_s;
    backoff_max_s;
    max_attempts;
    inputs = Hashtbl.create 256;
    put_gens = Hashtbl.create 256;
    base_rows = None;
    stats =
      {
        ms_scans = 0;
        ms_scan_s = 0.;
        ms_resends = 0;
        ms_lease_expired = 0;
        ms_terminal = 0;
        ms_reuploads = 0;
        ms_backoff_s = 0.;
        ms_stale_msgs = 0;
      };
    tm = (match tm with Some tm -> tm | None -> Telemetry.get ());
  }

(* Failure reasons the monitor pattern-matches on. *)
let reason_missing_input = "missing input object"
let reason_missing_result = "result object missing"

(* ------------------------------------------------------------------ *)
(* Telemetry helpers                                                   *)
(* ------------------------------------------------------------------ *)

let phase_label = function
  | Mq.Route_subtask -> "route"
  | Mq.Traffic_subtask -> "traffic"

let ev_chaos (t : t) (site : Chaos.site) (id : string) =
  if Telemetry.enabled t.tm then begin
    Telemetry.count t.tm
      ~labels:[ ("site", Chaos.site_label site) ]
      "hoyan_chaos_injections_total" 1;
    Telemetry.event t.tm "chaos.injected"
      [ ("site", Journal.S (Chaos.site_label site)); ("id", Journal.S id) ]
  end

let ev_enqueue (t : t) (msg : Mq.message) =
  if Telemetry.enabled t.tm then begin
    let phase = phase_label msg.Mq.m_kind in
    Telemetry.count t.tm ~labels:[ ("phase", phase) ]
      "hoyan_subtasks_enqueued_total" 1;
    Telemetry.event t.tm "subtask.enqueue"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("attempt", Journal.I msg.Mq.m_attempt);
      ]
  end

let ev_dequeue (t : t) (msg : Mq.message) ~attempt =
  if Telemetry.enabled t.tm then begin
    let phase = phase_label msg.Mq.m_kind in
    Telemetry.count t.tm ~labels:[ ("phase", phase) ]
      "hoyan_subtasks_dequeued_total" 1;
    Telemetry.event t.tm "subtask.dequeue"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("attempt", Journal.I attempt);
      ]
  end

let ev_done (t : t) (msg : Mq.message) ~duration_s ~io_bytes ~io_files =
  if Telemetry.enabled t.tm then begin
    let phase = phase_label msg.Mq.m_kind in
    let labels = [ ("phase", phase) ] in
    Telemetry.count t.tm ~labels "hoyan_subtasks_completed_total" 1;
    Telemetry.count t.tm ~labels "hoyan_subtask_io_bytes_total" io_bytes;
    Telemetry.count t.tm ~labels "hoyan_subtask_io_files_total" io_files;
    Telemetry.observe t.tm ~labels "hoyan_subtask_duration_seconds" duration_s;
    Telemetry.event t.tm "subtask.done"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("duration_s", Journal.F duration_s);
        ("io_bytes", Journal.I io_bytes);
        ("io_files", Journal.I io_files);
      ]
  end

let ev_failure (t : t) ~phase ~id ~attempt reason =
  if Telemetry.enabled t.tm then
    Telemetry.event t.tm "subtask.failure"
      [
        ("id", Journal.S id);
        ("phase", Journal.S phase);
        ("reason", Journal.S reason);
        ("attempt", Journal.I attempt);
      ]

(* ------------------------------------------------------------------ *)
(* Chaos-aware transport: uploads and message sends                    *)
(* ------------------------------------------------------------------ *)

(** Upload an object; the chaos plan may lose it right after the put
    (the write is accounted, the data is gone — exactly what a worker's
    subsequent get observes of a lost cloud object). *)
let chaos_put (t : t) ~key (o : Storage.obj) : unit =
  Storage.put t.storage ~key o;
  let gen = 1 + Option.value (Hashtbl.find_opt t.put_gens key) ~default:0 in
  Hashtbl.replace t.put_gens key gen;
  if Chaos.put_lost t.chaos ~key ~seq:gen then begin
    Storage.delete t.storage ~key;
    ev_chaos t Chaos.Storage_loss key
  end

(** Send a subtask message; the chaos plan may drop it (it never
    arrives — the monitor later finds the entry still [Pending] and
    re-sends) or duplicate it (the worker-side gate ignores the stale
    copy). *)
let chaos_push (t : t) (entry : Db.entry) (msg : Mq.message) : unit =
  let seq = Db.bump_sends entry in
  if Chaos.strikes t.chaos ~site:Chaos.Mq_drop ~key:msg.Mq.m_id ~seq then begin
    Mq.note_dropped t.mq;
    ev_chaos t Chaos.Mq_drop msg.Mq.m_id
  end
  else begin
    Mq.push t.mq msg;
    ev_enqueue t msg;
    if Chaos.strikes t.chaos ~site:Chaos.Mq_dup ~key:msg.Mq.m_id ~seq then begin
      Mq.push t.mq msg;
      Mq.note_duplicated t.mq;
      ev_chaos t Chaos.Mq_dup msg.Mq.m_id
    end
  end

(** Register a subtask: retain its input for possible re-upload, upload
    it, and send the first message. *)
let submit (t : t) ~id ~kind (input : Storage.obj)
    ~(range : (Ip.t * Ip.t) option) : unit =
  let input_key = id ^ ".in" in
  Hashtbl.replace t.inputs id (input_key, input);
  chaos_put t ~key:input_key input;
  let entry = Db.register t.db id in
  Db.set_range entry range;
  chaos_push t entry
    {
      Mq.m_id = id;
      m_kind = kind;
      m_input_key = input_key;
      m_snapshot = t.snapshot;
      m_attempt = 1;
    }

(* ------------------------------------------------------------------ *)
(* Worker-side helpers                                                 *)
(* ------------------------------------------------------------------ *)

(** The worker-side delivery gate: only [Pending] (first delivery or
    monitor re-send) and [Failed] (a duplicate arriving after a crashed
    attempt — a free retry) entries may run.  Deliveries for [Done],
    [Terminal] or still-[Running] entries are stale (MQ duplication, or
    a message for a stalled attempt) and are ignored. *)
let deliverable (t : t) (msg : Mq.message) (entry : Db.entry) : bool =
  match Db.status entry with
  | Db.Pending | Db.Failed _ -> true
  | Db.Done | Db.Terminal _ | Db.Running ->
      t.stats.ms_stale_msgs <- t.stats.ms_stale_msgs + 1;
      if Telemetry.enabled t.tm then begin
        Telemetry.count t.tm "hoyan_mq_stale_deliveries_total" 1;
        Telemetry.event t.tm "subtask.stale_message"
          [
            ("id", Journal.S msg.Mq.m_id);
            ("phase", Journal.S (phase_label msg.Mq.m_kind));
          ]
      end;
      false

(** Chaos preamble shared by both worker kinds: injected crash (the
    worker dies, the DB records the failure) or injected stall (the
    worker wedges without writing anything back; its lease is backdated
    so the monitor's next scan reclaims it).  Returns [true] when the
    attempt was killed. *)
let chaos_preempts (t : t) (msg : Mq.message) (entry : Db.entry) ~attempt :
    bool =
  if Chaos.strikes t.chaos ~site:Chaos.Crash ~key:msg.Mq.m_id ~seq:attempt
  then begin
    Db.record_failure entry "worker crashed";
    ev_chaos t Chaos.Crash msg.Mq.m_id;
    ev_failure t
      ~phase:(phase_label msg.Mq.m_kind)
      ~id:msg.Mq.m_id ~attempt "worker crashed";
    true
  end
  else if Chaos.strikes t.chaos ~site:Chaos.Stall ~key:msg.Mq.m_id ~seq:attempt
  then begin
    (* the stalled worker holds the subtask for (modelled) c_stall_s,
       longer than any lease: by the time the monitor scans, the lease
       has expired *)
    Db.expire_lease entry;
    ev_chaos t Chaos.Stall msg.Mq.m_id;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* The master's monitor loop                                           *)
(* ------------------------------------------------------------------ *)

let terminalize (t : t) ~phase ~id (entry : Db.entry) (reason : string) : unit
    =
  Db.mark_terminal entry reason;
  t.stats.ms_terminal <- t.stats.ms_terminal + 1;
  if Telemetry.enabled t.tm then begin
    Telemetry.count t.tm
      ~labels:[ ("phase", phase) ]
      "hoyan_subtask_terminal_total" 1;
    Telemetry.event t.tm "subtask.terminal_failure"
      [
        ("id", Journal.S id);
        ("phase", Journal.S phase);
        ("reason", Journal.S reason);
        ("attempts", Journal.I (Db.attempts entry));
      ]
  end

(** Re-queue a subtask (monitor side): back to [Pending], one more
    message through the chaos-aware send path. *)
let resend (t : t) ~kind ~id (entry : Db.entry) : unit =
  let input_key =
    match Hashtbl.find_opt t.inputs id with
    | Some (key, _) -> key
    | None -> id ^ ".in"
  in
  Db.requeue entry;
  t.stats.ms_resends <- t.stats.ms_resends + 1;
  if Telemetry.enabled t.tm then
    Telemetry.count t.tm
      ~labels:[ ("phase", phase_label kind) ]
      "hoyan_monitor_resends_total" 1;
  chaos_push t entry
    {
      Mq.m_id = id;
      m_kind = kind;
      m_input_key = input_key;
      m_snapshot = t.snapshot;
      m_attempt = Db.attempts entry + 1;
    }

(** A failed attempt: re-send with exponential backoff while the retry
    budget lasts, [Terminal] after.  "missing input object" additionally
    re-uploads the input from the split the master retained (and the
    shared base RIB, if that is what vanished). *)
let retry_or_terminal (t : t) ~kind ~id (entry : Db.entry) (reason : string) :
    unit =
  let phase = phase_label kind in
  let attempts = Db.attempts entry in
  if attempts >= t.max_attempts then terminalize t ~phase ~id entry reason
  else begin
    if String.equal reason reason_missing_input then begin
      (match Hashtbl.find_opt t.inputs id with
      | Some (input_key, obj) ->
          if not (Storage.mem t.storage ~key:input_key) then begin
            chaos_put t ~key:input_key obj;
            t.stats.ms_reuploads <- t.stats.ms_reuploads + 1;
            if Telemetry.enabled t.tm then
              Telemetry.count t.tm "hoyan_monitor_reuploads_total" 1
          end
      | None -> ());
      (* a traffic worker also fails this way when the shared base RIB
         object was lost; restore it from the master's retained copy *)
      match t.base_rows with
      | Some rows when not (Storage.mem t.storage ~key:"route-base.rib") ->
          chaos_put t ~key:"route-base.rib" (Storage.O_rib rows);
          t.stats.ms_reuploads <- t.stats.ms_reuploads + 1
      | _ -> ()
    end;
    let backoff =
      Float.min t.backoff_max_s
        (t.backoff_base_s *. (2. ** float_of_int (max 0 (attempts - 1))))
    in
    (* the backoff delay is modelled, not slept: it accumulates on the
       entry (and in the stats) the same way the store's I/O time is
       modelled rather than performed *)
    Db.add_backoff entry backoff;
    t.stats.ms_backoff_s <- t.stats.ms_backoff_s +. backoff;
    if Telemetry.enabled t.tm then
      Telemetry.event t.tm "subtask.retry"
        [
          ("id", Journal.S id);
          ("phase", Journal.S phase);
          ("attempt", Journal.I (attempts + 1));
          ("backoff_s", Journal.F backoff);
          ("reason", Journal.S reason);
        ];
    resend t ~kind ~id entry
  end

(** One monitor pass over the phase's subtasks (the queue is drained
    when this runs).  Detects and recovers:
    - [Failed] entries (worker crashes, missing objects): retry/terminal;
    - [Running] entries whose lease expired (worker died or stalled
      mid-subtask): reclaim, then retry/terminal;
    - [Pending] entries (their message was lost in flight): re-send
      without consuming an attempt;
    - [Done] entries whose result object has vanished: treat as a
      failure, never as a silently smaller merge.
    Returns the number of re-sends (callers drain again while > 0). *)
let monitor_scan (t : t) ~kind (ids : string list) : int =
  let t0 = Unix.gettimeofday () in
  let resent_before = t.stats.ms_resends in
  let phase = phase_label kind in
  List.iter
    (fun id ->
      let entry = Db.find_exn t.db id in
      match Db.status entry with
      | Db.Terminal _ -> ()
      | Db.Done -> (
          match Db.result_key entry with
          | Some key when Storage.mem t.storage ~key -> ()
          | _ ->
              Db.record_failure entry reason_missing_result;
              ev_failure t ~phase ~id ~attempt:(Db.attempts entry)
                reason_missing_result;
              retry_or_terminal t ~kind ~id entry reason_missing_result)
      | Db.Pending ->
          (* the message never arrived; the subtask never ran, so no
             attempt is consumed *)
          resend t ~kind ~id entry
      | Db.Running ->
          if Db.lease_expired ~now:t0 entry then begin
            t.stats.ms_lease_expired <- t.stats.ms_lease_expired + 1;
            if Telemetry.enabled t.tm then begin
              Telemetry.count t.tm
                ~labels:[ ("phase", phase) ]
                "hoyan_subtask_lease_expired_total" 1;
              Telemetry.event t.tm "subtask.lease_expired"
                [
                  ("id", Journal.S id);
                  ("phase", Journal.S phase);
                  ("attempt", Journal.I (Db.attempts entry));
                ]
            end;
            Db.record_failure entry "lease expired";
            retry_or_terminal t ~kind ~id entry "lease expired"
          end
          (* else: a live worker still holds the lease; leave it alone
             (cannot happen in the sequential driver, where the queue is
             drained before each scan) *)
      | Db.Failed reason -> retry_or_terminal t ~kind ~id entry reason)
    ids;
  t.stats.ms_scans <- t.stats.ms_scans + 1;
  t.stats.ms_scan_s <- t.stats.ms_scan_s +. (Unix.gettimeofday () -. t0);
  t.stats.ms_resends - resent_before

(** Drive a phase to a settled state: drain the queue with [worker_step],
    run a monitor scan, and repeat while the monitor re-sent anything.
    The round cap bounds pathological plans (e.g. an MQ that drops every
    message); whatever has not settled by then is made [Terminal] — a
    phase always terminates and always reports its losses. *)
let settle (t : t) ~kind ~ids ~(worker_step : unit -> bool) : unit =
  let max_rounds = (t.max_attempts * 8) + 8 in
  let rec go round =
    while worker_step () do
      ()
    done;
    let resent =
      Telemetry.with_span t.tm "master.monitor" (fun () ->
          monitor_scan t ~kind ids)
    in
    if resent > 0 && round < max_rounds then go (round + 1)
  in
  go 0;
  List.iter
    (fun id ->
      let entry = Db.find_exn t.db id in
      match Db.status entry with
      | Db.Done | Db.Terminal _ -> ()
      | s ->
          terminalize t ~phase:(phase_label kind) ~id entry
            (Printf.sprintf "monitor gave up (still %s after %d rounds)"
               (Db.status_to_string s) max_rounds))
    ids

(* ------------------------------------------------------------------ *)
(* Phase outcome contract                                              *)
(* ------------------------------------------------------------------ *)

type subtask_failure = {
  sf_id : string;
  sf_reason : string;
  sf_attempts : int;
}

let failure_to_string (f : subtask_failure) =
  Printf.sprintf "%s: %s (after %d attempt%s)" f.sf_id f.sf_reason
    f.sf_attempts
    (if f.sf_attempts = 1 then "" else "s")

(** Collect every subtask's result through one accounting path: a
    subtask either contributes its result object or appears in the
    failure list — there is no silent third outcome. *)
let collect_results (t : t) (ids : string list)
    ~(get : string -> 'a option) : 'a list * subtask_failure list =
  let results, failures =
    List.fold_left
      (fun (acc, fails) id ->
        let entry = Db.find_exn t.db id in
        let fail reason =
          ( acc,
            { sf_id = id; sf_reason = reason; sf_attempts = Db.attempts entry }
            :: fails )
        in
        match Db.status entry with
        | Db.Done -> (
            match Db.result_key entry with
            | None -> fail "completed without recording a result"
            | Some key -> (
                match get key with
                | Some v -> (v :: acc, fails)
                | None -> fail reason_missing_result))
        | Db.Terminal reason -> fail reason
        | s -> fail ("unsettled: " ^ Db.status_to_string s))
      ([], []) ids
  in
  (List.rev results, List.rev failures)

(* ------------------------------------------------------------------ *)
(* Route simulation phase                                              *)
(* ------------------------------------------------------------------ *)

type route_phase = {
  rp_subtasks : string list; (* subtask ids, in push order *)
  rp_rib : Route.t list; (* merged global RIB (incl. local tables) *)
  rp_durations : (string * float) list; (* measured compute seconds *)
  rp_ec_inputs : int; (* ECs actually simulated (summed over subtasks) *)
  rp_total_inputs : int;
  rp_failed : subtask_failure list; (* permanently-failed subtasks *)
  rp_complete : bool; (* every subtask's result was merged *)
  rp_resends : int; (* monitor re-sends during the phase *)
}

let range_of_rows (input_range : Ip.t * Ip.t) (rows : Route.t list) :
    Ip.t * Ip.t =
  (* widen the recorded input range with the result rows' prefixes, so
     aggregate prefixes originated inside the subtask are covered too *)
  List.fold_left
    (fun (lo, hi) (r : Route.t) ->
      let f = Prefix.first_addr r.Route.prefix
      and l = Prefix.last_addr r.Route.prefix in
      ( (if Ip.compare f lo < 0 then f else lo),
        if Ip.compare l hi > 0 then l else hi ))
    input_range rows

(** Seed a subtask's covered range from its recorded input range widened
    by the result rows.  With no recorded range, the seed comes from the
    first row's own prefix — never from [(Ip.zero Ipv4, Ip.zero Ipv4)],
    which is the wrong family for IPv6-only subtasks and would quietly
    anchor the range at v4 zero, breaking the ordering heuristic's
    overlap filter; with neither a range nor rows, the range stays
    [None] (treated as overlapping everything, which is sound). *)
let seed_range (input_range : (Ip.t * Ip.t) option) (rows : Route.t list) :
    (Ip.t * Ip.t) option =
  match (input_range, rows) with
  | Some r, _ -> Some (range_of_rows r rows)
  | None, [] -> None
  | None, (r0 : Route.t) :: _ ->
      let init =
        (Prefix.first_addr r0.Route.prefix, Prefix.last_addr r0.Route.prefix)
      in
      Some (range_of_rows init rows)

(** Prefixes originated by network statements anywhere in the model:
    input-independent, so they live in the shared base RIB file rather
    than in every subtask's result (which would otherwise make every
    subtask range cover the whole address space and defeat the ordering
    heuristic). *)
let network_prefixes (model : Model.t) : (Prefix.t, unit) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Smap.iter
    (fun _ (cfg : Hoyan_config.Types.t) ->
      List.iter
        (fun (p, _) -> Hashtbl.replace tbl p ())
        cfg.Hoyan_config.Types.dc_bgp.Hoyan_config.Types.bgp_networks)
    model.Model.configs;
  tbl

let base_rib_key = "route-base.rib"

(** One worker step: consume a message and run the subtask.  Returns false
    when the queue is empty. *)
let route_worker_step (t : t) ~(use_ecs : bool)
    ~(net_prefixes : (Prefix.t, unit) Hashtbl.t) : bool =
  match Mq.pop t.mq with
  | None -> false
  | Some msg ->
      let entry = Db.find_exn t.db msg.Mq.m_id in
      if not (deliverable t msg entry) then true
      else begin
        let attempt = Db.start_attempt ~lease_s:t.lease_s entry in
        ev_dequeue t msg ~attempt;
        if chaos_preempts t msg entry ~attempt then true
        else begin
          match Storage.get t.storage ~key:msg.Mq.m_input_key with
          | Some (Storage.O_routes inputs) ->
              let sp =
                Telemetry.span t.tm
                  ~args:[ ("id", msg.Mq.m_id); ("phase", "route") ]
                  "worker.step"
              in
              let t0 = Unix.gettimeofday () in
              let res =
                Route_sim.run ~tm:t.tm ~use_ecs ~include_locals:false
                  ~originate:false t.model ~input_routes:inputs ()
              in
              let dt = Unix.gettimeofday () -. t0 in
              let rows =
                List.filter
                  (fun (r : Route.t) ->
                    not (Hashtbl.mem net_prefixes r.Route.prefix))
                  res.Route_sim.rib
              in
              let result_key = msg.Mq.m_id ^ ".rib" in
              chaos_put t ~key:result_key (Storage.O_rib rows);
              Db.set_range entry (seed_range (Db.range entry) rows);
              let io_bytes = List.length inputs * Storage.bytes_per_route in
              Db.complete entry ~result_key ~ec_count:res.Route_sim.ec_count
                ~duration_s:dt ~io_bytes ~io_files:1 ();
              Telemetry.finish t.tm sp;
              ev_done t msg ~duration_s:dt ~io_bytes ~io_files:1;
              true
          | _ ->
              Db.record_failure entry reason_missing_input;
              ev_failure t ~phase:"route" ~id:msg.Mq.m_id ~attempt
                reason_missing_input;
              true
        end
      end

(** Master + workers for the route phase (sequential execution with
    measured durations; the master's monitor loop recovers failures). *)
let run_route_phase ?(strategy = Split.Ordered) ?(subtasks = 100)
    ?(use_ecs = true) (t : t) ~(input_routes : Route.t list) : route_phase =
  let phase_sp =
    Telemetry.span t.tm
      ~args:[ ("inputs", string_of_int (List.length input_routes)) ]
      "route.phase"
  in
  let resends_before = t.stats.ms_resends in
  (* master: prepare subtasks *)
  let splits =
    Telemetry.with_span t.tm "master.split" (fun () ->
        Split.split_routes ~strategy ~subtasks input_routes)
  in
  let upload_sp = Telemetry.span t.tm "master.upload" in
  let ids =
    List.mapi
      (fun i (routes, range) ->
        let id = Printf.sprintf "route-%03d" i in
        submit t ~id ~kind:Mq.Route_subtask (Storage.O_routes routes)
          ~range:(Some range);
        id)
      splits
  in
  Telemetry.finish t.tm
    ~args:[ ("subtasks", string_of_int (List.length ids)) ]
    upload_sp;
  let net_prefixes = network_prefixes t.model in
  (* workers drain the queue; the monitor re-sends failures until every
     subtask is Done or Terminal *)
  settle t ~kind:Mq.Route_subtask ~ids ~worker_step:(fun () ->
      route_worker_step t ~use_ecs ~net_prefixes);
  (* the shared base RIB: routes originated by network statements and
     their propagation, independent of the input routes *)
  let base_rows =
    (Route_sim.run ~tm:t.tm ~use_ecs ~include_locals:false t.model
       ~input_routes:[] ())
      .Route_sim.rib
  in
  t.base_rows <- Some base_rows;
  chaos_put t ~key:base_rib_key (Storage.O_rib base_rows);
  (* master: collect.  Every subtask either contributes its result file
     or is reported in [rp_failed]; locally originated rows (network
     statements and their propagation) appear in every subtask's result
     because they do not depend on the subtask's inputs; the master
     deduplicates when merging. *)
  let rib_chunks, failed =
    Telemetry.with_span t.tm "master.collect" (fun () ->
        collect_results t ids ~get:(fun key ->
            match Storage.get t.storage ~key with
            | Some (Storage.O_rib rows) -> Some rows
            | _ -> None))
  in
  let rib =
    (* packed-key arenas: sort each chunk by its int sort key, then a
       sorted merge — same output as sort_uniq over the concatenation *)
    let ctx = Parallel.route_key_ctx t.model ~input_routes in
    Rib.Arena.merge
      (List.map (Rib.Arena.of_routes ctx) (base_rows :: rib_chunks))
  in
  let locals =
    Smap.fold
      (fun _ rs acc -> List.rev_append rs acc)
      t.model.Model.local_tables []
  in
  let durations =
    List.map (fun id -> (id, Db.duration_s (Db.find_exn t.db id))) ids
  in
  let ec_inputs =
    List.fold_left
      (fun n id ->
        let e = Db.find_exn t.db id in
        match Db.status e with Db.Done -> n + Db.ec_count e | _ -> n)
      0 ids
  in
  Telemetry.gauge t.tm "hoyan_route_rib_rows" (float_of_int (List.length rib));
  Telemetry.finish t.tm phase_sp;
  {
    rp_subtasks = ids;
    rp_rib = rib @ locals;
    rp_durations = durations;
    rp_ec_inputs = ec_inputs;
    rp_total_inputs = List.length input_routes;
    rp_failed = failed;
    rp_complete = failed = [];
    rp_resends = t.stats.ms_resends - resends_before;
  }

(* ------------------------------------------------------------------ *)
(* Traffic simulation phase                                            *)
(* ------------------------------------------------------------------ *)

type dep_mode =
  | Deps_ordered (* load only overlapping route subtasks' RIB files *)
  | Deps_all (* baseline: load every RIB file *)

type traffic_phase = {
  tp_subtasks : string list;
  tp_link_load : (string * string, float) Hashtbl.t;
  tp_flows : Storage.flow_summary list;
  tp_durations : (string * float) list;
  tp_loaded_fracs : (string * float) list;
      (* fraction of RIB files each subtask loaded (Figure 5d) *)
  tp_ec_count : int; (* ECs actually simulated (summed over subtasks) *)
  tp_failed : subtask_failure list;
  tp_complete : bool;
  tp_resends : int;
}

let traffic_worker_step (t : t) ~(route_ids : string list)
    ~(dep_mode : dep_mode) ~(use_ecs : bool) : bool =
  match Mq.pop t.mq with
  | None -> false
  | Some msg ->
      let entry = Db.find_exn t.db msg.Mq.m_id in
      if not (deliverable t msg entry) then true
      else begin
        let attempt = Db.start_attempt ~lease_s:t.lease_s entry in
        ev_dequeue t msg ~attempt;
        if chaos_preempts t msg entry ~attempt then true
        else begin
          (* both the flow input and the shared base RIB are required
             inputs; losing either is the same recoverable failure *)
          match
            ( Storage.get t.storage ~key:msg.Mq.m_input_key,
              Storage.get t.storage ~key:base_rib_key )
          with
          | Some (Storage.O_flows flows), Some (Storage.O_rib base_rows) ->
              let sp =
                Telemetry.span t.tm
                  ~args:[ ("id", msg.Mq.m_id); ("phase", "traffic") ]
                  "worker.step"
              in
              (* dependency resolution via the subtask DB ranges *)
              let my_range = Db.range entry in
              let deps =
                match dep_mode with
                | Deps_all -> route_ids
                | Deps_ordered ->
                    List.filter
                      (fun rid ->
                        match (Db.range (Db.find_exn t.db rid), my_range) with
                        | Some rrange, Some frange ->
                            Split.ranges_overlap frange rrange
                        | _ -> true)
                      route_ids
              in
              Db.set_deps entry deps;
              (* load dependent RIB files, plus the shared base RIB *)
              let io_bytes =
                ref (List.length flows * Storage.bytes_per_flow)
              in
              (match Storage.size_of t.storage ~key:base_rib_key with
              | Some sz -> io_bytes := !io_bytes + sz
              | None -> ());
              let rib =
                base_rows
                @ List.concat_map
                    (fun rid ->
                      match Db.result_key (Db.find_exn t.db rid) with
                      | Some key -> (
                          (match Storage.size_of t.storage ~key with
                          | Some sz -> io_bytes := !io_bytes + sz
                          | None -> ());
                          match Storage.get t.storage ~key with
                          | Some (Storage.O_rib rows) -> rows
                          | _ -> [])
                      | None -> [])
                    deps
              in
              let locals =
                Smap.fold
                  (fun _ rs acc -> List.rev_append rs acc)
                  t.model.Model.local_tables []
              in
              let t0 = Unix.gettimeofday () in
              let res =
                Traffic_sim.run ~tm:t.tm ~use_ecs t.model ~rib:(rib @ locals)
                  ~flows ()
              in
              let dt = Unix.gettimeofday () -. t0 in
              let flow_summaries =
                List.map
                  (fun (fr : Traffic_sim.flow_result) ->
                    {
                      Storage.fs_flow = fr.Traffic_sim.f_flow;
                      fs_paths =
                        List.map
                          (fun (p : Traffic_sim.path) ->
                            { Storage.fp_hops = p.Traffic_sim.hops;
                              fp_fraction = p.Traffic_sim.fraction })
                          fr.Traffic_sim.f_paths;
                      fs_delivered = fr.Traffic_sim.f_delivered;
                      fs_dropped = fr.Traffic_sim.f_dropped;
                      fs_looped = fr.Traffic_sim.f_looped;
                    })
                  res.Traffic_sim.flow_results
              in
              let loads =
                Hashtbl.fold
                  (fun k v acc -> (k, v) :: acc)
                  res.Traffic_sim.link_load []
              in
              let result_key = msg.Mq.m_id ^ ".out" in
              chaos_put t ~key:result_key
                (Storage.O_traffic
                   { t_loads = loads; t_flows = flow_summaries });
              let io_files = 2 + List.length deps in
              Db.complete entry ~result_key ~ec_count:res.Traffic_sim.ec_count
                ~duration_s:dt ~io_bytes:!io_bytes ~io_files ();
              Telemetry.finish t.tm sp;
              ev_done t msg ~duration_s:dt ~io_bytes:!io_bytes ~io_files;
              true
          | _ ->
              Db.record_failure entry reason_missing_input;
              ev_failure t ~phase:"traffic" ~id:msg.Mq.m_id ~attempt
                reason_missing_input;
              true
        end
      end

let run_traffic_phase ?(strategy = Split.Ordered) ?(subtasks = 128)
    ?(dep_mode = Deps_ordered) ?(use_ecs = true) (t : t)
    ~(route_phase : route_phase) ~(flows : Flow.t list) : traffic_phase =
  let phase_sp =
    Telemetry.span t.tm
      ~args:[ ("flows", string_of_int (List.length flows)) ]
      "traffic.phase"
  in
  let resends_before = t.stats.ms_resends in
  let route_ids = route_phase.rp_subtasks in
  let splits =
    Telemetry.with_span t.tm "master.split" (fun () ->
        Split.split_flows ~strategy ~subtasks flows)
  in
  let upload_sp = Telemetry.span t.tm "master.upload" in
  let ids =
    List.mapi
      (fun i (fs, range) ->
        let id = Printf.sprintf "traffic-%03d" i in
        submit t ~id ~kind:Mq.Traffic_subtask (Storage.O_flows fs)
          ~range:(Some range);
        id)
      splits
  in
  Telemetry.finish t.tm
    ~args:[ ("subtasks", string_of_int (List.length ids)) ]
    upload_sp;
  settle t ~kind:Mq.Traffic_subtask ~ids ~worker_step:(fun () ->
      traffic_worker_step t ~route_ids ~dep_mode ~use_ecs);
  (* master: aggregate loads across subtasks, collect flows.  Every
     subtask either contributes its result file or is reported in
     [tp_failed]. *)
  let link_load = Hashtbl.create 1024 in
  let all_flows = ref [] in
  let chunks, failed =
    Telemetry.with_span t.tm "master.collect" (fun () ->
        collect_results t ids ~get:(fun key ->
            match Storage.get t.storage ~key with
            | Some (Storage.O_traffic { t_loads; t_flows }) ->
                Some (t_loads, t_flows)
            | _ -> None))
  in
  List.iter
    (fun (t_loads, t_flows) ->
      List.iter
        (fun (k, v) ->
          let cur = Option.value (Hashtbl.find_opt link_load k) ~default:0. in
          Hashtbl.replace link_load k (cur +. v))
        t_loads;
      all_flows := List.rev_append t_flows !all_flows)
    chunks;
  let ec_total =
    List.fold_left
      (fun n id ->
        let e = Db.find_exn t.db id in
        match Db.status e with Db.Done -> n + Db.ec_count e | _ -> n)
      0 ids
  in
  let n_route = float_of_int (List.length route_ids) in
  let loaded_fracs =
    List.map
      (fun id ->
        ( id,
          float_of_int (List.length (Db.deps (Db.find_exn t.db id))) /. n_route
        ))
      ids
  in
  if Telemetry.enabled t.tm then
    List.iter
      (fun (_, frac) ->
        Telemetry.observe t.tm "hoyan_traffic_loaded_rib_fraction" frac)
      loaded_fracs;
  Telemetry.finish t.tm phase_sp;
  {
    tp_subtasks = ids;
    tp_link_load = link_load;
    tp_flows = !all_flows;
    tp_durations =
      List.map (fun id -> (id, Db.duration_s (Db.find_exn t.db id))) ids;
    tp_loaded_fracs = loaded_fracs;
    tp_ec_count = ec_total;
    tp_failed = failed;
    tp_complete = failed = [];
    tp_resends = t.stats.ms_resends - resends_before;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

(** One-line summary of the monitor's work (re-sends, recoveries,
    terminal failures, chaos accounting). *)
let monitor_report (t : t) : string =
  let s = t.stats in
  Printf.sprintf
    "monitor: %d scans (%.4fs), %d re-sends, %d lease expiries, %d \
     re-uploads, %d terminal, %d stale deliveries, %.2fs modelled backoff; \
     mq: %d dropped, %d duplicated"
    s.ms_scans s.ms_scan_s s.ms_resends s.ms_lease_expired s.ms_reuploads
    s.ms_terminal s.ms_stale_msgs s.ms_backoff_s (Mq.dropped t.mq)
    (Mq.duplicated t.mq)

(* ------------------------------------------------------------------ *)
(* End-to-end time via the schedule replay                             *)
(* ------------------------------------------------------------------ *)

(** Effective per-subtask wall times (compute + modelled I/O) of a list of
    subtask ids. *)
let effective_times ?(cost = Costmodel.default) (t : t) ids =
  List.map (fun id -> Costmodel.subtask_time cost (Db.find_exn t.db id)) ids

(** End-to-end time on [servers] workers for the given subtasks, including
    the master's preparation time. *)
let phase_time ?(cost = Costmodel.default) ?(policy = Schedule.Fifo) (t : t)
    ~servers ids =
  let times = effective_times ~cost t ids in
  let prep =
    float_of_int (List.length ids) *. cost.Costmodel.master_prep_per_subtask_s
  in
  prep +. fst (Schedule.makespan ~policy ~servers times)
