(** The distributed simulation framework (Figure 3).

    A simulation task is assigned to a master server, which splits the
    inputs into disjoint subsets (subtasks), uploads each subtask's input
    to the object store, and pushes a message per subtask into the MQ.
    Working servers consume messages, load inputs, run the subtask with
    the EC technique, update the subtask DB and write results back to the
    store; the master monitors the DB and re-sends failed subtasks.

    Subtasks are executed here on the calling thread, one after another,
    with their compute time measured and their I/O accounted; the
    multi-server end-to-end time is then obtained by replaying the
    measured durations through {!Schedule} (see DESIGN.md §2 for why this
    substitution preserves the paper's scalability behaviour).  A real
    multicore execution path is provided by {!Parallel}.

    Every phase is instrumented through {!Hoyan_telemetry.Telemetry}:
    spans around the master's split/upload and each worker step, counters
    for pushes/pops/retries/bytes, and journal events for the subtask
    lifecycle.  With the default noop handle each site costs one
    branch. *)

open Hoyan_net
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Smap = Map.Make (String)

type t = {
  storage : Storage.t;
  mq : Mq.t;
  db : Db.t;
  model : Model.t;
  snapshot : string;
  fail_prob : float; (* injected worker failure probability *)
  rng : Random.State.t;
  max_attempts : int;
  tm : Telemetry.t;
}

let create ?tm ?(fail_prob = 0.) ?(seed = 42) ?(snapshot = "base")
    (model : Model.t) : t =
  {
    storage = Storage.create ();
    mq = Mq.create ();
    db = Db.create ();
    model;
    snapshot;
    fail_prob;
    rng = Random.State.make [| seed |];
    max_attempts = 3;
    tm = (match tm with Some tm -> tm | None -> Telemetry.get ());
  }

(* ------------------------------------------------------------------ *)
(* Telemetry helpers                                                   *)
(* ------------------------------------------------------------------ *)

let phase_label = function
  | Mq.Route_subtask -> "route"
  | Mq.Traffic_subtask -> "traffic"

let ev_enqueue (t : t) (msg : Mq.message) =
  if Telemetry.enabled t.tm then begin
    let phase = phase_label msg.Mq.m_kind in
    Telemetry.count t.tm ~labels:[ ("phase", phase) ]
      "hoyan_subtasks_enqueued_total" 1;
    Telemetry.event t.tm "subtask.enqueue"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("attempt", Journal.I msg.Mq.m_attempt);
      ]
  end

let ev_dequeue (t : t) (msg : Mq.message) ~attempt =
  if Telemetry.enabled t.tm then begin
    let phase = phase_label msg.Mq.m_kind in
    Telemetry.count t.tm ~labels:[ ("phase", phase) ]
      "hoyan_subtasks_dequeued_total" 1;
    Telemetry.event t.tm "subtask.dequeue"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("attempt", Journal.I attempt);
      ]
  end

(** The injected-failure path: record the failure, re-queue, count the
    retry. *)
let fail_and_retry (t : t) (msg : Mq.message) (entry : Db.entry) =
  Db.record_failure entry "worker crashed";
  Mq.push t.mq { msg with Mq.m_attempt = msg.Mq.m_attempt + 1 };
  if Telemetry.enabled t.tm then begin
    let phase = phase_label msg.Mq.m_kind in
    Telemetry.count t.tm ~labels:[ ("phase", phase) ]
      "hoyan_subtask_retries_total" 1;
    Telemetry.event t.tm "subtask.failure"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("reason", Journal.S "worker crashed");
        ("attempt", Journal.I (Db.attempts entry));
      ];
    Telemetry.event t.tm "subtask.retry"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("attempt", Journal.I (msg.Mq.m_attempt + 1));
      ]
  end

let ev_done (t : t) (msg : Mq.message) ~duration_s ~io_bytes ~io_files =
  if Telemetry.enabled t.tm then begin
    let phase = phase_label msg.Mq.m_kind in
    let labels = [ ("phase", phase) ] in
    Telemetry.count t.tm ~labels "hoyan_subtasks_completed_total" 1;
    Telemetry.count t.tm ~labels "hoyan_subtask_io_bytes_total" io_bytes;
    Telemetry.count t.tm ~labels "hoyan_subtask_io_files_total" io_files;
    Telemetry.observe t.tm ~labels "hoyan_subtask_duration_seconds" duration_s;
    Telemetry.event t.tm "subtask.done"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S phase);
        ("duration_s", Journal.F duration_s);
        ("io_bytes", Journal.I io_bytes);
        ("io_files", Journal.I io_files);
      ]
  end

let ev_hard_failure (t : t) (msg : Mq.message) reason =
  if Telemetry.enabled t.tm then
    Telemetry.event t.tm "subtask.failure"
      [
        ("id", Journal.S msg.Mq.m_id);
        ("phase", Journal.S (phase_label msg.Mq.m_kind));
        ("reason", Journal.S reason);
      ]

(* ------------------------------------------------------------------ *)
(* Route simulation phase                                              *)
(* ------------------------------------------------------------------ *)

type route_phase = {
  rp_subtasks : string list; (* subtask ids, in push order *)
  rp_rib : Route.t list; (* merged global RIB (incl. local tables) *)
  rp_durations : (string * float) list; (* measured compute seconds *)
  rp_ec_inputs : int; (* ECs actually simulated *)
  rp_total_inputs : int;
}

let range_of_rows (input_range : Ip.t * Ip.t) (rows : Route.t list) :
    Ip.t * Ip.t =
  (* widen the recorded input range with the result rows' prefixes, so
     aggregate prefixes originated inside the subtask are covered too *)
  List.fold_left
    (fun (lo, hi) (r : Route.t) ->
      let f = Prefix.first_addr r.Route.prefix
      and l = Prefix.last_addr r.Route.prefix in
      ( (if Ip.compare f lo < 0 then f else lo),
        if Ip.compare l hi > 0 then l else hi ))
    input_range rows

(** Prefixes originated by network statements anywhere in the model:
    input-independent, so they live in the shared base RIB file rather
    than in every subtask's result (which would otherwise make every
    subtask range cover the whole address space and defeat the ordering
    heuristic). *)
let network_prefixes (model : Model.t) : (Prefix.t, unit) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  Smap.iter
    (fun _ (cfg : Hoyan_config.Types.t) ->
      List.iter
        (fun (p, _) -> Hashtbl.replace tbl p ())
        cfg.Hoyan_config.Types.dc_bgp.Hoyan_config.Types.bgp_networks)
    model.Model.configs;
  tbl

let base_rib_key = "route-base.rib"

(** One worker step: consume a message and run the subtask.  Returns false
    when the queue is empty. *)
let route_worker_step (t : t) ~(use_ecs : bool)
    ~(net_prefixes : (Prefix.t, unit) Hashtbl.t) : bool =
  match Mq.pop t.mq with
  | None -> false
  | Some msg ->
      let entry = Db.find_exn t.db msg.Mq.m_id in
      let attempt = Db.start_attempt entry in
      ev_dequeue t msg ~attempt;
      (* injected worker failure: the master will re-send *)
      if
        t.fail_prob > 0.
        && Random.State.float t.rng 1.0 < t.fail_prob
        && attempt < t.max_attempts
      then begin
        fail_and_retry t msg entry;
        true
      end
      else begin
        match Storage.get t.storage ~key:msg.Mq.m_input_key with
        | Some (Storage.O_routes inputs) ->
            let sp =
              Telemetry.span t.tm
                ~args:[ ("id", msg.Mq.m_id); ("phase", "route") ]
                "worker.step"
            in
            let t0 = Unix.gettimeofday () in
            let res =
              Route_sim.run ~tm:t.tm ~use_ecs ~include_locals:false
                ~originate:false t.model ~input_routes:inputs ()
            in
            let dt = Unix.gettimeofday () -. t0 in
            let rows =
              List.filter
                (fun (r : Route.t) ->
                  not (Hashtbl.mem net_prefixes r.Route.prefix))
                res.Route_sim.rib
            in
            let result_key = msg.Mq.m_id ^ ".rib" in
            Storage.put t.storage ~key:result_key (Storage.O_rib rows);
            let input_range =
              match Db.range entry with
              | Some r -> r
              | None -> (Ip.zero Ip.Ipv4, Ip.zero Ip.Ipv4)
            in
            Db.set_range entry (Some (range_of_rows input_range rows));
            let io_bytes = List.length inputs * Storage.bytes_per_route in
            Db.complete entry ~result_key ~duration_s:dt ~io_bytes
              ~io_files:1 ();
            Telemetry.finish t.tm sp;
            ev_done t msg ~duration_s:dt ~io_bytes ~io_files:1;
            true
        | _ ->
            Db.record_failure entry "missing input object";
            ev_hard_failure t msg "missing input object";
            true
      end

(** Master + workers for the route phase (sequential execution with
    measured durations). *)
let run_route_phase ?(strategy = Split.Ordered) ?(subtasks = 100)
    ?(use_ecs = true) (t : t) ~(input_routes : Route.t list) : route_phase =
  let phase_sp =
    Telemetry.span t.tm
      ~args:[ ("inputs", string_of_int (List.length input_routes)) ]
      "route.phase"
  in
  (* master: prepare subtasks *)
  let splits =
    Telemetry.with_span t.tm "master.split" (fun () ->
        Split.split_routes ~strategy ~subtasks input_routes)
  in
  let upload_sp = Telemetry.span t.tm "master.upload" in
  let ids =
    List.mapi
      (fun i (routes, range) ->
        let id = Printf.sprintf "route-%03d" i in
        let input_key = id ^ ".in" in
        Storage.put t.storage ~key:input_key (Storage.O_routes routes);
        let entry = Db.register t.db id in
        Db.set_range entry (Some range);
        let msg =
          {
            Mq.m_id = id;
            m_kind = Mq.Route_subtask;
            m_input_key = input_key;
            m_snapshot = t.snapshot;
            m_attempt = 1;
          }
        in
        Mq.push t.mq msg;
        ev_enqueue t msg;
        id)
      splits
  in
  Telemetry.finish t.tm
    ~args:[ ("subtasks", string_of_int (List.length ids)) ]
    upload_sp;
  let net_prefixes = network_prefixes t.model in
  (* workers drain the queue *)
  while route_worker_step t ~use_ecs ~net_prefixes do
    ()
  done;
  (* the shared base RIB: routes originated by network statements and
     their propagation, independent of the input routes *)
  let base_rows =
    (Route_sim.run ~tm:t.tm ~use_ecs ~include_locals:false t.model
       ~input_routes:[] ())
      .Route_sim.rib
  in
  Storage.put t.storage ~key:base_rib_key (Storage.O_rib base_rows);
  (* master: collect.  Locally originated rows (network statements and
     their propagation) appear in every subtask's result because they do
     not depend on the subtask's inputs; the master deduplicates when
     merging. *)
  let rib =
    Telemetry.with_span t.tm "master.collect" (fun () ->
        List.concat_map
          (fun id ->
            match Db.result_key (Db.find_exn t.db id) with
            | Some key -> (
                match Storage.get t.storage ~key with
                | Some (Storage.O_rib rows) -> rows
                | _ -> [])
            | None -> [])
          ids
        |> List.rev_append base_rows
        |> List.sort_uniq Route.compare)
  in
  let locals =
    Smap.fold
      (fun _ rs acc -> List.rev_append rs acc)
      t.model.Model.local_tables []
  in
  let durations =
    List.map (fun id -> (id, Db.duration_s (Db.find_exn t.db id))) ids
  in
  Telemetry.gauge t.tm "hoyan_route_rib_rows" (float_of_int (List.length rib));
  Telemetry.finish t.tm phase_sp;
  {
    rp_subtasks = ids;
    rp_rib = rib @ locals;
    rp_durations = durations;
    rp_ec_inputs = List.length input_routes;
    rp_total_inputs = List.length input_routes;
  }

(* ------------------------------------------------------------------ *)
(* Traffic simulation phase                                            *)
(* ------------------------------------------------------------------ *)

type dep_mode =
  | Deps_ordered (* load only overlapping route subtasks' RIB files *)
  | Deps_all (* baseline: load every RIB file *)

type traffic_phase = {
  tp_subtasks : string list;
  tp_link_load : (string * string, float) Hashtbl.t;
  tp_flows : Storage.flow_summary list;
  tp_durations : (string * float) list;
  tp_loaded_fracs : (string * float) list;
      (* fraction of RIB files each subtask loaded (Figure 5d) *)
  tp_ec_count : int;
}

let traffic_worker_step (t : t) ~(route_ids : string list)
    ~(dep_mode : dep_mode) ~(use_ecs : bool) : bool =
  match Mq.pop t.mq with
  | None -> false
  | Some msg ->
      let entry = Db.find_exn t.db msg.Mq.m_id in
      let attempt = Db.start_attempt entry in
      ev_dequeue t msg ~attempt;
      if
        t.fail_prob > 0.
        && Random.State.float t.rng 1.0 < t.fail_prob
        && attempt < t.max_attempts
      then begin
        fail_and_retry t msg entry;
        true
      end
      else begin
        match Storage.get t.storage ~key:msg.Mq.m_input_key with
        | Some (Storage.O_flows flows) ->
            let sp =
              Telemetry.span t.tm
                ~args:[ ("id", msg.Mq.m_id); ("phase", "traffic") ]
                "worker.step"
            in
            (* dependency resolution via the subtask DB ranges *)
            let my_range = Db.range entry in
            let deps =
              match dep_mode with
              | Deps_all -> route_ids
              | Deps_ordered ->
                  List.filter
                    (fun rid ->
                      match (Db.range (Db.find_exn t.db rid), my_range) with
                      | Some rrange, Some frange ->
                          Split.ranges_overlap frange rrange
                      | _ -> true)
                    route_ids
            in
            Db.set_deps entry deps;
            (* load dependent RIB files, plus the shared base RIB *)
            let io_bytes = ref (List.length flows * Storage.bytes_per_flow) in
            let base_rows =
              match Storage.get t.storage ~key:base_rib_key with
              | Some (Storage.O_rib rows) ->
                  (match Storage.size_of t.storage ~key:base_rib_key with
                  | Some sz -> io_bytes := !io_bytes + sz
                  | None -> ());
                  rows
              | _ -> []
            in
            let rib =
              base_rows
              @ List.concat_map
                  (fun rid ->
                    match Db.result_key (Db.find_exn t.db rid) with
                    | Some key -> (
                        (match Storage.size_of t.storage ~key with
                        | Some sz -> io_bytes := !io_bytes + sz
                        | None -> ());
                        match Storage.get t.storage ~key with
                        | Some (Storage.O_rib rows) -> rows
                        | _ -> [])
                    | None -> [])
                  deps
            in
            let locals =
              Smap.fold
                (fun _ rs acc -> List.rev_append rs acc)
                t.model.Model.local_tables []
            in
            let t0 = Unix.gettimeofday () in
            let res =
              Traffic_sim.run ~tm:t.tm ~use_ecs t.model ~rib:(rib @ locals)
                ~flows ()
            in
            let dt = Unix.gettimeofday () -. t0 in
            let flow_summaries =
              List.map
                (fun (fr : Traffic_sim.flow_result) ->
                  {
                    Storage.fs_flow = fr.Traffic_sim.f_flow;
                    fs_paths =
                      List.map
                        (fun (p : Traffic_sim.path) ->
                          { Storage.fp_hops = p.Traffic_sim.hops;
                            fp_fraction = p.Traffic_sim.fraction })
                        fr.Traffic_sim.f_paths;
                    fs_delivered = fr.Traffic_sim.f_delivered;
                    fs_dropped = fr.Traffic_sim.f_dropped;
                    fs_looped = fr.Traffic_sim.f_looped;
                  })
                res.Traffic_sim.flow_results
            in
            let loads =
              Hashtbl.fold
                (fun k v acc -> (k, v) :: acc)
                res.Traffic_sim.link_load []
            in
            let result_key = msg.Mq.m_id ^ ".out" in
            Storage.put t.storage ~key:result_key
              (Storage.O_traffic { t_loads = loads; t_flows = flow_summaries });
            let io_files = 2 + List.length deps in
            Db.complete entry ~result_key ~duration_s:dt ~io_bytes:!io_bytes
              ~io_files ();
            Telemetry.finish t.tm sp;
            ev_done t msg ~duration_s:dt ~io_bytes:!io_bytes ~io_files;
            true
        | _ ->
            Db.record_failure entry "missing input object";
            ev_hard_failure t msg "missing input object";
            true
      end

let run_traffic_phase ?(strategy = Split.Ordered) ?(subtasks = 128)
    ?(dep_mode = Deps_ordered) ?(use_ecs = true) (t : t)
    ~(route_phase : route_phase) ~(flows : Flow.t list) : traffic_phase =
  let phase_sp =
    Telemetry.span t.tm
      ~args:[ ("flows", string_of_int (List.length flows)) ]
      "traffic.phase"
  in
  let route_ids = route_phase.rp_subtasks in
  let splits =
    Telemetry.with_span t.tm "master.split" (fun () ->
        Split.split_flows ~strategy ~subtasks flows)
  in
  let upload_sp = Telemetry.span t.tm "master.upload" in
  let ids =
    List.mapi
      (fun i (fs, range) ->
        let id = Printf.sprintf "traffic-%03d" i in
        let input_key = id ^ ".in" in
        Storage.put t.storage ~key:input_key (Storage.O_flows fs);
        let entry = Db.register t.db id in
        Db.set_range entry (Some range);
        let msg =
          {
            Mq.m_id = id;
            m_kind = Mq.Traffic_subtask;
            m_input_key = input_key;
            m_snapshot = t.snapshot;
            m_attempt = 1;
          }
        in
        Mq.push t.mq msg;
        ev_enqueue t msg;
        id)
      splits
  in
  Telemetry.finish t.tm
    ~args:[ ("subtasks", string_of_int (List.length ids)) ]
    upload_sp;
  while traffic_worker_step t ~route_ids ~dep_mode ~use_ecs do
    ()
  done;
  (* master: aggregate loads across subtasks, collect flows *)
  let link_load = Hashtbl.create 1024 in
  let all_flows = ref [] in
  let ec_total = ref 0 in
  Telemetry.with_span t.tm "master.collect" (fun () ->
      List.iter
        (fun id ->
          match Db.result_key (Db.find_exn t.db id) with
          | Some key -> (
              match Storage.get t.storage ~key with
              | Some (Storage.O_traffic { t_loads; t_flows }) ->
                  List.iter
                    (fun (k, v) ->
                      let cur =
                        Option.value (Hashtbl.find_opt link_load k) ~default:0.
                      in
                      Hashtbl.replace link_load k (cur +. v))
                    t_loads;
                  all_flows := List.rev_append t_flows !all_flows;
                  incr ec_total
              | _ -> ())
          | None -> ())
        ids);
  let n_route = float_of_int (List.length route_ids) in
  let loaded_fracs =
    List.map
      (fun id ->
        ( id,
          float_of_int (List.length (Db.deps (Db.find_exn t.db id))) /. n_route
        ))
      ids
  in
  if Telemetry.enabled t.tm then
    List.iter
      (fun (_, frac) ->
        Telemetry.observe t.tm "hoyan_traffic_loaded_rib_fraction" frac)
      loaded_fracs;
  Telemetry.finish t.tm phase_sp;
  {
    tp_subtasks = ids;
    tp_link_load = link_load;
    tp_flows = !all_flows;
    tp_durations =
      List.map (fun id -> (id, Db.duration_s (Db.find_exn t.db id))) ids;
    tp_loaded_fracs = loaded_fracs;
    tp_ec_count = !ec_total;
  }

(* ------------------------------------------------------------------ *)
(* End-to-end time via the schedule replay                             *)
(* ------------------------------------------------------------------ *)

(** Effective per-subtask wall times (compute + modelled I/O) of a list of
    subtask ids. *)
let effective_times ?(cost = Costmodel.default) (t : t) ids =
  List.map (fun id -> Costmodel.subtask_time cost (Db.find_exn t.db id)) ids

(** End-to-end time on [servers] workers for the given subtasks, including
    the master's preparation time. *)
let phase_time ?(cost = Costmodel.default) ?(policy = Schedule.Fifo) (t : t)
    ~servers ids =
  let times = effective_times ~cost t ids in
  let prep =
    float_of_int (List.length ids) *. cost.Costmodel.master_prep_per_subtask_s
  in
  prep +. fst (Schedule.makespan ~policy ~servers times)
