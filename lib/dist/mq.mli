(** The message queue between the master and the working servers (paper
    §3.2): one message per subtask, consumed by exactly one worker;
    failed subtasks are re-queued by the master.

    Mutex-protected: one instance can be shared by concurrent
    {!Parallel} domains, each message delivered to exactly one popper. *)

type kind = Route_subtask | Traffic_subtask

val kind_to_string : kind -> string

type message = {
  m_id : string;  (** subtask id, also the DB key *)
  m_kind : kind;
  m_input_key : string;  (** input file on the object store *)
  m_snapshot : string;  (** network snapshot reference *)
  m_attempt : int;
}

type t

val create : unit -> t
val push : t -> message -> unit
val pop : t -> message option
val length : t -> int
val is_empty : t -> bool

(** Messages pushed since creation (including re-sends). *)
val pushed : t -> int

(** Messages delivered to workers. *)
val consumed : t -> int

(** {2 Chaos accounting} (see {!Chaos}): counters for messages lost in
    flight or delivered twice, so fault-injection runs can assert the
    faults actually fired. *)

val note_dropped : t -> unit
val note_duplicated : t -> unit
val dropped : t -> int
val duplicated : t -> int
