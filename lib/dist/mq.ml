(** The message queue between the master and the working servers (§3.2).

    The master pushes one message per subtask (its metadata plus a
    reference to the subtask's input file on the object store); each
    message is consumed by exactly one working server listening on the
    queue.  Failed subtasks are re-queued by the master.

    All operations take the queue's mutex, so one instance can be shared
    by genuinely concurrent workers ({!Parallel} domains): a message is
    delivered to exactly one popper. *)

type kind = Route_subtask | Traffic_subtask

let kind_to_string = function
  | Route_subtask -> "route"
  | Traffic_subtask -> "traffic"

type message = {
  m_id : string; (* subtask id, also the DB key *)
  m_kind : kind;
  m_input_key : string; (* input file on the object store *)
  m_snapshot : string; (* network snapshot reference *)
  m_attempt : int;
}

type t = {
  mu : Mutex.t;
  q : message Queue.t;
  mutable pushed : int;
  mutable consumed : int;
  mutable dropped : int; (* chaos: messages lost before delivery *)
  mutable duplicated : int; (* chaos: messages delivered twice *)
}

let create () =
  {
    mu = Mutex.create ();
    q = Queue.create ();
    pushed = 0;
    consumed = 0;
    dropped = 0;
    duplicated = 0;
  }

let locked (t : t) f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let push (t : t) (m : message) =
  locked t (fun () ->
      Queue.push m t.q;
      t.pushed <- t.pushed + 1)

let pop (t : t) : message option =
  locked t (fun () ->
      match Queue.take_opt t.q with
      | Some m ->
          t.consumed <- t.consumed + 1;
          Some m
      | None -> None)

(** Chaos accounting: a push the queue never saw (the message was lost
    in flight).  Counted so chaos runs can assert the fault actually
    fired. *)
let note_dropped (t : t) = locked t (fun () -> t.dropped <- t.dropped + 1)

(** Chaos accounting: a push that was delivered twice. *)
let note_duplicated (t : t) =
  locked t (fun () -> t.duplicated <- t.duplicated + 1)

let length (t : t) = locked t (fun () -> Queue.length t.q)
let is_empty (t : t) = locked t (fun () -> Queue.is_empty t.q)
let pushed (t : t) = locked t (fun () -> t.pushed)
let consumed (t : t) = locked t (fun () -> t.consumed)
let dropped (t : t) = locked t (fun () -> t.dropped)
let duplicated (t : t) = locked t (fun () -> t.duplicated)
