(** The subtask database (paper §3.2): workers record each subtask's
    status, measured compute time and accounted I/O; the master monitors
    it and re-sends failed subtasks.  Route subtasks record the address
    range their inputs cover — the dependency test a traffic subtask
    later consults.

    Fault-tolerance bookkeeping: every attempt carries a lease deadline
    (a worker that dies mid-subtask is recovered when it expires), and
    [Terminal] is the permanent-failure state once the retry budget is
    exhausted — reported by the phase outcome contract, never silently
    dropped.

    Entries are opaque: reads and writes go through accessors, each
    protected by the entry's own mutex, so one database is safe to share
    across concurrent {!Parallel} workers. *)

open Hoyan_net

type status =
  | Pending
  | Running
  | Done
  | Failed of string  (** failed, retryable: the monitor may re-send *)
  | Terminal of string  (** permanently failed: retry budget exhausted *)

val status_to_string : status -> string

type entry
type t

val create : unit -> t

(** Register a fresh [Pending] entry under the given subtask id. *)
val register : t -> string -> entry

val find : t -> string -> entry option

(** @raise Invalid_argument on an unknown id. *)
val find_exn : t -> string -> entry

(** {2 Entry reads} *)

val status : entry -> status
val range : entry -> (Ip.t * Ip.t) option
val result_key : entry -> string option
val attempts : entry -> int

(** Messages sent for this subtask, including monitor re-sends. *)
val sends : entry -> int

(** The current attempt's lease deadline (absolute seconds). *)
val lease_deadline : entry -> float option

(** Accumulated modelled backoff delay across re-sends. *)
val backoff_s : entry -> float

(** Measured compute seconds of the last run. *)
val duration_s : entry -> float

val io_bytes : entry -> int
val io_files : entry -> int

(** ECs the last successful run actually simulated. *)
val ec_count : entry -> int

(** Traffic subtasks: the route result files loaded. *)
val deps : entry -> string list

(** {2 Entry writes} *)

val set_range : entry -> (Ip.t * Ip.t) option -> unit
val set_deps : entry -> string list -> unit

(** Mark [Running], bump the attempt counter and take a lease expiring
    [lease_s] (default 30) seconds from now; returns the new attempt
    number. *)
val start_attempt : ?lease_s:float -> entry -> int

(** Count one message send; returns the new 1-based send sequence
    number (chaos decisions key on it). *)
val bump_sends : entry -> int

(** Backdate the current lease so it is already expired — how a stalled
    worker appears to the master's monitor. *)
val expire_lease : entry -> unit

(** [Running] with a lease deadline before [now]. *)
val lease_expired : now:float -> entry -> bool

val record_failure : entry -> string -> unit

(** Permanent failure: the monitor will not re-send. *)
val mark_terminal : entry -> string -> unit

(** Back to [Pending] for a monitor re-send (counters preserved). *)
val requeue : entry -> unit

(** Accumulate a modelled backoff delay before a re-send. *)
val add_backoff : entry -> float -> unit

(** Record a finished run (measured compute, accounted I/O, the ECs
    simulated, optionally the result file's key); status becomes [Done]
    and the lease is released. *)
val complete :
  entry ->
  ?result_key:string ->
  ?ec_count:int ->
  duration_s:float ->
  io_bytes:int ->
  io_files:int ->
  unit ->
  unit

(** {2 Table-level queries} *)

val set_status : t -> string -> status -> unit
val all : t -> (string * entry) list
val count_status : t -> (status -> bool) -> int
val all_done : t -> bool

(** Everything is [Done] or [Terminal] — nothing still in flight. *)
val all_settled : t -> bool

(** The permanently-failed subtasks with their terminal reasons,
    sorted by id. *)
val terminal_failures : t -> (string * string) list
