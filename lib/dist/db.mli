(** The subtask database (paper §3.2): workers record each subtask's
    status, measured compute time and accounted I/O; the master monitors
    it and re-sends failed subtasks.  Route subtasks record the address
    range their inputs cover — the dependency test a traffic subtask
    later consults.

    Entries are opaque: reads and writes go through accessors, each
    protected by the entry's own mutex, so one database is safe to share
    across concurrent {!Parallel} workers. *)

open Hoyan_net

type status = Pending | Running | Done | Failed of string

val status_to_string : status -> string

type entry
type t

val create : unit -> t

(** Register a fresh [Pending] entry under the given subtask id. *)
val register : t -> string -> entry

val find : t -> string -> entry option

(** @raise Invalid_argument on an unknown id. *)
val find_exn : t -> string -> entry

(** {2 Entry reads} *)

val status : entry -> status
val range : entry -> (Ip.t * Ip.t) option
val result_key : entry -> string option
val attempts : entry -> int

(** Measured compute seconds of the last run. *)
val duration_s : entry -> float

val io_bytes : entry -> int
val io_files : entry -> int

(** Traffic subtasks: the route result files loaded. *)
val deps : entry -> string list

(** {2 Entry writes} *)

val set_range : entry -> (Ip.t * Ip.t) option -> unit
val set_deps : entry -> string list -> unit

(** Mark [Running] and bump the attempt counter; returns the new attempt
    number. *)
val start_attempt : entry -> int

val record_failure : entry -> string -> unit

(** Record a finished run (measured compute, accounted I/O, optionally
    the result file's key); status becomes [Done]. *)
val complete :
  entry ->
  ?result_key:string ->
  duration_s:float ->
  io_bytes:int ->
  io_files:int ->
  unit ->
  unit

(** {2 Table-level queries} *)

val set_status : t -> string -> status -> unit
val all : t -> (string * entry) list
val count_status : t -> (status -> bool) -> int
val all_done : t -> bool
