(** The distributed simulation framework (paper Figure 3).

    A master splits the inputs into subtasks, uploads each subtask's
    input to the object store and pushes one message per subtask into the
    MQ; workers consume messages, simulate, record status in the subtask
    DB and write result files back.  Failed subtasks are re-sent.

    Subtasks execute on the calling thread with their compute time
    measured; multi-server end-to-end times come from replaying the
    measured durations through {!Schedule} (see DESIGN.md §2).  A genuine
    multicore path lives in {!Parallel}. *)

open Hoyan_net

type t = {
  storage : Storage.t;
  mq : Mq.t;
  db : Db.t;
  model : Hoyan_sim.Model.t;
  snapshot : string;
  fail_prob : float;
  rng : Random.State.t;
  max_attempts : int;
  tm : Hoyan_telemetry.Telemetry.t;
}

(** [create model] builds a framework instance.  [fail_prob] injects
    worker crashes (each subtask attempt fails with this probability,
    retried up to 3 times); [snapshot] names the network snapshot in the
    subtask messages; [tm] is the telemetry handle (defaults to the
    process-global one). *)
val create :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?fail_prob:float ->
  ?seed:int ->
  ?snapshot:string ->
  Hoyan_sim.Model.t ->
  t

(** Key of the shared base RIB file (network-statement routes and their
    propagation; independent of the subtask inputs). *)
val base_rib_key : string

type route_phase = {
  rp_subtasks : string list;  (** subtask ids, in push order *)
  rp_rib : Route.t list;  (** merged global RIB (incl. local tables) *)
  rp_durations : (string * float) list;  (** measured compute seconds *)
  rp_ec_inputs : int;
  rp_total_inputs : int;
}

(** Master + workers for the route phase.  [strategy] picks the input
    ordering (the paper's ordering heuristic or the random baseline);
    [subtasks] is the split width (paper: 100). *)
val run_route_phase :
  ?strategy:Split.strategy ->
  ?subtasks:int ->
  ?use_ecs:bool ->
  t ->
  input_routes:Route.t list ->
  route_phase

type dep_mode =
  | Deps_ordered  (** load only overlapping route subtasks' RIB files *)
  | Deps_all  (** baseline: load every RIB file *)

type traffic_phase = {
  tp_subtasks : string list;
  tp_link_load : (string * string, float) Hashtbl.t;
  tp_flows : Storage.flow_summary list;
  tp_durations : (string * float) list;
  tp_loaded_fracs : (string * float) list;
      (** fraction of RIB files each subtask loaded (Figure 5d) *)
  tp_ec_count : int;
}

(** Master + workers for the traffic phase, consuming a completed route
    phase's result files (dependencies resolved through the subtask DB's
    recorded ranges; paper: 128 subtasks). *)
val run_traffic_phase :
  ?strategy:Split.strategy ->
  ?subtasks:int ->
  ?dep_mode:dep_mode ->
  ?use_ecs:bool ->
  t ->
  route_phase:route_phase ->
  flows:Flow.t list ->
  traffic_phase

(** Effective wall times (measured compute + modelled I/O) of subtasks. *)
val effective_times : ?cost:Costmodel.t -> t -> string list -> float list

(** End-to-end phase time on [servers] workers (MQ schedule replay plus
    the master's preparation time). *)
val phase_time :
  ?cost:Costmodel.t ->
  ?policy:Schedule.policy ->
  t ->
  servers:int ->
  string list ->
  float
