(** The distributed simulation framework (paper Figure 3).

    A master splits the inputs into subtasks, uploads each subtask's
    input to the object store and pushes one message per subtask into the
    MQ; workers consume messages, simulate, record status in the subtask
    DB and write result files back.  The master's monitor loop scans the
    DB between drains and re-sends failed subtasks — worker crashes,
    expired leases, lost messages and vanished objects — with exponential
    backoff until a bounded retry budget is exhausted, after which a
    subtask is [Terminal] and reported through the phase outcome contract
    ([rp_failed] / [tp_failed]): partial results are never merged
    silently.

    Failures are injected deterministically via a seeded {!Chaos} plan.

    Subtasks execute on the calling thread with their compute time
    measured; multi-server end-to-end times come from replaying the
    measured durations through {!Schedule} (see DESIGN.md §2).  A genuine
    multicore path lives in {!Parallel}. *)

open Hoyan_net

(** Counters accumulated by the master's monitor loop (mutable). *)
type monitor_stats = {
  mutable ms_scans : int;  (** monitor passes over the subtask DB *)
  mutable ms_scan_s : float;  (** wall time spent scanning *)
  mutable ms_resends : int;  (** subtasks re-sent to the MQ *)
  mutable ms_lease_expired : int;
      (** attempts reclaimed via lease expiry *)
  mutable ms_terminal : int;  (** subtasks permanently failed *)
  mutable ms_reuploads : int;
      (** inputs re-uploaded from the master's retained split *)
  mutable ms_backoff_s : float;  (** accumulated modelled backoff delay *)
  mutable ms_stale_msgs : int;  (** duplicate/stale deliveries ignored *)
}

type t = {
  storage : Storage.t;
  mq : Mq.t;
  db : Db.t;
  model : Hoyan_sim.Model.t;
  snapshot : string;
  chaos : Chaos.t;  (** seeded fault-injection plan *)
  lease_s : float;  (** per-attempt lease duration *)
  backoff_base_s : float;  (** first-retry backoff (doubles per attempt) *)
  backoff_max_s : float;
  max_attempts : int;
      (** execution attempts before a subtask goes [Terminal] *)
  inputs : (string, string * Storage.obj) Hashtbl.t;
  put_gens : (string, int) Hashtbl.t;
  mutable base_rows : Route.t list option;
  stats : monitor_stats;
  tm : Hoyan_telemetry.Telemetry.t;
}

(** [create model] builds a framework instance.  [chaos] is the fault
    plan (default: no faults); [fail_prob] is the legacy shorthand for a
    crash-only plan with the given probability and [seed].  [lease_s],
    [backoff_base_s], [backoff_max_s] and [max_attempts] parameterize
    the monitor loop; [snapshot] names the network snapshot in the
    subtask messages; [tm] is the telemetry handle (defaults to the
    process-global one). *)
val create :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?chaos:Chaos.t ->
  ?fail_prob:float ->
  ?seed:int ->
  ?lease_s:float ->
  ?backoff_base_s:float ->
  ?backoff_max_s:float ->
  ?max_attempts:int ->
  ?snapshot:string ->
  Hoyan_sim.Model.t ->
  t

(** Key of the shared base RIB file (network-statement routes and their
    propagation; independent of the subtask inputs). *)
val base_rib_key : string

(** {2 Phase outcome contract} *)

(** A permanently-failed subtask, as reported by a phase. *)
type subtask_failure = {
  sf_id : string;
  sf_reason : string;
  sf_attempts : int;
}

val failure_to_string : subtask_failure -> string

type route_phase = {
  rp_subtasks : string list;  (** subtask ids, in push order *)
  rp_rib : Route.t list;  (** merged global RIB (incl. local tables) *)
  rp_durations : (string * float) list;  (** measured compute seconds *)
  rp_ec_inputs : int;
      (** ECs actually simulated, summed over completed subtasks *)
  rp_total_inputs : int;
  rp_failed : subtask_failure list;
      (** permanently-failed subtasks; their results are NOT in [rp_rib] *)
  rp_complete : bool;  (** [rp_failed = []]: every result was merged *)
  rp_resends : int;  (** monitor re-sends during the phase *)
}

(** Master + workers for the route phase.  [strategy] picks the input
    ordering (the paper's ordering heuristic or the random baseline);
    [subtasks] is the split width (paper: 100). *)
val run_route_phase :
  ?strategy:Split.strategy ->
  ?subtasks:int ->
  ?use_ecs:bool ->
  t ->
  input_routes:Route.t list ->
  route_phase

type dep_mode =
  | Deps_ordered  (** load only overlapping route subtasks' RIB files *)
  | Deps_all  (** baseline: load every RIB file *)

type traffic_phase = {
  tp_subtasks : string list;
  tp_link_load : (string * string, float) Hashtbl.t;
  tp_flows : Storage.flow_summary list;
  tp_durations : (string * float) list;
  tp_loaded_fracs : (string * float) list;
      (** fraction of RIB files each subtask loaded (Figure 5d) *)
  tp_ec_count : int;
      (** ECs actually simulated, summed over completed subtasks *)
  tp_failed : subtask_failure list;
  tp_complete : bool;
  tp_resends : int;
}

(** Master + workers for the traffic phase, consuming a completed route
    phase's result files (dependencies resolved through the subtask DB's
    recorded ranges; paper: 128 subtasks). *)
val run_traffic_phase :
  ?strategy:Split.strategy ->
  ?subtasks:int ->
  ?dep_mode:dep_mode ->
  ?use_ecs:bool ->
  t ->
  route_phase:route_phase ->
  flows:Flow.t list ->
  traffic_phase

(** Widen a subtask's recorded input range with its result rows; with no
    recorded range, seed from the first row's own prefix (never from a
    v4-zero pair, which would be the wrong family for IPv6-only
    subtasks); with neither, stay [None]. *)
val seed_range :
  (Ip.t * Ip.t) option -> Route.t list -> (Ip.t * Ip.t) option

(** One-line summary of the monitor's work (re-sends, lease expiries,
    terminal failures, chaos accounting). *)
val monitor_report : t -> string

(** Effective wall times (measured compute + modelled I/O) of subtasks. *)
val effective_times : ?cost:Costmodel.t -> t -> string list -> float list

(** End-to-end phase time on [servers] workers (MQ schedule replay plus
    the master's preparation time). *)
val phase_time :
  ?cost:Costmodel.t ->
  ?policy:Schedule.policy ->
  t ->
  servers:int ->
  string list ->
  float
