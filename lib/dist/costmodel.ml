(** Cost model converting measured subtask work into end-to-end time.

    Compute time is {e measured} (each subtask really runs); the I/O of
    loading inputs and RIB result files from the object store is
    {e modelled} from the accounted bytes/files, because the in-process
    store has no real network.  The model is deliberately simple — a
    per-file latency plus throughput-limited transfer — since the paper's
    point is the relative cost of loading all RIB files versus a third of
    them (Figure 5b/5d), not absolute OSS numbers. *)

type t = {
  io_latency_per_file_s : float; (* per-object request latency *)
  io_bytes_per_s : float; (* object store throughput per worker *)
  master_prep_per_subtask_s : float; (* subtask preparation by the master *)
}

(* The defaults are calibrated to the scaled-down workloads: subtask
   compute here is ~100x smaller than production's, so the object-store
   costs are scaled by the same factor to preserve the paper's
   I/O-to-compute ratio (otherwise loading all RIB files would dwarf the
   simulation and exaggerate Figure 5(b)'s baseline penalty). *)
let default =
  {
    io_latency_per_file_s = 0.0001;
    io_bytes_per_s = 5e9;
    master_prep_per_subtask_s = 0.0005;
  }

(** Production-like object-store costs, for sensitivity runs. *)
let production_like =
  {
    io_latency_per_file_s = 0.02;
    io_bytes_per_s = 500e6;
    master_prep_per_subtask_s = 0.002;
  }

let io_time (t : t) ~bytes ~files =
  (float_of_int files *. t.io_latency_per_file_s)
  +. (float_of_int bytes /. t.io_bytes_per_s)

(** Effective wall time of one subtask on a worker. *)
let subtask_time (t : t) (e : Db.entry) =
  Db.duration_s e +. io_time t ~bytes:(Db.io_bytes e) ~files:(Db.io_files e)

(* ------------------------------------------------------------------ *)
(* Chunked-claim planning for the domain-parallel executor             *)
(* ------------------------------------------------------------------ *)

(** Estimated relative cost of a route subtask {e before} it has run:
    the modelled master prep and input I/O plus compute proportional to
    the route count.  Only ratios matter — {!chunk_plan} uses these to
    seed balanced initial claim ranges; the fixed per-subtask terms keep
    many tiny subtasks from looking free. *)
let est_route_subtask (t : t) ~(routes : int) : float =
  t.master_prep_per_subtask_s
  +. io_time t ~bytes:(routes * 128) ~files:1
  +. (1e-5 *. float_of_int routes)

(** Partition items [0..n) into [workers] contiguous ranges of roughly
    equal total weight.  Returns exactly [workers] ranges [(lo, hi)]
    (some possibly empty) covering [0..n) in order; {!Parallel.map}
    seeds its chunked-claim scheduler with them and work-stealing
    corrects any estimation error at runtime. *)
let chunk_plan ~(workers : int) (weights : float array) : (int * int) array =
  let n = Array.length weights in
  let workers = max 1 workers in
  let total = Array.fold_left ( +. ) 0. weights in
  if n = 0 || total <= 0. then
    (* degenerate weights: even split by count *)
    Array.init workers (fun w -> (n * w / workers, n * (w + 1) / workers))
  else begin
    let ranges = Array.make workers (0, 0) in
    let i = ref 0 and acc = ref 0. in
    for w = 0 to workers - 1 do
      let lo = !i in
      if w = workers - 1 then i := n
      else begin
        let target = total *. float_of_int (w + 1) /. float_of_int workers in
        while !i < n && !acc < target do
          acc := !acc +. weights.(!i);
          incr i
        done
      end;
      ranges.(w) <- (lo, !i)
    done;
    ranges
  end
