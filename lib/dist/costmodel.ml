(** Cost model converting measured subtask work into end-to-end time.

    Compute time is {e measured} (each subtask really runs); the I/O of
    loading inputs and RIB result files from the object store is
    {e modelled} from the accounted bytes/files, because the in-process
    store has no real network.  The model is deliberately simple — a
    per-file latency plus throughput-limited transfer — since the paper's
    point is the relative cost of loading all RIB files versus a third of
    them (Figure 5b/5d), not absolute OSS numbers. *)

type t = {
  io_latency_per_file_s : float; (* per-object request latency *)
  io_bytes_per_s : float; (* object store throughput per worker *)
  master_prep_per_subtask_s : float; (* subtask preparation by the master *)
}

(* The defaults are calibrated to the scaled-down workloads: subtask
   compute here is ~100x smaller than production's, so the object-store
   costs are scaled by the same factor to preserve the paper's
   I/O-to-compute ratio (otherwise loading all RIB files would dwarf the
   simulation and exaggerate Figure 5(b)'s baseline penalty). *)
let default =
  {
    io_latency_per_file_s = 0.0001;
    io_bytes_per_s = 5e9;
    master_prep_per_subtask_s = 0.0005;
  }

(** Production-like object-store costs, for sensitivity runs. *)
let production_like =
  {
    io_latency_per_file_s = 0.02;
    io_bytes_per_s = 500e6;
    master_prep_per_subtask_s = 0.002;
  }

let io_time (t : t) ~bytes ~files =
  (float_of_int files *. t.io_latency_per_file_s)
  +. (float_of_int bytes /. t.io_bytes_per_s)

(** Effective wall time of one subtask on a worker. *)
let subtask_time (t : t) (e : Db.entry) =
  Db.duration_s e +. io_time t ~bytes:(Db.io_bytes e) ~files:(Db.io_files e)
