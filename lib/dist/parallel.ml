(** Real multicore execution of subtasks (OCaml 5 domains).

    The deterministic scheduler ({!Schedule}) is what the benchmarks use
    to obtain multi-server curves; this module additionally provides a
    {e real} parallel executor so the framework can be exercised with
    genuinely concurrent workers on one machine.  The compiled model is
    read-only during simulation, so workers share it; the work list is
    distributed via an atomic index. *)

module Telemetry = Hoyan_telemetry.Telemetry

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* A worker's claim range [lo, hi) packed into one atomic int (lo in the
   high bits, hi in the low 30), so claiming and stealing are single-word
   compare-and-set operations. *)
let range_bits = 30
let range_mask = (1 lsl range_bits) - 1
let pack_range lo hi = (lo lsl range_bits) lor hi
let range_lo v = v lsr range_bits
let range_hi v = v land range_mask

(** Parallel map preserving order.  [f] must only read shared state.
    If [f] raises, one raised exception is re-raised on the caller after
    all domains have been joined.

    Scheduling is chunked work-stealing rather than a single shared
    counter: each worker starts with a contiguous claim range sized by
    {!Costmodel.chunk_plan} from the optional per-item [weights]
    (defaulting to uniform), claims chunks from the front of its own
    range, and when drained steals the back half of the fullest peer
    range.  Workers therefore touch the shared atomics once per chunk
    instead of once per item, and estimation error in the weights is
    corrected at runtime by the steals.

    Each worker domain runs under one telemetry span ([parallel.domain],
    tagged with the worker index and the number of items it claimed);
    spans are recorded into per-domain shards, so tracing is safe across
    domains. *)
let map ?tm ?(domains = default_domains ()) ?weights (f : 'a -> 'b)
    (xs : 'a list) : 'b list =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      assert (n <= range_mask);
      let workers = max 1 (min domains n) in
      let weights =
        match weights with
        | Some w when Array.length w = n -> w
        | _ -> Array.make n 1.
      in
      let ranges =
        Costmodel.chunk_plan ~workers weights
        |> Array.map (fun (lo, hi) -> Atomic.make (pack_range lo hi))
      in
      let results = Array.make n None in
      let failure = Atomic.make None in
      (* claim a chunk from the front of worker [w]'s own range *)
      let rec claim_own w =
        let v = Atomic.get ranges.(w) in
        let lo = range_lo v and hi = range_hi v in
        if lo >= hi then None
        else
          (* an eighth of what's left: small enough to rebalance via
             steals, large enough to amortize the compare-and-set *)
          let c = max 1 ((hi - lo) / 8) in
          if Atomic.compare_and_set ranges.(w) v (pack_range (lo + c) hi)
          then Some (lo, lo + c)
          else claim_own w
      in
      (* steal the back half of the fullest peer range into our own;
         [`Retry] on a lost race, [`Empty] when every range is drained *)
      let steal w =
        let best = ref (-1) and best_len = ref 0 in
        for o = 0 to workers - 1 do
          if o <> w then begin
            let v = Atomic.get ranges.(o) in
            let len = range_hi v - range_lo v in
            if len > !best_len then begin
              best := o;
              best_len := len
            end
          end
        done;
        if !best < 0 then `Empty
        else
          let o = !best in
          let v = Atomic.get ranges.(o) in
          let lo = range_lo v and hi = range_hi v in
          if lo >= hi then `Retry
          else
            let mid = lo + ((hi - lo) / 2) in
            if Atomic.compare_and_set ranges.(o) v (pack_range lo mid)
            then begin
              (* our own range is drained and only its owner refills it,
                 so a plain store is race-free *)
              Atomic.set ranges.(w) (pack_range mid hi);
              `Stolen
            end
            else `Retry
      in
      let worker wid () =
        let sp =
          if Telemetry.enabled tm then
            Telemetry.span tm
              ~args:[ ("worker", string_of_int wid) ]
              "parallel.domain"
          else Hoyan_telemetry.Trace.null_span
        in
        let claimed = ref 0 and steals = ref 0 in
        let run_chunk lo hi =
          for i = lo to hi - 1 do
            (* stop computing once any worker has failed *)
            if Atomic.get failure = None then begin
              incr claimed;
              match f arr.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  ignore (Atomic.compare_and_set failure None (Some (e, bt)))
            end
          done
        in
        let rec loop () =
          if Atomic.get failure = None then
            match claim_own wid with
            | Some (lo, hi) ->
                run_chunk lo hi;
                loop ()
            | None -> (
                match steal wid with
                | `Stolen ->
                    incr steals;
                    loop ()
                | `Retry ->
                    Domain.cpu_relax ();
                    loop ()
                | `Empty -> ())
        in
        loop ();
        if Telemetry.enabled tm then begin
          Telemetry.finish tm
            ~args:[ ("items", string_of_int !claimed) ]
            sp;
          Telemetry.count tm "hoyan_parallel_items_total" !claimed;
          if !steals > 0 then
            Telemetry.count tm "hoyan_parallel_steals_total" !steals
        end
      in
      let spawned =
        List.init (workers - 1) (fun i ->
            Domain.spawn (fun () -> worker (i + 1) ()))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.to_list results
          |> List.map (function Some v -> v | None -> assert false)

(** The (device, vrf, prefix) universe a route phase can produce rows
    over: topology devices, every vrf named by a config or a route, and
    the input/local/network/aggregate prefixes.  Built by the
    coordinator before domains spawn; routes outside the universe (none
    in practice) fall back to {!Rib.Arena}'s structural overflow path. *)
let route_key_ctx (model : Hoyan_sim.Model.t)
    ~(input_routes : Hoyan_net.Route.t list) : Hoyan_net.Rib.Key.ctx =
  let module M = Hoyan_sim.Model in
  let module Route = Hoyan_net.Route in
  let module Types = Hoyan_config.Types in
  let locals =
    M.Smap.fold (fun _ rs acc -> List.rev_append rs acc) model.M.local_tables
      []
  in
  let devices = ref [] and vrfs = ref [ "global"; "default" ] in
  let prefixes = ref [] in
  List.iter
    (fun (d : Hoyan_net.Topology.device) ->
      devices := d.Hoyan_net.Topology.name :: !devices)
    (Hoyan_net.Topology.devices model.M.topo);
  let add_route (r : Route.t) =
    devices := r.Route.device :: !devices;
    vrfs := r.Route.vrf :: !vrfs;
    prefixes := r.Route.prefix :: !prefixes
  in
  List.iter add_route input_routes;
  List.iter add_route locals;
  M.Smap.iter
    (fun _ (cfg : Types.t) ->
      let bgp = cfg.Types.dc_bgp in
      List.iter
        (fun (nb : Types.neighbor) -> vrfs := nb.Types.nb_vrf :: !vrfs)
        bgp.Types.bgp_neighbors;
      List.iter
        (fun (p, v) ->
          prefixes := p :: !prefixes;
          vrfs := v :: !vrfs)
        bgp.Types.bgp_networks;
      List.iter
        (fun (a : Types.aggregate) ->
          prefixes := a.Types.ag_prefix :: !prefixes;
          vrfs := a.Types.ag_vrf :: !vrfs)
        bgp.Types.bgp_aggregates;
      List.iter
        (fun (v : Types.vrf_def) -> vrfs := v.Types.vd_name :: !vrfs)
        bgp.Types.bgp_vrfs;
      List.iter
        (fun (s : Types.static_route) -> vrfs := s.Types.st_vrf :: !vrfs)
        cfg.Types.dc_statics)
    model.M.configs;
  Hoyan_net.Rib.Key.make ~devices:!devices ~vrfs:!vrfs ~prefixes:!prefixes

(** Run the route subtasks of a split in parallel and return the merged
    global RIB (plus local tables).  Equivalent to
    {!Framework.run_route_phase} but with real concurrency; used by the
    distributed-vs-centralized equivalence tests and the parallel bench.

    Each worker fills a compact {!Rib.Arena} (sorted inside the worker
    domain) and the coordinator merges arenas with a sorted merge, so
    the result is byte-identical to concatenating every subtask RIB and
    running [List.sort_uniq Route.compare].  The base run (origination,
    empty input) is work item 0 rather than a pre-pass, so it overlaps
    with the subtask workers instead of serializing in front of them. *)
let route_phase_rib ?tm ?(domains = default_domains ()) ?(use_ecs = true)
    ?(strategy = Split.Ordered) ?(subtasks = 32)
    (model : Hoyan_sim.Model.t) ~(input_routes : Hoyan_net.Route.t list) :
    Hoyan_net.Route.t list =
  let module Rib = Hoyan_net.Rib in
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let gc0 = Gc.quick_stat () in
  let sp = Telemetry.span tm "parallel.route_phase" in
  let splits = Split.split_routes ~strategy ~subtasks input_routes in
  let ctx = route_key_ctx model ~input_routes in
  let run_subtask = function
    | `Base ->
        (* origination + empty input: what the seed computed serially
           before spawning workers *)
        Rib.Arena.of_routes ctx
          (Hoyan_sim.Route_sim.run ~tm ~use_ecs ~include_locals:false model
             ~input_routes:[] ())
            .Hoyan_sim.Route_sim.rib
    | `Chunk routes ->
        Rib.Arena.of_routes ctx
          (Hoyan_sim.Route_sim.run ~tm ~use_ecs ~include_locals:false
             ~originate:false model ~input_routes:routes ())
            .Hoyan_sim.Route_sim.rib
  in
  let items = `Base :: List.map (fun (routes, _range) -> `Chunk routes) splits in
  let cm = Costmodel.default in
  let weights =
    Array.of_list
      (List.map
         (function
           | `Base ->
               (* origination cost scales with the device-local tables *)
               Costmodel.est_route_subtask cm
                 ~routes:
                   (Hoyan_sim.Model.Smap.fold
                      (fun _ rs n -> n + List.length rs)
                      model.Hoyan_sim.Model.local_tables 0)
           | `Chunk routes ->
               Costmodel.est_route_subtask cm ~routes:(List.length routes))
         items)
  in
  let arenas = map ~tm ~domains ~weights run_subtask items in
  let rib = Rib.Arena.merge arenas in
  Telemetry.finish tm sp;
  let gc1 = Gc.quick_stat () in
  if Telemetry.enabled tm then begin
    Telemetry.count tm "hoyan_gc_minor_collections_total"
      (gc1.Gc.minor_collections - gc0.Gc.minor_collections);
    Telemetry.count tm "hoyan_gc_major_collections_total"
      (gc1.Gc.major_collections - gc0.Gc.major_collections);
    Telemetry.count tm "hoyan_gc_promoted_words_total"
      (int_of_float (gc1.Gc.promoted_words -. gc0.Gc.promoted_words))
  end;
  let locals =
    Hoyan_sim.Model.Smap.fold
      (fun _ rs acc -> List.rev_append rs acc)
      model.Hoyan_sim.Model.local_tables []
  in
  rib @ locals

(** Domain-parallel traffic phase.

    Flows are sharded with the §3.2 ordering heuristic (sorted by
    destination, contiguous shards — each shard's walks touch few FIB
    regions); the compiled model and the FIB tries are built once and
    shared read-only across domains; each shard accumulates its own
    link-load table and the per-shard results are merged in shard order,
    so the output is a deterministic function of the inputs — identical
    whatever the domain count (including [domains = 1]). *)
let traffic_phase ?tm ?(domains = default_domains ())
    ?(strategy = Split.Ordered) ?(subtasks = 32) ?(use_ecs = true)
    (model : Hoyan_sim.Model.t) ~(rib : Hoyan_net.Route.t list)
    ~(flows : Hoyan_net.Flow.t list) () : Hoyan_sim.Traffic_sim.result =
  let module T = Hoyan_sim.Traffic_sim in
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let sp = Telemetry.span tm "parallel.traffic_phase" in
  let fibs =
    Telemetry.with_span tm "traffic.build_fibs" (fun () -> T.build_fibs rib)
  in
  let ecx = T.ec_ctx model fibs in
  let shards = Split.split_flows ~strategy ~subtasks flows in
  let outs =
    map ~tm ~domains
      (fun (fs, _range) ->
        T.run ~tm ~use_ecs ~fibs ~ecx model ~rib:[] ~flows:fs ())
      shards
  in
  Telemetry.finish tm sp;
  (* merge in shard order: link loads sum associatively per shard table,
     flow results concatenate *)
  let link_load = Hashtbl.create 1024 in
  List.iter
    (fun (o : T.result) ->
      Hashtbl.iter
        (fun k v ->
          let cur = Option.value (Hashtbl.find_opt link_load k) ~default:0. in
          Hashtbl.replace link_load k (cur +. v))
        o.T.link_load)
    outs;
  let flow_results =
    List.concat_map (fun (o : T.result) -> o.T.flow_results) outs
  in
  let ec_count = List.fold_left (fun n (o : T.result) -> n + o.T.ec_count) 0 outs in
  let flow_count =
    List.fold_left (fun n (o : T.result) -> n + o.T.flow_count) 0 outs
  in
  {
    T.flow_results;
    link_load;
    flow_count;
    ec_count;
    compression =
      (if ec_count = 0 then 1.0
       else float_of_int (List.length flows) /. float_of_int ec_count);
  }
