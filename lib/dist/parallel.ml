(** Real multicore execution of subtasks (OCaml 5 domains).

    The deterministic scheduler ({!Schedule}) is what the benchmarks use
    to obtain multi-server curves; this module additionally provides a
    {e real} parallel executor so the framework can be exercised with
    genuinely concurrent workers on one machine.  The compiled model is
    read-only during simulation, so workers share it; the work list is
    distributed via an atomic index. *)

module Telemetry = Hoyan_telemetry.Telemetry

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(** Parallel map preserving order.  [f] must only read shared state.
    If [f] raises, the first exception (by claim order) is re-raised on
    the caller after all domains have been joined.

    Each worker domain runs under one telemetry span ([parallel.domain],
    tagged with the worker index and the number of items it claimed);
    spans are recorded into per-domain shards, so tracing is safe across
    domains. *)
let map ?tm ?(domains = default_domains ()) (f : 'a -> 'b) (xs : 'a list) :
    'b list =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker wid () =
        let sp =
          if Telemetry.enabled tm then
            Telemetry.span tm
              ~args:[ ("worker", string_of_int wid) ]
              "parallel.domain"
          else Hoyan_telemetry.Trace.null_span
        in
        let claimed = ref 0 in
        let rec loop () =
          (* stop claiming work once any worker has failed *)
          if Atomic.get failure = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              incr claimed;
              (match f arr.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  let bt = Printexc.get_raw_backtrace () in
                  ignore (Atomic.compare_and_set failure None (Some (e, bt))));
              loop ()
            end
          end
        in
        loop ();
        if Telemetry.enabled tm then begin
          Telemetry.finish tm
            ~args:[ ("items", string_of_int !claimed) ]
            sp;
          Telemetry.count tm "hoyan_parallel_items_total" !claimed
        end
      in
      let spawned =
        List.init (min domains n - 1) (fun i ->
            Domain.spawn (fun () -> worker (i + 1) ()))
      in
      worker 0 ();
      List.iter Domain.join spawned;
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.to_list results
          |> List.map (function Some v -> v | None -> assert false)

(** Run the route subtasks of a split in parallel and return the merged
    global RIB (plus local tables).  Equivalent to
    {!Framework.run_route_phase} but with real concurrency; used by the
    distributed-vs-centralized equivalence tests and the parallel bench. *)
let route_phase_rib ?tm ?(domains = default_domains ()) ?(use_ecs = true)
    ?(strategy = Split.Ordered) ?(subtasks = 32)
    (model : Hoyan_sim.Model.t) ~(input_routes : Hoyan_net.Route.t list) :
    Hoyan_net.Route.t list =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let sp = Telemetry.span tm "parallel.route_phase" in
  let splits = Split.split_routes ~strategy ~subtasks input_routes in
  let base_rows =
    (Hoyan_sim.Route_sim.run ~tm ~use_ecs ~include_locals:false model
       ~input_routes:[] ())
      .Hoyan_sim.Route_sim.rib
  in
  let ribs =
    base_rows
    :: map ~tm ~domains
         (fun (routes, _range) ->
           (Hoyan_sim.Route_sim.run ~tm ~use_ecs ~include_locals:false
              ~originate:false model ~input_routes:routes ())
             .Hoyan_sim.Route_sim.rib)
         splits
  in
  Telemetry.finish tm sp;
  let locals =
    Hoyan_sim.Model.Smap.fold
      (fun _ rs acc -> List.rev_append rs acc)
      model.Hoyan_sim.Model.local_tables []
  in
  (List.concat ribs |> List.sort_uniq Hoyan_net.Route.compare) @ locals

(** Domain-parallel traffic phase.

    Flows are sharded with the §3.2 ordering heuristic (sorted by
    destination, contiguous shards — each shard's walks touch few FIB
    regions); the compiled model and the FIB tries are built once and
    shared read-only across domains; each shard accumulates its own
    link-load table and the per-shard results are merged in shard order,
    so the output is a deterministic function of the inputs — identical
    whatever the domain count (including [domains = 1]). *)
let traffic_phase ?tm ?(domains = default_domains ())
    ?(strategy = Split.Ordered) ?(subtasks = 32) ?(use_ecs = true)
    (model : Hoyan_sim.Model.t) ~(rib : Hoyan_net.Route.t list)
    ~(flows : Hoyan_net.Flow.t list) () : Hoyan_sim.Traffic_sim.result =
  let module T = Hoyan_sim.Traffic_sim in
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let sp = Telemetry.span tm "parallel.traffic_phase" in
  let fibs =
    Telemetry.with_span tm "traffic.build_fibs" (fun () -> T.build_fibs rib)
  in
  let ecx = T.ec_ctx model fibs in
  let shards = Split.split_flows ~strategy ~subtasks flows in
  let outs =
    map ~tm ~domains
      (fun (fs, _range) ->
        T.run ~tm ~use_ecs ~fibs ~ecx model ~rib:[] ~flows:fs ())
      shards
  in
  Telemetry.finish tm sp;
  (* merge in shard order: link loads sum associatively per shard table,
     flow results concatenate *)
  let link_load = Hashtbl.create 1024 in
  List.iter
    (fun (o : T.result) ->
      Hashtbl.iter
        (fun k v ->
          let cur = Option.value (Hashtbl.find_opt link_load k) ~default:0. in
          Hashtbl.replace link_load k (cur +. v))
        o.T.link_load)
    outs;
  let flow_results =
    List.concat_map (fun (o : T.result) -> o.T.flow_results) outs
  in
  let ec_count = List.fold_left (fun n (o : T.result) -> n + o.T.ec_count) 0 outs in
  let flow_count =
    List.fold_left (fun n (o : T.result) -> n + o.T.flow_count) 0 outs
  in
  {
    T.flow_results;
    link_load;
    flow_count;
    ec_count;
    compression =
      (if ec_count = 0 then 1.0
       else float_of_int (List.length flows) /. float_of_int ec_count);
  }
