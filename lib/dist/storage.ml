(** The cloud object storage used by the distributed framework (§3.2).

    Each subtask's input is uploaded as a separate file; workers load
    their inputs (and, for traffic subtasks, the RIB result files of the
    route subtasks they depend on) and write their results back.  In this
    reproduction the store is in-memory but all transfers are accounted in
    bytes so the cost model can convert them into simulated I/O time —
    which is exactly what the ordering heuristic of §3.2 optimizes.

    All operations (including the read/write accounting) take the
    store's mutex, so one instance can be shared by concurrent
    {!Parallel} workers. *)

open Hoyan_net

(** A delivered flow path with the volume fraction taking it. *)
type flow_path = { fp_hops : string list; fp_fraction : float }

type flow_summary = {
  fs_flow : Flow.t;
  fs_paths : flow_path list;
  fs_delivered : float;
  fs_dropped : float;
  fs_looped : float;
}

type obj =
  | O_routes of Route.t list (* a route subtask's input *)
  | O_flows of Flow.t list (* a traffic subtask's input *)
  | O_rib of Route.t list (* a route subtask's result (RIB rows) *)
  | O_traffic of {
      t_loads : ((string * string) * float) list;
      t_flows : flow_summary list;
    }

(* Approximate serialized sizes, for I/O accounting. *)
let bytes_per_route = 150
let bytes_per_flow = 60
let bytes_per_load_entry = 40

let obj_size = function
  | O_routes rs | O_rib rs -> List.length rs * bytes_per_route
  | O_flows fs -> List.length fs * bytes_per_flow
  | O_traffic { t_loads; t_flows } ->
      (List.length t_loads * bytes_per_load_entry)
      + List.fold_left
          (fun n (f : flow_summary) ->
            n + bytes_per_flow + (List.length f.fs_paths * 32))
          0 t_flows

(** Accumulated transfer accounting (an immutable snapshot). *)
type stats = {
  bytes_written : int;
  bytes_read : int;
  files_written : int;
  files_read : int;
}

type t = {
  mu : Mutex.t;
  objects : (string, obj) Hashtbl.t;
  mutable st : stats;
}

let create () =
  {
    mu = Mutex.create ();
    objects = Hashtbl.create 256;
    st =
      { bytes_written = 0; bytes_read = 0; files_written = 0; files_read = 0 };
  }

let locked (t : t) f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let put (t : t) ~key (o : obj) =
  locked t (fun () ->
      Hashtbl.replace t.objects key o;
      t.st <-
        {
          t.st with
          bytes_written = t.st.bytes_written + obj_size o;
          files_written = t.st.files_written + 1;
        })

let get (t : t) ~key : obj option =
  locked t (fun () ->
      match Hashtbl.find_opt t.objects key with
      | Some o ->
          t.st <-
            {
              t.st with
              bytes_read = t.st.bytes_read + obj_size o;
              files_read = t.st.files_read + 1;
            };
          Some o
      | None -> None)

(** Remove an object (no accounting: the data vanishes rather than
    transfers).  Used by chaos injection to model object loss and by
    tests that delete a result file out from under the master. *)
let delete (t : t) ~key = locked t (fun () -> Hashtbl.remove t.objects key)

let size_of (t : t) ~key =
  locked t (fun () -> Option.map obj_size (Hashtbl.find_opt t.objects key))

let mem (t : t) ~key = locked t (fun () -> Hashtbl.mem t.objects key)

let keys (t : t) =
  locked t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.objects [])

let stats (t : t) = locked t (fun () -> t.st)
