(** Seeded deterministic fault injection for the distributed framework.

    The paper's framework is fault-tolerant by design: the master
    monitors the subtask DB and re-sends failed subtasks (§3, Figure 3).
    Exercising that machinery needs failures that are {e reproducible} —
    a CI run and a local run with the same seed must inject the same
    faults at the same points.  So instead of drawing from a shared RNG
    (whose stream depends on call order), every injection site asks a
    pure decision function keyed by (seed, site, subtask/object key,
    sequence number): the same plan applied to the same workload always
    strikes the same victims, whatever the execution interleaving.

    Sites:
    - [Crash]: the worker dies between dequeue and completion (the
      original [fail_prob] injection).
    - [Storage_loss]: an uploaded object is lost after the put (the
      worker's get then misses).
    - [Mq_drop]: a pushed message never arrives.
    - [Mq_dup]: a pushed message is delivered twice.
    - [Stall]: the worker wedges mid-subtask and never updates the DB;
      modelled as an attempt whose lease has already expired by the time
      the master's monitor scans.

    [lose_always] / [lose_first] target specific object keys (every put
    lost / only the first put lost) for regression tests that need a
    named victim rather than a probabilistic one. *)

type site = Crash | Storage_loss | Mq_drop | Mq_dup | Stall

let site_label = function
  | Crash -> "crash"
  | Storage_loss -> "storage_loss"
  | Mq_drop -> "mq_drop"
  | Mq_dup -> "mq_dup"
  | Stall -> "stall"

type t = {
  c_seed : int;
  c_crash_prob : float;
  c_storage_loss_prob : float;
  c_mq_drop_prob : float;
  c_mq_dup_prob : float;
  c_stall_prob : float;
  c_stall_s : float; (* modelled duration of a stalled attempt *)
  c_lose_always : string list; (* object keys: every put is lost *)
  c_lose_first : string list; (* object keys: only the first put is lost *)
}

let none =
  {
    c_seed = 0;
    c_crash_prob = 0.;
    c_storage_loss_prob = 0.;
    c_mq_drop_prob = 0.;
    c_mq_dup_prob = 0.;
    c_stall_prob = 0.;
    c_stall_s = 120.;
    c_lose_always = [];
    c_lose_first = [];
  }

let make ?(seed = 42) ?(crash_prob = 0.) ?(storage_loss_prob = 0.)
    ?(mq_drop_prob = 0.) ?(mq_dup_prob = 0.) ?(stall_prob = 0.)
    ?(stall_s = 120.) ?(lose_always = []) ?(lose_first = []) () : t =
  {
    c_seed = seed;
    c_crash_prob = crash_prob;
    c_storage_loss_prob = storage_loss_prob;
    c_mq_drop_prob = mq_drop_prob;
    c_mq_dup_prob = mq_dup_prob;
    c_stall_prob = stall_prob;
    c_stall_s = stall_s;
    c_lose_always = lose_always;
    c_lose_first = lose_first;
  }

let is_none (t : t) =
  t.c_crash_prob = 0. && t.c_storage_loss_prob = 0. && t.c_mq_drop_prob = 0.
  && t.c_mq_dup_prob = 0. && t.c_stall_prob = 0. && t.c_lose_always = []
  && t.c_lose_first = []

let prob (t : t) = function
  | Crash -> t.c_crash_prob
  | Storage_loss -> t.c_storage_loss_prob
  | Mq_drop -> t.c_mq_drop_prob
  | Mq_dup -> t.c_mq_dup_prob
  | Stall -> t.c_stall_prob

(* FNV-1a-style mixing over the site label, the key and the sequence
   number; 63-bit native ints, so the constants fit.  The multiply only
   carries entropy upward, so each step also folds the high bits back
   down ([lxor (lsr 27)]) — without it, the final small input (the
   sequence number) would only wiggle the low bits and fault decisions
   would be near-identical across attempts.  Not cryptographic — just a
   stable, well-spread hash that does not depend on OCaml's
   [Hashtbl.hash] internals. *)
let mix h k =
  let h = (h lxor k) * 0x100000001b3 land max_int in
  h lxor (h lsr 27)

(* final avalanche: two more multiply/fold rounds, then sample the HIGH
   30 bits (best mixed by the multiplies) as a float in [0, 1) *)
let finalize h =
  let h = h * 0x1b873593 land max_int in
  let h = h lxor (h lsr 31) in
  let h = h * 0x100000001b3 land max_int in
  float_of_int ((h lsr 32) land 0x3FFFFFFF) /. float_of_int 0x40000000

let hash01 (t : t) ~(site : site) ~(key : string) ~(seq : int) : float =
  let h = ref (mix 0x1cbf29ce (t.c_seed + 0x5e3779b9)) in
  String.iter (fun c -> h := mix !h (Char.code c)) (site_label site);
  h := mix !h 0xff;
  String.iter (fun c -> h := mix !h (Char.code c)) key;
  h := mix !h (seq + 1);
  finalize !h

(** Does the fault at [site] strike [key] on its [seq]-th occurrence?
    Pure: same plan, same arguments — same answer. *)
let strikes (t : t) ~(site : site) ~(key : string) ~(seq : int) : bool =
  let p = prob t site in
  p > 0. && hash01 t ~site ~key ~seq < p

(** Is the [seq]-th put of object [key] lost?  Combines the targeted
    victim lists with the probabilistic [Storage_loss] site.  [seq] is
    1-based (the first put of a key has [seq = 1]). *)
let put_lost (t : t) ~(key : string) ~(seq : int) : bool =
  List.mem key t.c_lose_always
  || (seq = 1 && List.mem key t.c_lose_first)
  || strikes t ~site:Storage_loss ~key ~seq

let to_string (t : t) =
  if is_none t then "none"
  else
    let p name v = if v > 0. then Some (Printf.sprintf "%s=%.2f" name v) else None in
    let targeted =
      (if t.c_lose_always = [] then []
       else [ Printf.sprintf "lose_always=%d" (List.length t.c_lose_always) ])
      @
      if t.c_lose_first = [] then []
      else [ Printf.sprintf "lose_first=%d" (List.length t.c_lose_first) ]
    in
    String.concat " "
      (List.filter_map Fun.id
         [
           p "crash" t.c_crash_prob;
           p "storage-loss" t.c_storage_loss_prob;
           p "mq-drop" t.c_mq_drop_prob;
           p "mq-dup" t.c_mq_dup_prob;
           p "stall" t.c_stall_prob;
         ]
      @ targeted
      @ [ Printf.sprintf "seed=%d" t.c_seed ])
