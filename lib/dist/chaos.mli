(** Seeded deterministic fault injection for the distributed framework.

    Every injection site asks a pure decision function keyed by
    (seed, site, key, sequence number), so the same plan applied to the
    same workload strikes the same victims whatever the execution
    interleaving — chaos runs are reproducible in CI and locally. *)

type site =
  | Crash  (** worker dies between dequeue and completion *)
  | Storage_loss  (** an uploaded object is lost after the put *)
  | Mq_drop  (** a pushed message never arrives *)
  | Mq_dup  (** a pushed message is delivered twice *)
  | Stall
      (** the worker wedges mid-subtask and never updates the DB; the
          master recovers it when the attempt's lease expires *)

val site_label : site -> string

type t = {
  c_seed : int;
  c_crash_prob : float;
  c_storage_loss_prob : float;
  c_mq_drop_prob : float;
  c_mq_dup_prob : float;
  c_stall_prob : float;
  c_stall_s : float;  (** modelled duration of a stalled attempt *)
  c_lose_always : string list;  (** object keys: every put is lost *)
  c_lose_first : string list;  (** object keys: only the first put is lost *)
}

(** No injection anywhere (the default plan). *)
val none : t

val make :
  ?seed:int ->
  ?crash_prob:float ->
  ?storage_loss_prob:float ->
  ?mq_drop_prob:float ->
  ?mq_dup_prob:float ->
  ?stall_prob:float ->
  ?stall_s:float ->
  ?lose_always:string list ->
  ?lose_first:string list ->
  unit ->
  t

val is_none : t -> bool

(** Does the fault at [site] strike [key] on its [seq]-th occurrence?
    Pure: same plan, same arguments — same answer. *)
val strikes : t -> site:site -> key:string -> seq:int -> bool

(** Is the [seq]-th put of object [key] lost?  Combines the targeted
    victim lists with the probabilistic {!Storage_loss} site ([seq] is
    1-based). *)
val put_lost : t -> key:string -> seq:int -> bool

val to_string : t -> string
