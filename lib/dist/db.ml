(** The subtask database (§3.2).

    Working servers update each subtask's running status here; the master
    monitors it and re-sends failed subtasks.  Route subtasks also record
    the range of addresses covered by their input routes, which is what a
    traffic subtask later consults to decide whether it depends on that
    route subtask's RIB file.

    Fault tolerance bookkeeping lives here too: every attempt carries a
    {e lease} (an absolute deadline by which the worker must have
    completed or failed), so a worker that dies mid-subtask without
    writing anything back is recovered by the master's monitor instead of
    wedging the phase; [Terminal] is the permanent-failure state a
    subtask enters once its retry budget is exhausted — the phase outcome
    contract reports such subtasks instead of silently merging without
    them.

    Entries are mutable but opaque: all reads and writes go through
    accessor functions, each of which takes the entry's own mutex — so
    one database can be shared by concurrent workers ({!Parallel}
    domains) without races.  The table itself has a separate mutex for
    registration and lookup. *)

open Hoyan_net

type status =
  | Pending
  | Running
  | Done
  | Failed of string (* failed, retryable: the monitor may re-send *)
  | Terminal of string (* permanently failed: retry budget exhausted *)

let status_to_string = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed m -> "failed: " ^ m
  | Terminal m -> "terminal: " ^ m

type entry = {
  e_mu : Mutex.t;
  mutable e_status : status;
  mutable e_range : (Ip.t * Ip.t) option; (* route subtasks: covered range *)
  mutable e_result_key : string option;
  mutable e_attempts : int;
  mutable e_sends : int; (* messages sent for this subtask (incl. re-sends) *)
  mutable e_lease_deadline : float option; (* current attempt's lease *)
  mutable e_backoff_s : float; (* accumulated modelled backoff delay *)
  mutable e_duration_s : float; (* measured compute time of the last run *)
  mutable e_io_bytes : int; (* bytes moved by the last run *)
  mutable e_io_files : int;
  mutable e_ec_count : int; (* ECs the last successful run simulated *)
  mutable e_deps : string list; (* traffic subtasks: route results loaded *)
}

type t = { mu : Mutex.t; tbl : (string, entry) Hashtbl.t }

let create () : t = { mu = Mutex.create (); tbl = Hashtbl.create 256 }

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register (t : t) id =
  let e =
    {
      e_mu = Mutex.create ();
      e_status = Pending;
      e_range = None;
      e_result_key = None;
      e_attempts = 0;
      e_sends = 0;
      e_lease_deadline = None;
      e_backoff_s = 0.;
      e_duration_s = 0.;
      e_io_bytes = 0;
      e_io_files = 0;
      e_ec_count = 0;
      e_deps = [];
    }
  in
  locked t.mu (fun () -> Hashtbl.replace t.tbl id e);
  e

let find (t : t) id = locked t.mu (fun () -> Hashtbl.find_opt t.tbl id)

let find_exn (t : t) id =
  match find t id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Db.find_exn: %s" id)

(* ------------------------------------------------------------------ *)
(* Entry accessors                                                     *)
(* ------------------------------------------------------------------ *)

let status (e : entry) = locked e.e_mu (fun () -> e.e_status)
let range (e : entry) = locked e.e_mu (fun () -> e.e_range)
let result_key (e : entry) = locked e.e_mu (fun () -> e.e_result_key)
let attempts (e : entry) = locked e.e_mu (fun () -> e.e_attempts)
let sends (e : entry) = locked e.e_mu (fun () -> e.e_sends)
let lease_deadline (e : entry) = locked e.e_mu (fun () -> e.e_lease_deadline)
let backoff_s (e : entry) = locked e.e_mu (fun () -> e.e_backoff_s)
let duration_s (e : entry) = locked e.e_mu (fun () -> e.e_duration_s)
let io_bytes (e : entry) = locked e.e_mu (fun () -> e.e_io_bytes)
let io_files (e : entry) = locked e.e_mu (fun () -> e.e_io_files)
let ec_count (e : entry) = locked e.e_mu (fun () -> e.e_ec_count)
let deps (e : entry) = locked e.e_mu (fun () -> e.e_deps)

let set_range (e : entry) r = locked e.e_mu (fun () -> e.e_range <- r)
let set_deps (e : entry) ds = locked e.e_mu (fun () -> e.e_deps <- ds)

(** Mark the entry [Running], bump its attempt counter and take a lease:
    the attempt must complete (or fail) before [now + lease_s], or the
    master's monitor reclaims it.  Returns the new attempt number. *)
let start_attempt ?(lease_s = 30.) (e : entry) : int =
  let deadline = Unix.gettimeofday () +. lease_s in
  locked e.e_mu (fun () ->
      e.e_status <- Running;
      e.e_attempts <- e.e_attempts + 1;
      e.e_lease_deadline <- Some deadline;
      e.e_attempts)

(** Count one message send for this subtask; returns the new send
    sequence number (1-based).  Chaos decisions key on it so a re-sent
    message gets a fresh fate. *)
let bump_sends (e : entry) : int =
  locked e.e_mu (fun () ->
      e.e_sends <- e.e_sends + 1;
      e.e_sends)

(** Backdate the current lease so it is already expired: how a stalled
    worker (one that will never write back) appears to the monitor. *)
let expire_lease (e : entry) : unit =
  locked e.e_mu (fun () ->
      e.e_lease_deadline <- Some (Unix.gettimeofday () -. 1.))

(** [Running] with a lease deadline in the past. *)
let lease_expired ~(now : float) (e : entry) : bool =
  locked e.e_mu (fun () ->
      match (e.e_status, e.e_lease_deadline) with
      | Running, Some d -> d < now
      | _ -> false)

let record_failure (e : entry) (reason : string) : unit =
  locked e.e_mu (fun () ->
      e.e_status <- Failed reason;
      e.e_lease_deadline <- None)

(** Permanent failure: the retry budget is exhausted; the monitor will
    not re-send and the phase reports the subtask as failed. *)
let mark_terminal (e : entry) (reason : string) : unit =
  locked e.e_mu (fun () ->
      e.e_status <- Terminal reason;
      e.e_lease_deadline <- None)

(** Back to [Pending]: the monitor re-queued the subtask (attempt and
    send counters are preserved). *)
let requeue (e : entry) : unit =
  locked e.e_mu (fun () ->
      e.e_status <- Pending;
      e.e_lease_deadline <- None)

(** Accumulate a modelled backoff delay before a re-send. *)
let add_backoff (e : entry) (s : float) : unit =
  locked e.e_mu (fun () -> e.e_backoff_s <- e.e_backoff_s +. s)

(** Record a finished run: measured compute time and accounted I/O (and
    the result file's key, when one was written); status becomes [Done]
    and the lease is released. *)
let complete (e : entry) ?result_key ?(ec_count = 0) ~duration_s ~io_bytes
    ~io_files () : unit =
  locked e.e_mu (fun () ->
      (match result_key with
      | Some _ -> e.e_result_key <- result_key
      | None -> ());
      e.e_duration_s <- duration_s;
      e.e_io_bytes <- io_bytes;
      e.e_io_files <- io_files;
      e.e_ec_count <- ec_count;
      e.e_lease_deadline <- None;
      e.e_status <- Done)

(* ------------------------------------------------------------------ *)
(* Table-level queries                                                 *)
(* ------------------------------------------------------------------ *)

let set_status (t : t) id s =
  let e = find_exn t id in
  locked e.e_mu (fun () -> e.e_status <- s)

let all (t : t) =
  locked t.mu (fun () ->
      Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.tbl [])

let count_status (t : t) pred =
  all t
  |> List.fold_left (fun n (_, e) -> if pred (status e) then n + 1 else n) 0

let all_done (t : t) =
  all t
  |> List.for_all (fun (_, e) ->
         match status e with Done -> true | _ -> false)

(** No subtask is still in flight: everything is [Done] or [Terminal]. *)
let all_settled (t : t) =
  all t
  |> List.for_all (fun (_, e) ->
         match status e with Done | Terminal _ -> true | _ -> false)

(** The permanently-failed subtasks, with their terminal reasons. *)
let terminal_failures (t : t) : (string * string) list =
  all t
  |> List.filter_map (fun (id, e) ->
         match status e with Terminal m -> Some (id, m) | _ -> None)
  |> List.sort compare
