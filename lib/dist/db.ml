(** The subtask database (§3.2).

    Working servers update each subtask's running status here; the master
    monitors it and re-sends failed subtasks.  Route subtasks also record
    the range of addresses covered by their input routes, which is what a
    traffic subtask later consults to decide whether it depends on that
    route subtask's RIB file.

    Entries are mutable but opaque: all reads and writes go through
    accessor functions, each of which takes the entry's own mutex — so
    one database can be shared by concurrent workers ({!Parallel}
    domains) without races.  The table itself has a separate mutex for
    registration and lookup. *)

open Hoyan_net

type status = Pending | Running | Done | Failed of string

let status_to_string = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed m -> "failed: " ^ m

type entry = {
  e_mu : Mutex.t;
  mutable e_status : status;
  mutable e_range : (Ip.t * Ip.t) option; (* route subtasks: covered range *)
  mutable e_result_key : string option;
  mutable e_attempts : int;
  mutable e_duration_s : float; (* measured compute time of the last run *)
  mutable e_io_bytes : int; (* bytes moved by the last run *)
  mutable e_io_files : int;
  mutable e_deps : string list; (* traffic subtasks: route results loaded *)
}

type t = { mu : Mutex.t; tbl : (string, entry) Hashtbl.t }

let create () : t = { mu = Mutex.create (); tbl = Hashtbl.create 256 }

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register (t : t) id =
  let e =
    {
      e_mu = Mutex.create ();
      e_status = Pending;
      e_range = None;
      e_result_key = None;
      e_attempts = 0;
      e_duration_s = 0.;
      e_io_bytes = 0;
      e_io_files = 0;
      e_deps = [];
    }
  in
  locked t.mu (fun () -> Hashtbl.replace t.tbl id e);
  e

let find (t : t) id = locked t.mu (fun () -> Hashtbl.find_opt t.tbl id)

let find_exn (t : t) id =
  match find t id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Db.find_exn: %s" id)

(* ------------------------------------------------------------------ *)
(* Entry accessors                                                     *)
(* ------------------------------------------------------------------ *)

let status (e : entry) = locked e.e_mu (fun () -> e.e_status)
let range (e : entry) = locked e.e_mu (fun () -> e.e_range)
let result_key (e : entry) = locked e.e_mu (fun () -> e.e_result_key)
let attempts (e : entry) = locked e.e_mu (fun () -> e.e_attempts)
let duration_s (e : entry) = locked e.e_mu (fun () -> e.e_duration_s)
let io_bytes (e : entry) = locked e.e_mu (fun () -> e.e_io_bytes)
let io_files (e : entry) = locked e.e_mu (fun () -> e.e_io_files)
let deps (e : entry) = locked e.e_mu (fun () -> e.e_deps)

let set_range (e : entry) r = locked e.e_mu (fun () -> e.e_range <- r)
let set_deps (e : entry) ds = locked e.e_mu (fun () -> e.e_deps <- ds)

(** Mark the entry [Running] and bump its attempt counter; returns the
    new attempt number (the worker's crash-retry bookkeeping). *)
let start_attempt (e : entry) : int =
  locked e.e_mu (fun () ->
      e.e_status <- Running;
      e.e_attempts <- e.e_attempts + 1;
      e.e_attempts)

let record_failure (e : entry) (reason : string) : unit =
  locked e.e_mu (fun () -> e.e_status <- Failed reason)

(** Record a finished run: measured compute time and accounted I/O (and
    the result file's key, when one was written); status becomes
    [Done]. *)
let complete (e : entry) ?result_key ~duration_s ~io_bytes ~io_files () : unit
    =
  locked e.e_mu (fun () ->
      (match result_key with
      | Some _ -> e.e_result_key <- result_key
      | None -> ());
      e.e_duration_s <- duration_s;
      e.e_io_bytes <- io_bytes;
      e.e_io_files <- io_files;
      e.e_status <- Done)

(* ------------------------------------------------------------------ *)
(* Table-level queries                                                 *)
(* ------------------------------------------------------------------ *)

let set_status (t : t) id s =
  let e = find_exn t id in
  locked e.e_mu (fun () -> e.e_status <- s)

let all (t : t) =
  locked t.mu (fun () ->
      Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.tbl [])

let count_status (t : t) pred =
  all t
  |> List.fold_left (fun n (_, e) -> if pred (status e) then n + 1 else n) 0

let all_done (t : t) =
  all t
  |> List.for_all (fun (_, e) ->
         match status e with Done -> true | _ -> false)
