(** Cost model converting measured subtask work into end-to-end time.

    Compute time is {e measured} (each subtask really runs); the I/O of
    loading inputs and RIB result files from the object store is
    {e modelled} from the accounted bytes/files, because the in-process
    store has no real network. *)

type t = {
  io_latency_per_file_s : float;  (** per-object request latency *)
  io_bytes_per_s : float;  (** object store throughput per worker *)
  master_prep_per_subtask_s : float;  (** subtask preparation by the master *)
}

(** Calibrated to the scaled-down workloads (see the .ml comment). *)
val default : t

(** Production-like object-store costs, for sensitivity runs. *)
val production_like : t

val io_time : t -> bytes:int -> files:int -> float

(** Effective wall time of one subtask on a worker: measured compute plus
    modelled I/O. *)
val subtask_time : t -> Db.entry -> float

(** Estimated relative cost of a route subtask before it has run, from
    its input route count (modelled prep + I/O + linear compute).  Only
    ratios matter; used to weight {!chunk_plan} partitions. *)
val est_route_subtask : t -> routes:int -> float

(** Partition items [0..n) (given per-item weights) into [workers]
    contiguous ranges of roughly equal total weight.  Returns exactly
    [workers] ranges [(lo, hi)], some possibly empty, covering [0..n)
    in order — the initial claim ranges of {!Parallel.map}'s chunked
    work-stealing scheduler. *)
val chunk_plan : workers:int -> float array -> (int * int) array
