(** The pre-processing services (§2.2, green boxes of Figure 2).

    Run periodically (daily in production): the network-model building
    service parses all configurations into the base model, and the input
    route/flow building services filter the monitored routes/flows into
    simulation inputs using a set of pre-defined rules, storing them for
    change-verification requests.

    The input-route rules include the paper's §5.3 cautionary tale: the
    rule "discard any route with an empty AS path" looked safe but
    wrongly dropped aggregate routes from the data centers, which carry no
    AS numbers.  [Discard_empty_as_path] reproduces that flawed rule for
    the Table-4 experiments; the fixed rule set does not use it. *)

open Hoyan_net
module Types = Hoyan_config.Types
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Smap = Map.Make (String)

(* ------------------------------------------------------------------ *)
(* Input route building                                                *)
(* ------------------------------------------------------------------ *)

type route_rule =
  | Discard_unknown_device (* not part of the model: cannot inject *)
  | Discard_vrf_without_external_peers
      (* the paper's example rule: routes from a VRF with no external BGP
         peers are internal artifacts, not inputs *)
  | Discard_martians (* never inject 0.0.0.0/8, 127/8, ... *)
  | Discard_empty_as_path
      (* the historically flawed rule (drops DC aggregates!) *)
  | Deduplicate

let default_rules =
  [
    Discard_unknown_device;
    Discard_vrf_without_external_peers;
    Discard_martians;
    Deduplicate;
  ]

let martians =
  List.map Prefix.of_string_exn [ "0.0.0.0/8"; "127.0.0.0/8"; "169.254.0.0/16" ]

let vrf_has_external_peers (model : Model.t) (dev : string) (vrf : string) =
  if String.equal vrf Route.default_vrf then true
  else
    match Model.config model dev with
    | None -> false
    | Some cfg ->
        List.exists
          (fun (nb : Types.neighbor) ->
            String.equal nb.Types.nb_vrf vrf
            && nb.Types.nb_remote_asn <> cfg.Types.dc_bgp.Types.bgp_asn)
          cfg.Types.dc_bgp.Types.bgp_neighbors

let apply_route_rule (model : Model.t) (rule : route_rule)
    (routes : Route.t list) : Route.t list =
  match rule with
  | Discard_unknown_device ->
      List.filter
        (fun (r : Route.t) -> Option.is_some (Model.config model r.Route.device))
        routes
  | Discard_vrf_without_external_peers ->
      List.filter
        (fun (r : Route.t) ->
          vrf_has_external_peers model r.Route.device r.Route.vrf)
        routes
  | Discard_martians ->
      List.filter
        (fun (r : Route.t) ->
          not (List.exists (fun m -> Prefix.subsumes m r.Route.prefix) martians))
        routes
  | Discard_empty_as_path ->
      List.filter (fun (r : Route.t) -> not (As_path.is_empty r.Route.as_path)) routes
  | Deduplicate ->
      let seen = Hashtbl.create 1024 in
      List.filter
        (fun (r : Route.t) ->
          let k = Route.to_string r in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        routes

(** The input route building service. *)
let build_input_routes ?(rules = default_rules) (model : Model.t)
    (monitored : Route.t list) : Route.t list =
  List.fold_left (fun rs rule -> apply_route_rule model rule rs) monitored rules

(* ------------------------------------------------------------------ *)
(* Input flow building                                                 *)
(* ------------------------------------------------------------------ *)

type flow_rule = Discard_unknown_ingress | Discard_zero_volume | Merge_same_key

let default_flow_rules =
  [ Discard_unknown_ingress; Discard_zero_volume; Merge_same_key ]

let apply_flow_rule (model : Model.t) rule (flows : Flow.t list) : Flow.t list
    =
  match rule with
  | Discard_unknown_ingress ->
      List.filter
        (fun (f : Flow.t) -> Option.is_some (Model.config model f.Flow.ingress))
        flows
  | Discard_zero_volume ->
      List.filter (fun (f : Flow.t) -> f.Flow.volume > 0.) flows
  | Merge_same_key ->
      (* merge records of the same 5-tuple + ingress, summing volume *)
      let tbl = Hashtbl.create 1024 in
      let order = ref [] in
      List.iter
        (fun (f : Flow.t) ->
          let k =
            (f.Flow.src, f.Flow.dst, f.Flow.sport, f.Flow.dport, f.Flow.ip_proto,
             f.Flow.ingress)
          in
          match Hashtbl.find_opt tbl k with
          | Some (g : Flow.t) ->
              Hashtbl.replace tbl k
                { g with Flow.volume = g.Flow.volume +. f.Flow.volume }
          | None ->
              Hashtbl.add tbl k f;
              order := k :: !order)
        flows;
      List.rev_map (Hashtbl.find tbl) !order

let build_input_flows ?(rules = default_flow_rules) (model : Model.t)
    (monitored : Flow.t list) : Flow.t list =
  List.fold_left (fun fs rule -> apply_flow_rule model rule fs) monitored rules

(* ------------------------------------------------------------------ *)
(* The pre-computed base                                               *)
(* ------------------------------------------------------------------ *)

(** Everything the change-verification phase reuses: the base network
    model, the filtered inputs, and (lazily) the base simulation results
    the intents compare against. *)
type base = {
  b_model : Model.t;
  b_input_routes : Route.t list;
  b_flows : Flow.t list;
  b_rib : Route.t list Lazy.t;
  b_traffic : Traffic_sim.result Lazy.t;
  b_partial : bool;
      (* the converged state came from a run with permanently-failed
         subtasks (distributed mode): rows may be missing, so verdicts
         derived from it must never be carried over as proven facts *)
}

let prepare ?(route_rules = default_rules) ?(flow_rules = default_flow_rules)
    ?(partial = false) (model : Model.t) ~(monitored_routes : Route.t list)
    ~(monitored_flows : Flow.t list) : base =
  let input_routes = build_input_routes ~rules:route_rules model monitored_routes in
  let flows = build_input_flows ~rules:flow_rules model monitored_flows in
  let rib =
    lazy ((Route_sim.run model ~input_routes ()).Route_sim.rib)
  in
  let traffic =
    lazy (Traffic_sim.run model ~rib:(Lazy.force rib) ~flows ())
  in
  { b_model = model; b_input_routes = input_routes; b_flows = flows;
    b_rib = rib; b_traffic = traffic; b_partial = partial }
