(** The change-verification pipeline (the blue boxes of Figure 2).

    Given a change plan, Hoyan (1) parses the commands and constructs the
    updated network model incrementally on top of the pre-computed base
    model, (2) runs route simulation on the pre-computed input routes
    (plus any new routes the plan announces), (3) runs traffic simulation
    on the pre-stored input flows, and (4) checks the formally specified
    intents against the simulated RIBs, flow paths, and traffic loads,
    emitting concrete counterexamples on violation. *)

open Hoyan_net
module Cp = Hoyan_config.Change_plan
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Framework = Hoyan_dist.Framework
module Lint = Hoyan_analysis.Lint
module Diagnostics = Hoyan_analysis.Diagnostics
module Semantic = Hoyan_analysis.Semantic
module Differential = Hoyan_analysis.Differential
module Incremental = Hoyan_sim.Incremental
module Telemetry = Hoyan_telemetry.Telemetry
module Journal = Hoyan_telemetry.Journal

type request = {
  rq_name : string;
  rq_plan : Cp.t;
  rq_intents : Intents.t list;
}

(** Distributed-mode subtask coverage: how much of the split actually
    reached the merge (the phase outcome contract, surfaced). *)
type coverage = {
  cov_total : int;
  cov_merged : int;
  cov_failed : (string * string) list;
      (* permanently-failed subtask ids with their terminal reasons *)
}

type result = {
  vr_request : string;
  vr_ok : bool;
  vr_violations : Intents.violation list;
  vr_plan_warnings : string list;
      (** parse/delete errors from applying the plan: risk signals on
          their own (Table 6 "incorrect commands") *)
  vr_lint : Diagnostics.t list;
      (** static-analysis findings from the pre-simulation gate *)
  vr_gated : bool;
      (** the fail-fast gate stopped the request before any simulation *)
  vr_precheck : (Intents.t * Semantic.verdict) list;
      (** the static pre-checker's verdict for every intent *)
  vr_sim_skipped : bool;
      (** every intent was resolved statically; no fixpoint ran *)
  vr_diff_class : Differential.classification option;
      (** differential mode only: the plan's semantic classification *)
  vr_carried : Intents.t list;
      (** differential mode only: intents whose base-run verdicts
          provably survive the change (outside the dirty region) *)
  vr_coverage : coverage option;
      (** distributed mode only: subtask coverage of the route phase *)
  vr_partial : bool;
      (** the simulated state is missing permanently-failed subtasks'
          results; [vr_ok] is never [true] when this is set *)
  vr_inc : Incremental.stats option;
      (** incremental-simulation accounting when the request ran through
          an [?inc] context or a cached [?inc_sim] artifact *)
  vr_updated_model : Model.t;
  vr_base_rib : Route.t list;
  vr_updated_rib : Route.t list;
  vr_updated_traffic : Traffic_sim.result Lazy.t;
  vr_sim_seconds : float;
  vr_traffic_seconds : float ref;
      (** wall-clock spent forcing [vr_updated_traffic] — measured at
          the forcing site, since the lazy is typically forced {e after}
          [vr_sim_seconds] stops counting (by the server or a traffic
          intent); [0.] until forced *)
}

(** Pipeline seconds plus (if forced) traffic-simulation seconds: the
    honest total cost of the request so far. *)
let total_seconds (r : result) : float =
  r.vr_sim_seconds +. !(r.vr_traffic_seconds)

(** How the static-analysis gate in front of the pipeline behaves. *)
type lint_gate =
  | Lint_off (* skip the analysis entirely *)
  | Lint_warn (* record diagnostics; never block (the default) *)
  | Lint_fail (* any error-severity diagnostic fails the request
                 before the first fixpoint runs *)

type sim_mode =
  | Direct (* in-process simulation *)
  | Distributed of { servers : int; subtasks : int }
      (* through the distributed framework (master/MQ/workers) *)

let plan_warnings (reports : Cp.apply_report list) : string list =
  List.concat_map
    (fun (r : Cp.apply_report) ->
      List.map
        (fun (i : Cp.line_issue) ->
          Printf.sprintf "%s: %s" r.Cp.ar_device (Cp.issue_to_string i))
        r.Cp.ar_issues)
    reports

(** RCL specification sources carried by the request's intents, for the
    static-analysis gate. *)
let lint_specs (intents : Intents.t list) : (string * string) list =
  List.mapi (fun i intent -> (i, intent)) intents
  |> List.filter_map (function
       | i, Intents.Route_change spec ->
           Some (Printf.sprintf "intent-%d" i, spec)
       | _ -> None)

(** Run one change-verification request against the pre-processed base.
    Each pipeline phase runs under its own telemetry span
    ([verify.lint_gate] / [verify.model_update] / [verify.route_sim] /
    [verify.traffic_sim] / [verify.intents]); the static-analysis gate
    additionally journals its outcome as a [lint.gate] event. *)
let run ?tm ?(mode = Direct) ?(lint = Lint_warn) ?(precheck = true)
    ?(diff = false) ?chaos ?(on_partial = `Refuse) ?(stop_after = `Full)
    ?inc ?inc_sim (base : Preprocess.base) (rq : request) : result =
  let tm = match tm with Some tm -> tm | None -> Telemetry.get () in
  let rq_sp =
    Telemetry.span tm ~args:[ ("request", rq.rq_name) ] "verify.request"
  in
  let t0 = Unix.gettimeofday () in
  (* traffic simulation is lazy and usually forced after [vr_sim_seconds]
     stops counting — time the forcing site so the cost is attributed
     somewhere ([vr_traffic_seconds] + a metric) instead of vanishing *)
  let traffic_seconds = ref 0. in
  let timed_traffic (f : unit -> Traffic_sim.result) :
      Traffic_sim.result Lazy.t =
    lazy
      (let tt0 = Unix.gettimeofday () in
       let r = f () in
       let dt = Unix.gettimeofday () -. tt0 in
       traffic_seconds := !traffic_seconds +. dt;
       Telemetry.observe tm "hoyan_verify_traffic_seconds" dt;
       r)
  in
  (* 0. static-analysis gate: lint the base configs, the change plan and
     the request's RCL specs before any fixpoint runs *)
  let lint_diags =
    match lint with
    | Lint_off -> []
    | Lint_warn | Lint_fail ->
        Telemetry.with_span tm "verify.lint_gate" (fun () ->
            let model = base.Preprocess.b_model in
            Lint.run
              (Lint.make ~topo:model.Model.topo ~plan:rq.rq_plan
                 ~specs:(lint_specs rq.rq_intents) model.Model.configs))
  in
  let gated = lint = Lint_fail && Lint.has_errors lint_diags in
  if Telemetry.enabled tm && lint <> Lint_off then
    Telemetry.event tm "lint.gate"
      [
        ("request", Journal.S rq.rq_name);
        ("diagnostics", Journal.I (List.length lint_diags));
        ("gated", Journal.B gated);
      ];
  if gated || stop_after = `Gate then begin
    if gated then Telemetry.count tm "hoyan_verify_gated_total" 1;
    Telemetry.finish tm rq_sp;
    {
      vr_request = rq.rq_name;
      (* a [`Gate]-bounded request (the server's lint class) is ok iff
         the gate found no error-severity diagnostic; a gated request
         never is *)
      vr_ok = (not gated) && stop_after = `Gate
              && not (Lint.has_errors lint_diags);
      vr_violations = [];
      vr_plan_warnings = [];
      vr_lint = lint_diags;
      vr_gated = gated;
      vr_precheck = [];
      vr_sim_skipped = false;
      vr_diff_class = None;
      vr_carried = [];
      vr_coverage = None;
      vr_partial = false;
      vr_inc = None;
      vr_updated_model = base.Preprocess.b_model;
      vr_base_rib = [];
      vr_updated_rib = [];
      vr_updated_traffic =
        timed_traffic (fun () ->
            Traffic_sim.run base.Preprocess.b_model ~rib:[] ~flows:[] ());
      vr_sim_seconds = Unix.gettimeofday () -. t0;
      vr_traffic_seconds = traffic_seconds;
    }
  end
  else begin
  (* 1. incremental model update (a cached incremental artifact already
     carries the patched model and its apply reports) *)
  let updated_model, reports =
    match inc_sim with
    | Some (s : Incremental.sim) ->
        (s.Incremental.s_model, s.Incremental.s_reports)
    | None ->
        Telemetry.with_span tm "verify.model_update" (fun () ->
            Model.apply_change_plan base.Preprocess.b_model rq.rq_plan)
  in
  let warnings = plan_warnings reports in
  (* 2. route simulation on the updated model; reclaimed prefixes are
     removed from the inputs, announced ones added *)
  let input_routes =
    match rq.rq_plan.Cp.cp_withdraw with
    | [] -> base.Preprocess.b_input_routes
    | withdrawn ->
        List.filter
          (fun (r : Route.t) ->
            not (List.exists (Prefix.equal r.Route.prefix) withdrawn))
          base.Preprocess.b_input_routes
  in
  (* 2a. differential pre-check: diff base against patched and carry
     over every intent the change provably cannot affect — reachability
     intents whose prefix is outside the statically computed dirty
     region, and (on a semantic no-op) everything else too.  Carried
     intents keep their base-run verdicts; only the affected remainder
     flows into the pre-checker and the simulator below. *)
  let diff_info =
    if not diff then None
    else
      Telemetry.with_span tm "verify.diff" (fun () ->
          let bm = base.Preprocess.b_model in
          Some
            (Differential.diff ~tm
               (Lint.make ~topo:bm.Model.topo ~render:false bm.Model.configs)
               rq.rq_plan))
  in
  let carried, active_intents =
    match diff_info with
    | None -> ([], rq.rq_intents)
    | Some _ when base.Preprocess.b_partial ->
        (* carrying verdicts derived from a partial (failed-subtask)
           base run would promote unsound verdicts to proven facts: a
           route missing from a failed subtask looks like a base
           reachability violation — or masks one.  Refuse; every intent
           goes through the pre-checker and the simulator instead. *)
        Telemetry.count tm "hoyan_verify_carryover_refused_total" 1;
        if Telemetry.enabled tm then
          Telemetry.event tm "verify.carryover_refused"
            [
              ("request", Journal.S rq.rq_name);
              ("reason", Journal.S "base run partial");
            ];
        ([], rq.rq_intents)
    | Some d ->
        List.partition
          (fun intent ->
            match intent with
            | Intents.Route_reach { rr_prefix; _ } ->
                Differential.carries_over ~tm d
                  ~input_routes:base.Preprocess.b_input_routes rr_prefix
            | _ ->
                d.Differential.df_class = Differential.No_op)
          rq.rq_intents
  in
  if Telemetry.enabled tm && diff then
    Telemetry.event tm "verify.diff"
      [
        ("request", Journal.S rq.rq_name);
        ( "class",
          Journal.S
            (match diff_info with
            | Some d ->
                Differential.classification_to_string d.Differential.df_class
            | None -> "-") );
        ("carried", Journal.I (List.length carried));
        ("active", Journal.I (List.length active_intents));
      ];
  (* carried intents are re-evaluated against the (cached) base state:
     their verdicts are by construction the base run's verdicts *)
  let carried_violations =
    if carried = [] then []
    else
      Telemetry.with_span tm "verify.carryover" (fun () ->
          let brib = Lazy.force base.Preprocess.b_rib in
          List.concat_map
            (fun intent ->
              Intents.verify intent ~model:base.Preprocess.b_model
                ~base_rib:brib ~updated_rib:brib
                ~base_traffic:base.Preprocess.b_traffic
                ~updated_traffic:base.Preprocess.b_traffic)
            carried)
  in
  (* 2b. static intent pre-check on the updated model: classify each
     reachability intent against the control-plane graph; refuted intents
     become violations with a static witness, and when nothing is left
     for the simulator the fixpoints below are skipped entirely *)
  let precheck_results =
    if (not precheck) || active_intents = [] then []
    else
      Telemetry.with_span tm "verify.precheck" (fun () ->
          let g =
            Semantic.build ~tm
              (Lint.make ~topo:updated_model.Model.topo ~render:false
                 updated_model.Model.configs)
          in
          let sim_inputs = input_routes @ rq.rq_plan.Cp.cp_new_routes in
          (* batch the reachability intents (per-prefix closures are
             shared); anything the pre-checker has no theory for goes
             straight to the simulator *)
          let tagged =
            List.mapi
              (fun i intent ->
                match intent with
                | Intents.Route_reach { rr_prefix; rr_devices; rr_expect } ->
                    ( intent,
                      Some
                        {
                          Semantic.ri_name = Printf.sprintf "intent-%d" i;
                          ri_prefix = rr_prefix;
                          ri_devices = rr_devices;
                          ri_expect = rr_expect;
                        } )
                | _ -> (intent, None))
              active_intents
          in
          let verdicts =
            Semantic.precheck_batch ~tm g ~input_routes:sim_inputs
              (List.filter_map snd tagged)
          in
          let rec zip tagged verdicts =
            match (tagged, verdicts) with
            | [], _ -> []
            | (intent, None) :: rest, vs ->
                (intent, Semantic.Needs_simulation) :: zip rest vs
            | (intent, Some _) :: rest, (_, v) :: vs ->
                (intent, v) :: zip rest vs
            | (intent, Some _) :: rest, [] ->
                (intent, Semantic.Needs_simulation) :: zip rest []
          in
          zip tagged verdicts)
  in
  let static_violations =
    List.filter_map
      (function
        | intent, Semantic.Refuted why ->
            Some (Intents.violation intent ("statically refuted: " ^ why))
        | _ -> None)
      precheck_results
  in
  let sim_intents =
    if precheck_results = [] then active_intents
    else
      List.filter_map
        (function
          | intent, Semantic.Needs_simulation -> Some intent | _ -> None)
        precheck_results
  in
  let resolved = List.length active_intents - List.length sim_intents in
  if Telemetry.enabled tm && precheck_results <> [] then begin
    Telemetry.count tm "hoyan_precheck_resolved_total" resolved;
    Telemetry.event tm "verify.precheck"
      [
        ("request", Journal.S rq.rq_name);
        ("intents", Journal.I (List.length active_intents));
        ("resolved", Journal.I resolved);
        ("refuted", Journal.I (List.length static_violations));
      ]
  end;
  let sim_skipped =
    (precheck && active_intents <> [] && sim_intents = [])
    || (diff && rq.rq_intents <> [] && active_intents = [])
  in
  (* a [`Static]-bounded request (the server's precheck class) never
     simulates: whatever the pre-checker left open stays open, and the
     verdict covers only the statically decided part *)
  let static_only = stop_after = `Static in
  (* 3. route simulation on the updated model; reclaimed prefixes were
     removed from the inputs above, announced ones are added here.  With
     an incremental context ([?inc]) or a cached spliced artifact
     ([?inc_sim]), the Direct path re-converges only the plan's dirty
     region and splices into the converged base RIB instead of running
     the fixpoint from scratch (broad plans honestly fall back inside
     [Incremental.simulate] — see [vr_inc]). *)
  let inc_used : Incremental.sim option ref = ref None in
  let updated_rib, dist_coverage =
    if sim_skipped || static_only then ([], None)
    else
      Telemetry.with_span tm "verify.route_sim" (fun () ->
          match mode with
          | Direct -> (
              match (inc_sim, inc) with
              | Some (s : Incremental.sim), _ ->
                  inc_used := Some s;
                  (s.Incremental.s_rib, None)
              | None, Some ictx ->
                  let s =
                    Incremental.simulate ~tm ?d:diff_info ictx rq.rq_plan
                  in
                  inc_used := Some s;
                  (s.Incremental.s_rib, None)
              | None, None ->
                  ( (Route_sim.run ~tm updated_model ~input_routes
                       ~new_routes:rq.rq_plan.Cp.cp_new_routes ())
                      .Route_sim.rib,
                    None ))
          | Distributed { servers = _; subtasks } ->
              let fw = Framework.create ~tm ?chaos updated_model in
              let phase =
                Framework.run_route_phase ~subtasks fw
                  ~input_routes:(input_routes @ rq.rq_plan.Cp.cp_new_routes)
              in
              let cov =
                {
                  cov_total = List.length phase.Framework.rp_subtasks;
                  cov_merged =
                    List.length phase.Framework.rp_subtasks
                    - List.length phase.Framework.rp_failed;
                  cov_failed =
                    List.map
                      (fun (f : Framework.subtask_failure) ->
                        (f.Framework.sf_id, f.Framework.sf_reason))
                      phase.Framework.rp_failed;
                }
              in
              (phase.Framework.rp_rib, Some cov))
  in
  let partial =
    match dist_coverage with
    | Some c -> c.cov_merged < c.cov_total
    | None -> false
  in
  (* 4. traffic simulation (lazy: only if an intent needs it).  The
     incremental path reuses the spliced-FIB traffic artifact; either
     way the forcing cost lands in [vr_traffic_seconds], not
     [vr_sim_seconds]. *)
  let updated_traffic =
    match !inc_used with
    | Some s -> timed_traffic (fun () -> Lazy.force s.Incremental.s_traffic)
    | None ->
        timed_traffic (fun () ->
            Telemetry.with_span tm "verify.traffic_sim" (fun () ->
                Traffic_sim.run ~tm updated_model ~rib:updated_rib
                  ~flows:base.Preprocess.b_flows ()))
  in
  (* 5. intent verification for whatever the pre-checker left open *)
  let base_rib =
    if sim_skipped || static_only then []
    else Lazy.force base.Preprocess.b_rib
  in
  (* partial distributed results: intent verdicts over an incomplete RIB
     would be unsound (a route missing from a failed subtask looks like a
     reachability violation — or masks one).  The default refuses to
     verify; the graceful-degradation mode verifies anyway but the result
     is flagged [vr_partial] and can never be [vr_ok]. *)
  let refuse_partial = partial && on_partial = `Refuse in
  let sim_violations =
    if sim_intents = [] || refuse_partial || static_only then []
    else
      Telemetry.with_span tm "verify.intents" (fun () ->
          List.concat_map
            (fun intent ->
              Intents.verify intent ~model:updated_model ~base_rib
                ~updated_rib ~base_traffic:base.Preprocess.b_traffic
                ~updated_traffic)
            sim_intents)
  in
  let violations = static_violations @ sim_violations @ carried_violations in
  let ok = violations = [] && warnings = [] && not partial in
  Telemetry.finish tm rq_sp;
  if Telemetry.enabled tm then
    Telemetry.event tm "verify.done"
      [
        ("request", Journal.S rq.rq_name);
        ("ok", Journal.B ok);
        ("violations", Journal.I (List.length violations));
        ("sim_skipped", Journal.B sim_skipped);
        ("partial", Journal.B partial);
      ];
  {
    vr_request = rq.rq_name;
    vr_ok = ok;
    vr_violations = violations;
    vr_plan_warnings = warnings;
    vr_lint = lint_diags;
    vr_gated = false;
    vr_precheck = precheck_results;
    vr_sim_skipped = sim_skipped;
    vr_diff_class =
      Option.map (fun d -> d.Differential.df_class) diff_info;
    vr_carried = carried;
    vr_coverage = dist_coverage;
    vr_partial = partial;
    vr_inc = Option.map (fun (s : Incremental.sim) -> s.Incremental.s_stats)
        !inc_used;
    vr_updated_model = updated_model;
    vr_base_rib = base_rib;
    vr_updated_rib = updated_rib;
    vr_updated_traffic = updated_traffic;
    (* elapsed minus whatever the intent checks spent forcing traffic:
       the traffic cost lives in [vr_traffic_seconds] only, whether the
       lazy was forced here or later by the caller *)
    vr_sim_seconds = Unix.gettimeofday () -. t0 -. !traffic_seconds;
    vr_traffic_seconds = traffic_seconds;
  }
  end

let report (r : result) : string =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "=== change verification: %s ===\n" r.vr_request);
  Buffer.add_string b
    (Printf.sprintf "result: %s (%.2fs)%s%s\n"
       (if r.vr_ok then "PASS" else "FAIL")
       (total_seconds r)
       (if r.vr_gated then " [stopped by the static-analysis gate]" else "")
       (if r.vr_sim_skipped then
          " [all intents resolved statically; simulation skipped]"
        else ""));
  (match r.vr_inc with
  | Some st ->
      Buffer.add_string b
        (if st.Incremental.st_full_fallback then
           Printf.sprintf "incremental: full fallback (%s)\n"
             (Option.value ~default:"?" st.Incremental.st_fallback_reason)
         else
           Printf.sprintf
             "incremental: %d dirty prefix(es), %d delta row(s) spliced \
              over %d reused, %d device FIB(s) rebuilt\n"
             st.Incremental.st_dirty_prefixes st.Incremental.st_delta_rows
             st.Incremental.st_reused_rows st.Incremental.st_dirty_devices)
  | None -> ());
  (match r.vr_diff_class with
  | Some cls ->
      Buffer.add_string b
        (Printf.sprintf
           "differential: plan is %s; %d intent verdict(s) carried over \
            from the base run\n"
           (Hoyan_analysis.Differential.classification_to_string cls)
           (List.length r.vr_carried))
  | None -> ());
  (match r.vr_coverage with
  | Some c ->
      Buffer.add_string b
        (Printf.sprintf "coverage: %d/%d subtasks merged%s\n" c.cov_merged
           c.cov_total
           (if r.vr_partial then
              " [PARTIAL: intent verdicts unsound over missing results]"
            else ""));
      List.iter
        (fun (id, reason) ->
          Buffer.add_string b
            (Printf.sprintf "failed subtask: %s: %s\n" id reason))
        c.cov_failed
  | None -> ());
  List.iter
    (fun (intent, verdict) ->
      match verdict with
      | Hoyan_analysis.Semantic.Needs_simulation -> ()
      | v ->
          Buffer.add_string b
            (Printf.sprintf "precheck: %s -> %s\n"
               (Intents.to_string intent)
               (Hoyan_analysis.Semantic.verdict_to_string v)))
    r.vr_precheck;
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "lint: %s\n" (Diagnostics.to_string d)))
    r.vr_lint;
  List.iter
    (fun w -> Buffer.add_string b (Printf.sprintf "plan warning: %s\n" w))
    r.vr_plan_warnings;
  List.iter
    (fun v ->
      Buffer.add_string b (Intents.violation_to_string v);
      Buffer.add_char b '\n')
    r.vr_violations;
  Buffer.contents b
