(** k-failure verification (§6.2, "fault-tolerance checking").

    Hoyan checks whether a property still holds when no more than [k]
    routers/links have failed.  The sweep is exhaustive by default: the
    static failure-equivalence analysis ({!Hoyan_analysis.Failure_eq},
    DESIGN.md §2.9) partitions the scenario space into classes whose
    simulations provably coincide on the property's slice — the
    base-equivalent class carries the base verdict with zero simulation,
    cut-analysis classes are decided statically, and each remaining
    class simulates one representative (in parallel across domains)
    whose verdict replicates to the members.  An optional
    [max_scenarios] cap re-introduces sampling as an {e explicit,
    reported} escape hatch ([kr_sampled]) — never silent. *)

open Hoyan_net
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Incremental = Hoyan_sim.Incremental
module Telemetry = Hoyan_telemetry.Telemetry
module Cp = Hoyan_config.Change_plan
module Lint = Hoyan_analysis.Lint
module Semantic = Hoyan_analysis.Semantic
module Feq = Hoyan_analysis.Failure_eq
module Parallel = Hoyan_dist.Parallel
module Costmodel = Hoyan_dist.Costmodel

type failure = Feq.failure =
  | Link_down of string * string
  | Device_down of string

let failure_to_string = Feq.failure_to_string

(** The property to hold in every <=k-failure state.  [p_footprint]
    declares what the check can observe — the pruning tiers are only as
    good as this declaration is precise, and [Opaque] disables them. *)
type property = {
  p_name : string;
  p_footprint : Feq.footprint;
  p_check :
    model:Model.t ->
    rib:Route.t list ->
    traffic:Traffic_sim.result Lazy.t ->
    string option (* None = holds; Some reason = violated *);
}

(** Reachability property: the prefix stays on all given devices. *)
let prefix_survives ~prefix ~devices =
  {
    p_name =
      Printf.sprintf "prefix %s survives on [%s]" (Prefix.to_string prefix)
        (String.concat "," devices);
    p_footprint = Feq.Reach_all (prefix, devices);
    p_check =
      (fun ~model:_ ~rib ~traffic:_ ->
        (* one pass over the RIB into a device set, then O(1) lookups —
           not a per-device linear scan *)
        let present = Hashtbl.create 64 in
        List.iter
          (fun (r : Route.t) ->
            if Prefix.equal r.Route.prefix prefix then
              Hashtbl.replace present r.Route.device ())
          rib;
        let missing =
          List.filter (fun dev -> not (Hashtbl.mem present dev)) devices
        in
        if missing = [] then None
        else Some ("missing on " ^ String.concat "," missing));
  }

(** Load property: no link above the utilization bound.  Traffic-
    dependent, hence [Opaque]: a removed link reroutes flows even when
    every RIB is byte-identical, so no RIB-slice argument applies. *)
let no_overload ~max_util =
  {
    p_name = Printf.sprintf "no link above %.0f%%" (100. *. max_util);
    p_footprint = Feq.Opaque;
    p_check =
      (fun ~model ~rib:_ ~traffic ->
        let tr = Lazy.force traffic in
        let over =
          Traffic_sim.utilizations model tr
          |> List.filter (fun (_, _, u) -> u > max_util)
        in
        match over with
        | [] -> None
        | first :: rest ->
            let ((wa, wb), _, wu) =
              List.fold_left
                (fun ((_, _, bu) as best) ((_, _, u) as cand) ->
                  if u > bu then cand else best)
                first rest
            in
            Some
              (Printf.sprintf "%d overloaded link(s), worst %s->%s at %.1f%%"
                 (List.length over) wa wb (100. *. wu)));
  }

let combinations = Feq.combinations

type scenario_result = {
  sr_failures : failure list;
  sr_violation : string option;
}

type result = {
  kr_property : string;
  kr_k : int;
  kr_total : int;  (** scenarios enumerated over sizes 1..k *)
  kr_checked : int;  (** scenarios with a verdict (= total unless sampled) *)
  kr_carried : int;  (** verdict carried from the base run (tier 1) *)
  kr_replicated : int;  (** verdict replicated from a class representative *)
  kr_static : int;  (** verdict proven by the cut analysis, no fixpoint *)
  kr_simulated : int;  (** scenarios actually simulated *)
  kr_restricted : int;
      (** simulated representatives whose fixpoint was restricted to the
          property footprint's prefix closure ([?inc] given and the
          footprint is prefix-enumerable; [Opaque] always simulates in
          full) *)
  kr_sampled : bool;  (** an explicit [max_scenarios] cap dropped classes *)
  kr_scenarios : int;  (** = [kr_checked]; kept for existing callers *)
  kr_violations : scenario_result list;
}

let candidate_failures ?(devices = true) ?(links = true) (model : Model.t) :
    failure list =
  Feq.candidates ~devices ~links model.Model.topo

let apply_failures (model : Model.t) (fs : failure list) : Model.t =
  let ops =
    List.map
      (function
        | Link_down (a, b) -> Cp.Remove_link { ra = a; rb = b }
        | Device_down d -> Cp.Remove_device d)
      fs
  in
  fst (Model.apply_change_plan model (Cp.make "k-failure" ~topo_ops:ops))

(* Simulate one failure scenario and evaluate the property.  [only]
   restricts the fixpoint to the property footprint's prefix closure:
   sound because a footprint declares everything [p_check] observes, and
   per-prefix decomposability makes the restricted run converge the
   footprint's rows exactly. *)
let simulate_scenario ?only (model : Model.t) ~input_routes ~flows
    (prop : property) (fs : failure list) : string option =
  let failed_model = apply_failures model fs in
  let rib =
    (Route_sim.run ?only failed_model ~input_routes ()).Route_sim.rib
  in
  let traffic = lazy (Traffic_sim.run failed_model ~rib ~flows ()) in
  prop.p_check ~model:failed_model ~rib ~traffic

(** Check the property under all failure combinations of size 1..k.

    Exhaustive over class representatives by default.  [prune:false]
    bypasses the static analysis entirely (every scenario simulates) —
    the brute-force oracle for tests and benches.  [max_scenarios], when
    given, caps the number of {e simulated representatives} by
    deterministic stride; dropped classes are reported as unchecked via
    [kr_total]/[kr_checked] and [kr_sampled]. *)
let check ?tm ?max_scenarios ?(prune = true) ?(devices = false)
    ?(links = true) ?inc (model : Model.t) ~(input_routes : Route.t list)
    ~(flows : Flow.t list) ~(k : int) (prop : property) : result =
  (* With a captured converged-base context: the base verdict reads the
     cached RIB/FIBs instead of re-converging, and prefix-enumerable
     footprints restrict every representative's fixpoint to the
     footprint's aggregate closure.  [Opaque] footprints (traffic
     properties) get neither — full simulation, honestly counted. *)
  let only =
    match inc with
    | None -> None
    | Some ictx -> (
        match prop.p_footprint with
        | Feq.Reach_all (p, _) ->
            Some (Incremental.scenario_only ictx ~prefixes:[ p ])
        | Feq.Prefix_scoped (ps, _) ->
            Some (Incremental.scenario_only ictx ~prefixes:ps)
        | Feq.Opaque -> None)
  in
  let plan =
    if prune then
      let input =
        Lint.make ~topo:model.Model.topo ~render:false model.Model.configs
      in
      let g = Semantic.build ?tm input in
      let an =
        Feq.create ?tm ~te_aware:model.Model.te_aware g ~input_routes
      in
      Feq.analyze ?tm ~devices ~links an ~k prop.p_footprint
    else begin
      (* brute force: one singleton simulate-class per scenario *)
      let cands = Feq.candidates ~devices ~links model.Model.topo in
      let scen =
        List.concat_map
          (fun i -> Feq.combinations i cands)
          (List.init k (fun i -> i + 1))
      in
      let total = List.length scen in
      {
        Feq.pl_k = k;
        pl_scenarios = scen;
        pl_class_of = Array.init total Fun.id;
        pl_classes =
          List.map
            (fun s ->
              {
                Feq.cl_rep = s;
                cl_members = [ s ];
                cl_decision = Feq.Simulate;
              })
            scen;
        pl_total = total;
        pl_carried = 0;
        pl_static = 0;
        pl_replicated = 0;
        pl_to_simulate = total;
        pl_opaque = true;
      }
    end
  in
  (* The base verdict backs every carried scenario; forced only when a
     base-equivalent class exists. *)
  let base_verdict =
    lazy
      (match inc with
      | Some ictx ->
          let rib = Incremental.base_rib ictx in
          let traffic =
            lazy
              (Traffic_sim.run ~fibs:(Incremental.base_fibs ictx)
                 ~ecx:(Incremental.base_ec_ctx ictx) model ~rib ~flows ())
          in
          prop.p_check ~model ~rib ~traffic
      | None ->
          let rib = (Route_sim.run model ~input_routes ()).Route_sim.rib in
          let traffic = lazy (Traffic_sim.run model ~rib ~flows ()) in
          prop.p_check ~model ~rib ~traffic)
  in
  let classes = Array.of_list plan.Feq.pl_classes in
  (* Representatives to simulate, with the explicit sampling escape
     hatch: a [max_scenarios] cap stride-samples the representative list
     and reports the drop — never silently. *)
  let sim_ids =
    Array.to_list
      (Array.mapi (fun i (c : Feq.cls) -> (i, c)) classes)
    |> List.filter_map (fun (i, (c : Feq.cls)) ->
           if c.Feq.cl_decision = Feq.Simulate then Some i else None)
  in
  let chosen_ids, sampled =
    match max_scenarios with
    | Some cap when List.length sim_ids > cap && cap > 0 ->
        let n = List.length sim_ids in
        let stride = (n + cap - 1) / cap in
        (List.filteri (fun i _ -> i mod stride = 0) sim_ids, true)
    | _ -> (sim_ids, false)
  in
  (* Weight representatives by the cost model: a scenario's fixpoint
     cost scales with the surviving share of the network. *)
  let n_devices = max 1 (Topology.num_devices model.Model.topo) in
  let routes = List.length input_routes in
  let weights =
    chosen_ids |> List.map (fun id -> classes.(id).Feq.cl_rep)
    |> List.map (fun fs ->
           let removed =
             List.length
               (List.filter (function Device_down _ -> true | _ -> false) fs)
           in
           let surviving =
             float_of_int (n_devices - removed) /. float_of_int n_devices
           in
           Costmodel.est_route_subtask Costmodel.default
             ~routes:(max 1 (int_of_float (float_of_int routes *. surviving))))
    |> Array.of_list
  in
  let rep_verdicts =
    Parallel.map ?tm ~weights
      (fun id ->
        ( id,
          simulate_scenario ?only model ~input_routes ~flows prop
            classes.(id).Feq.cl_rep ))
      chosen_ids
  in
  let restricted =
    if Option.is_some only then List.length chosen_ids else 0
  in
  (match tm with
  | Some t when restricted > 0 ->
      Telemetry.count t "hoyan_kfailure_restricted_total" restricted
  | _ -> ());
  let verdict_of_class = Hashtbl.create 64 in
  List.iter (fun (id, v) -> Hashtbl.replace verdict_of_class id v) rep_verdicts;
  (* Per-scenario verdicts in enumeration order; [None] = unchecked
     (dropped by sampling). *)
  let carried = ref 0 and replicated = ref 0 and static = ref 0 in
  let simulated = List.length chosen_ids in
  let seen_rep = Hashtbl.create 64 in
  let scenario_verdicts =
    List.mapi
      (fun i fs ->
        let id = plan.Feq.pl_class_of.(i) in
        match classes.(id).Feq.cl_decision with
        | Feq.Carry_base ->
            incr carried;
            Some (fs, Lazy.force base_verdict)
        | Feq.Static_violation reason ->
            incr static;
            Some (fs, Some reason)
        | Feq.Simulate -> (
            match Hashtbl.find_opt verdict_of_class id with
            | None -> None (* class dropped by the sampling cap *)
            | Some v ->
                if Hashtbl.mem seen_rep id then incr replicated
                else Hashtbl.replace seen_rep id ();
                Some (fs, v)))
      plan.Feq.pl_scenarios
  in
  let checked = List.length (List.filter Option.is_some scenario_verdicts) in
  let violations =
    List.filter_map
      (function
        | Some (fs, Some reason) ->
            Some { sr_failures = fs; sr_violation = Some reason }
        | _ -> None)
      scenario_verdicts
  in
  {
    kr_property = prop.p_name;
    kr_k = k;
    kr_total = plan.Feq.pl_total;
    kr_checked = checked;
    kr_carried = !carried;
    kr_replicated = !replicated;
    kr_static = !static;
    kr_simulated = simulated;
    kr_restricted = restricted;
    kr_sampled = sampled;
    kr_scenarios = checked;
    kr_violations = violations;
  }
