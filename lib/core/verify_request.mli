(** The change-verification pipeline (the blue boxes of the paper's
    Figure 2): apply the change plan incrementally to the pre-computed
    base model, simulate routes (and, lazily, traffic), verify the
    formally specified intents, and report violations with concrete
    counterexamples. *)

open Hoyan_net

type request = {
  rq_name : string;
  rq_plan : Hoyan_config.Change_plan.t;
  rq_intents : Intents.t list;
}

(** Distributed-mode subtask coverage: how much of the split actually
    reached the merge (the framework's phase outcome contract,
    surfaced). *)
type coverage = {
  cov_total : int;
  cov_merged : int;
  cov_failed : (string * string) list;
      (** permanently-failed subtask ids with their terminal reasons *)
}

type result = {
  vr_request : string;
  vr_ok : bool;  (** no violations and no plan-application warnings *)
  vr_violations : Intents.violation list;
  vr_plan_warnings : string list;
      (** parse/delete errors from applying the plan — risk signals on
          their own (Table 6 "incorrect commands") *)
  vr_lint : Hoyan_analysis.Diagnostics.t list;
      (** static-analysis findings from the pre-simulation gate *)
  vr_gated : bool;
      (** the fail-fast gate stopped the request before any simulation *)
  vr_precheck : (Intents.t * Hoyan_analysis.Semantic.verdict) list;
      (** the static pre-checker's verdict for every intent *)
  vr_sim_skipped : bool;
      (** the pre-checker resolved every intent statically, so no
          simulation ran (the RIB fields are then empty) *)
  vr_diff_class : Hoyan_analysis.Differential.classification option;
      (** differential mode only ([?diff:true]): the plan's semantic
          classification (no-op / local / propagating) *)
  vr_carried : Intents.t list;
      (** differential mode only: intents whose base-run verdicts were
          carried over without re-simulation — the static differential
          pass proved their prefixes lie outside the change's dirty
          region *)
  vr_coverage : coverage option;
      (** distributed mode only: subtask coverage of the route phase *)
  vr_partial : bool;
      (** the simulated state is missing permanently-failed subtasks'
          results; [vr_ok] is never [true] when this is set *)
  vr_inc : Hoyan_sim.Incremental.stats option;
      (** set when the request was simulated through the incremental
          splice engine ([?inc] / [?inc_sim]): per-plan dirty-region and
          fallback accounting *)
  vr_updated_model : Hoyan_sim.Model.t;
  vr_base_rib : Route.t list;
  vr_updated_rib : Route.t list;
  vr_updated_traffic : Hoyan_sim.Traffic_sim.result Lazy.t;
  vr_sim_seconds : float;
      (** wall-clock of the eager pipeline (gate, differential, route
          fixpoint, intent checks).  Excludes the lazy traffic
          simulation — see [vr_traffic_seconds]. *)
  vr_traffic_seconds : float ref;
      (** wall-clock spent forcing [vr_updated_traffic], measured at the
          forcing site; [0.] until (unless) something forces it *)
}

(** [vr_sim_seconds] plus the traffic-forcing time accumulated so far. *)
val total_seconds : result -> float

type sim_mode =
  | Direct  (** in-process simulation *)
  | Distributed of { servers : int; subtasks : int }
      (** through the distributed framework (master/MQ/workers) *)

(** How the static-analysis gate in front of the pipeline behaves:
    skip it, record diagnostics without blocking (the default), or fail
    the request on any error-severity diagnostic before the first
    fixpoint runs. *)
type lint_gate = Lint_off | Lint_warn | Lint_fail

(** Run one change-verification request against the pre-processed base.
    The static-analysis gate ([?lint], default {!Lint_warn}) lints the
    base configs, the change plan and the request's RCL specs first;
    under {!Lint_fail} an error-severity diagnostic stops the request
    before any simulation.  Traffic simulation is forced only when a
    traffic-level intent is present.  Prefixes in the plan's
    [cp_withdraw] are removed from the inputs; [cp_new_routes] are added
    (new prefix announcement).  [tm] (default: the process-global
    telemetry handle) receives per-phase spans and gate events.

    [precheck] (default [true]) runs the static intent pre-checker
    ({!Hoyan_analysis.Semantic}) on the updated model before simulating:
    statically refuted intents become violations with a static witness,
    and when every intent of a non-empty request is proved or refuted the
    route/traffic fixpoints are skipped entirely
    ([vr_sim_skipped = true]).

    [diff] (default [false]) additionally runs the differential
    change-impact pass ({!Hoyan_analysis.Differential}) against the base
    model before anything is simulated: every reachability intent whose
    prefix provably lies outside the change's dirty region — and, when
    the plan is a semantic no-op, every other intent too — keeps its
    base-run verdict ([vr_carried]) and is evaluated against the cached
    base state; only the affected remainder goes through the pre-checker
    and the simulator.  When everything carries over, no fixpoint runs at
    all.

    [stop_after] bounds how far the pipeline runs (the request classes of
    the verification server, {!Hoyan_server.Server}, map onto it):
    [`Gate] stops after the static-analysis gate — [vr_ok] is then "the
    gate found no error-severity diagnostic" and nothing is simulated;
    [`Static] runs the model update, the differential pass and the static
    pre-checker but never the fixpoints — intents the pre-checker left
    [Needs_simulation] stay open and the verdict covers only the
    statically decided part; [`Full] (the default) is the whole pipeline.

    In [Distributed] mode, [chaos] injects faults into the framework and
    the route phase's outcome contract is surfaced as [vr_coverage].
    When subtasks failed permanently the result is partial; [on_partial]
    picks the policy: [`Refuse] (the default) withholds intent verdicts
    over the incomplete RIB (no simulated violations are reported, and
    [vr_ok = false]); [`Degrade] verifies anyway but flags the result
    [vr_partial] — a partial result is never [vr_ok].

    A partial base ([Preprocess.prepare ~partial:true], i.e. the
    converged base state itself came from a run with failed subtasks)
    refuses differential verdict carry-over entirely: carrying a verdict
    proven against an incomplete base RIB would launder missing routes
    into proven facts.  The refusal is counted
    ([hoyan_verify_carryover_refused_total]) and every intent is
    re-verified.

    [inc] supplies a captured converged-base context
    ({!Hoyan_sim.Incremental.ctx}): in [Direct] mode the route fixpoint
    then re-converges only the plan's dirty region and splices into the
    cached base RIB/FIBs ([vr_inc] reports the accounting; broad plans
    fall back to a full run inside the engine).  [inc_sim] goes one step
    further and reuses an already-spliced artifact for this exact plan
    (the verification server's cache) — model application and route
    simulation are both skipped in favor of the artifact. *)
val run :
  ?tm:Hoyan_telemetry.Telemetry.t ->
  ?mode:sim_mode ->
  ?lint:lint_gate ->
  ?precheck:bool ->
  ?diff:bool ->
  ?chaos:Hoyan_dist.Chaos.t ->
  ?on_partial:[ `Refuse | `Degrade ] ->
  ?stop_after:[ `Gate | `Static | `Full ] ->
  ?inc:Hoyan_sim.Incremental.ctx ->
  ?inc_sim:Hoyan_sim.Incremental.sim ->
  Preprocess.base ->
  request ->
  result

(** Human-readable report (PASS/FAIL, warnings, violations with their
    counterexamples). *)
val report : result -> string
