(* The hoyan command-line interface.

   In production Hoyan serves a web GUI (high-risk, manually designed
   changes) and a REST API (automated low-risk changes); this CLI is the
   equivalent front door for the reproduction:

     hoyan simulate  [--scale small|wan|wan-dcn] [--distributed N]
                     [--fail-prob P] [--chaos MODE] [--chaos-seed S]
                     [--lease-s SECONDS]
     hoyan verify    --plan FILE [--device NAME]... --intent SPEC...
                     [--diff]          # carry unaffected intents over
                     [--inc]           # dirty-region splice simulation
                     [--selfcheck]     # splice == from-scratch oracle
     hoyan lint      [--plan FILE --device NAME]... [--intent SPEC]...
                     [--json] [--inject CLASS|all] [--deep]
                     [--max-warnings N] [--baseline FILE]
     hoyan analyze   [--scale ...]     # cross-device semantic pass only
     hoyan diff      PLAN --device NAME... [--json] [--max-warnings N]
                     [--baseline FILE] [--write-baseline FILE]
     hoyan rcl       --spec STRING [--explain]
     hoyan diagnose  [--fault agent-down|netflow|...]
     hoyan audit     [--scale ...]
     hoyan vsb                         # Table-5 differential sweep
     hoyan trace summarize FILE        # per-phase/per-subtask breakdown
     hoyan serve     --requests FILE [--policy fifo|lpt] [--selfcheck]
                     [--metrics-out FILE [--metrics-every N]]
     hoyan whatif    [-k K] [--devices] [--prefix P --on DEV,DEV]
                     [--prop reach|overload] [--json] [--selfcheck]

   simulate and verify accept --trace/--metrics/--journal FILE options
   that install a live telemetry handle and write the Chrome trace JSON,
   the Prometheus text exposition, and the JSONL event journal. *)

open Cmdliner
open Hoyan_net
module G = Hoyan_workload.Generator
module S = Hoyan_workload.Scenarios
module Defects = Hoyan_workload.Defects
module Cp = Hoyan_config.Change_plan
module Types = Hoyan_config.Types
module Lint = Hoyan_analysis.Lint
module Semantic = Hoyan_analysis.Semantic
module Differential = Hoyan_analysis.Differential
module Diagnostics = Hoyan_analysis.Diagnostics
module Preprocess = Hoyan_core.Preprocess
module Intents = Hoyan_core.Intents
module Verify_request = Hoyan_core.Verify_request
module Audit = Hoyan_core.Audit
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Incremental = Hoyan_sim.Incremental
module Bgp = Hoyan_proto.Bgp
module Server = Hoyan_server.Server
module Request = Hoyan_server.Request
module Telemetry = Hoyan_telemetry.Telemetry
module Trace = Hoyan_telemetry.Trace
module Metrics = Hoyan_telemetry.Metrics
module Journal = Hoyan_telemetry.Journal
module Tjson = Hoyan_telemetry.Json

(* ------------------------------------------------------------------ *)
(* shared options                                                      *)
(* ------------------------------------------------------------------ *)

let scale_arg =
  let scales = [ ("small", G.small); ("wan", G.wan); ("wan-dcn", G.wan_dcn) ] in
  let scale_conv = Arg.enum scales in
  Arg.(value
       & opt scale_conv G.small
       & info [ "scale" ] ~docv:"SCALE"
           ~doc:"Workload scale: $(b,small), $(b,wan) or $(b,wan-dcn).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let gen params seed = G.generate { params with G.g_seed = seed }

(* telemetry output options shared by simulate and verify *)

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON of the run to $(docv) \
                 (load in chrome://tracing or Perfetto; summarize with \
                 $(b,hoyan trace summarize)).")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write the run's metrics in Prometheus text exposition \
                 format to $(docv).")

let journal_out_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:"Write the structured pipeline event journal (JSONL) to \
                 $(docv).")

(* chaos / fault-injection options shared by simulate and verify *)

let fail_prob_arg =
  Arg.(value & opt float 0.
       & info [ "fail-prob" ] ~docv:"P"
           ~doc:"Per-decision fault probability for --chaos (or, without \
                 --chaos, the worker-crash probability).")

let chaos_mode_arg =
  Arg.(value & opt (some string) None
       & info [ "chaos" ] ~docv:"MODE"
           ~doc:"Inject faults into the distributed framework: \
                 $(b,crashes), $(b,storage-loss), $(b,mq-faults), \
                 $(b,stalls) or $(b,mixed).  Deterministic per \
                 --chaos-seed.")

let chaos_seed_arg =
  Arg.(value & opt int 42
       & info [ "chaos-seed" ] ~docv:"SEED"
           ~doc:"Seed of the chaos plan (fault decisions are a pure \
                 function of the seed, so runs replay identically).")

let lease_arg =
  Arg.(value & opt float 30.
       & info [ "lease-s" ] ~docv:"SECONDS"
           ~doc:"Subtask lease duration: a worker that has not reported \
                 within the lease is presumed dead and its subtask is \
                 re-sent.")

(** Resolve the chaos flags into a plan; [Error] on an unknown mode. *)
let chaos_of ~fail_prob ~chaos_mode ~chaos_seed :
    (Hoyan_dist.Chaos.t, string) Stdlib.result =
  match chaos_mode with
  | None ->
      Ok
        (if fail_prob > 0. then
           Hoyan_dist.Chaos.make ~seed:chaos_seed ~crash_prob:fail_prob ()
         else Hoyan_dist.Chaos.none)
  | Some m -> (
      match Hoyan_workload.Faultplan.mode_of_string m with
      | None ->
          Error
            (Printf.sprintf
               "unknown --chaos mode %S (expected crashes, storage-loss, \
                mq-faults, stalls or mixed)"
               m)
      | Some mode ->
          let prob = if fail_prob > 0. then fail_prob else 0.2 in
          Ok (Hoyan_workload.Faultplan.plan ~seed:chaos_seed ~prob mode))

(** Install a live telemetry handle when any output file was requested,
    run [f], then write the requested files. *)
let with_telemetry ~trace_out ~metrics_out ~journal_out f =
  match (trace_out, metrics_out, journal_out) with
  | None, None, None -> f ()
  | _ ->
      let tm = Telemetry.create () in
      Telemetry.set tm;
      let code = f () in
      Option.iter
        (fun path ->
          Trace.write_file tm.Telemetry.trace path;
          Printf.printf "trace: %d events -> %s\n"
            (Trace.count tm.Telemetry.trace)
            path)
        trace_out;
      Option.iter
        (fun path ->
          Metrics.write_prometheus_file tm.Telemetry.metrics path;
          Printf.printf "metrics: %d updates -> %s\n"
            (Metrics.ops tm.Telemetry.metrics)
            path)
        metrics_out;
      Option.iter
        (fun path ->
          Journal.write_file tm.Telemetry.journal path;
          Printf.printf "journal: %d events -> %s\n"
            (Journal.count tm.Telemetry.journal)
            path)
        journal_out;
      Telemetry.set Telemetry.noop;
      code

(* ------------------------------------------------------------------ *)
(* hoyan simulate                                                      *)
(* ------------------------------------------------------------------ *)

let simulate params seed distributed fail_prob chaos_mode chaos_seed lease_s
    trace_out metrics_out journal_out =
  with_telemetry ~trace_out ~metrics_out ~journal_out @@ fun () ->
  match chaos_of ~fail_prob ~chaos_mode ~chaos_seed with
  | Error msg ->
      prerr_endline msg;
      2
  | Ok chaos ->
  let g = gen params seed in
  Printf.printf "network: %s\n%!" (G.stats g);
  let t0 = Unix.gettimeofday () in
  let incomplete = ref false in
  let rib =
    match distributed with
    | None ->
        let res = Route_sim.run g.G.model ~input_routes:g.G.input_routes () in
        Printf.printf
          "route simulation: %d RIB rows, %.2fx EC compression, %d fixpoint \
           rounds\n"
          (List.length res.Route_sim.rib)
          res.Route_sim.compression
          res.Route_sim.bgp_stats.Bgp.st_rounds;
        res.Route_sim.rib
    | Some servers ->
        let fw =
          Hoyan_dist.Framework.create ~chaos ~lease_s g.G.model
        in
        let rp =
          Hoyan_dist.Framework.run_route_phase ~subtasks:100 fw
            ~input_routes:g.G.input_routes
        in
        let t =
          Hoyan_dist.Framework.phase_time fw ~servers
            rp.Hoyan_dist.Framework.rp_subtasks
        in
        Printf.printf
          "distributed route simulation: %d RIB rows; end-to-end on %d \
           servers: %.2fs\n"
          (List.length rp.Hoyan_dist.Framework.rp_rib)
          servers t;
        if not (Hoyan_dist.Chaos.is_none chaos) then
          Printf.printf "%s\n" (Hoyan_dist.Framework.monitor_report fw);
        if not rp.Hoyan_dist.Framework.rp_complete then begin
          incomplete := true;
          List.iter
            (fun f ->
              Printf.printf "permanently failed: %s\n"
                (Hoyan_dist.Framework.failure_to_string f))
            rp.Hoyan_dist.Framework.rp_failed
        end;
        rp.Hoyan_dist.Framework.rp_rib
  in
  let tr = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
  let s f = List.fold_left (fun a fr -> a +. f fr) 0. tr.Traffic_sim.flow_results in
  Printf.printf
    "traffic simulation: %d flow ECs; delivered %.0f, dropped %.0f, looped \
     %.0f of %d flow records; %d links loaded\n"
    tr.Traffic_sim.ec_count
    (s (fun fr -> fr.Traffic_sim.f_delivered))
    (s (fun fr -> fr.Traffic_sim.f_dropped))
    (s (fun fr -> fr.Traffic_sim.f_looped))
    (List.length tr.Traffic_sim.flow_results)
    (Hashtbl.length tr.Traffic_sim.link_load);
  Printf.printf "total: %.2fs\n" (Unix.gettimeofday () -. t0);
  if !incomplete then 1 else 0

let simulate_cmd =
  let distributed =
    Arg.(value & opt (some int) None
         & info [ "distributed" ] ~docv:"SERVERS"
             ~doc:"Run through the distributed framework and report the \
                   end-to-end time for $(docv) working servers.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Generate a synthetic WAN and simulate it")
    Term.(
      const simulate $ scale_arg $ seed_arg $ distributed $ fail_prob_arg
      $ chaos_mode_arg $ chaos_seed_arg $ lease_arg $ trace_out_arg
      $ metrics_out_arg $ journal_out_arg)

(* ------------------------------------------------------------------ *)
(* hoyan verify                                                        *)
(* ------------------------------------------------------------------ *)

let verify params seed plan_file devices intents distributed fail_prob
    chaos_mode chaos_seed degrade diff inc selfcheck trace_out metrics_out
    journal_out =
  with_telemetry ~trace_out ~metrics_out ~journal_out @@ fun () ->
  match chaos_of ~fail_prob ~chaos_mode ~chaos_seed with
  | Error msg ->
      prerr_endline msg;
      2
  | Ok chaos ->
  let g = gen params seed in
  let base =
    Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
      ~monitored_flows:g.G.flows
  in
  let block =
    match plan_file with
    | None -> ""
    | Some f ->
        let ic = open_in f in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
  in
  let commands = List.map (fun d -> (d, block)) devices in
  let rq_intents =
    List.map (fun spec -> Intents.Route_change spec) intents
  in
  let rq_intents =
    if rq_intents = [] then [ Intents.Route_change "PRE = POST" ]
    else rq_intents
  in
  let rq =
    {
      Verify_request.rq_name =
        Option.value plan_file ~default:"(no-op change)";
      rq_plan = Cp.make "cli" ~commands;
      rq_intents;
    }
  in
  let mode =
    match distributed with
    | None -> Verify_request.Direct
    | Some servers -> Verify_request.Distributed { servers; subtasks = 100 }
  in
  let on_partial = if degrade then `Degrade else `Refuse in
  (* --inc / --selfcheck both need a captured converged-base context *)
  let ictx =
    if inc || selfcheck then
      Some
        (Incremental.capture ~model:g.G.model
           ~input_routes:base.Preprocess.b_input_routes
           ~flows:base.Preprocess.b_flows
           ~rib:(Lazy.force base.Preprocess.b_rib) ())
    else None
  in
  let selfcheck_ok =
    match ictx with
    | Some cx when selfcheck ->
        let ck = Incremental.selfcheck cx rq.Verify_request.rq_plan in
        Printf.printf
          "selfcheck: rib %s, traffic %s (%d dirty prefix(es), %d delta \
           row(s), %d reused%s)\n"
          (if ck.Incremental.ck_rib_ok then "identical" else "MISMATCH")
          (if ck.Incremental.ck_traffic_ok then "identical" else "MISMATCH")
          ck.Incremental.ck_stats.Incremental.st_dirty_prefixes
          ck.Incremental.ck_stats.Incremental.st_delta_rows
          ck.Incremental.ck_stats.Incremental.st_reused_rows
          (if ck.Incremental.ck_stats.Incremental.st_full_fallback then
             "; full fallback"
           else "");
        ck.Incremental.ck_ok
    | _ -> true
  in
  let inc_ctx = if inc then ictx else None in
  let res =
    Verify_request.run ~mode ~chaos ~on_partial ~diff ?inc:inc_ctx base rq
  in
  print_string (Verify_request.report res);
  if res.Verify_request.vr_ok && selfcheck_ok then 0 else 1

let verify_cmd =
  let plan =
    Arg.(value & opt (some file) None
         & info [ "plan" ] ~docv:"FILE"
             ~doc:"Change-plan command block (applied to each --device).")
  in
  let devices =
    Arg.(value & opt_all string []
         & info [ "device" ] ~docv:"NAME" ~doc:"Target device (repeatable).")
  in
  let intents =
    Arg.(value & opt_all string []
         & info [ "intent" ] ~docv:"RCL"
             ~doc:"Route-change intent in RCL (repeatable); defaults to \
                   'PRE = POST'.")
  in
  let distributed =
    Arg.(value & opt (some int) None
         & info [ "distributed" ] ~docv:"SERVERS"
             ~doc:"Verify through the distributed framework.")
  in
  let degrade =
    Arg.(value & flag
         & info [ "degrade" ]
             ~doc:"With --distributed and permanently-failed subtasks: \
                   verify intents over the partial results anyway \
                   (flagged, never PASS) instead of withholding the \
                   verdicts.")
  in
  let diff =
    Arg.(value & flag
         & info [ "diff" ]
             ~doc:"Differential mode: carry over the verdict of every \
                   intent whose prefix lies outside the plan's static \
                   dirty region (no re-simulation) and simulate only \
                   the remainder.")
  in
  let inc =
    Arg.(value & flag
         & info [ "inc" ]
             ~doc:"Incremental simulation: re-converge only the plan's \
                   dirty region and splice into the cached converged \
                   base (direct mode; broad plans fall back to a full \
                   run, reported).")
  in
  let selfcheck =
    Arg.(value & flag
         & info [ "selfcheck" ]
             ~doc:"Run the splice oracle: the incrementally spliced RIB \
                   and traffic must be byte-identical to a full \
                   from-scratch run of the patched model.  Non-zero \
                   exit on mismatch.")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a change plan against RCL intents")
    Term.(
      const verify $ scale_arg $ seed_arg $ plan $ devices $ intents
      $ distributed $ fail_prob_arg $ chaos_mode_arg $ chaos_seed_arg
      $ degrade $ diff $ inc $ selfcheck $ trace_out_arg $ metrics_out_arg
      $ journal_out_arg)

(* ------------------------------------------------------------------ *)
(* hoyan lint                                                          *)
(* ------------------------------------------------------------------ *)

let read_file f =
  let ic = open_in f in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Shared tail of `hoyan lint` / `hoyan analyze`: optional baseline
   suppression, optional baseline recording, rendering, and the CLI
   exit-code contract (0 clean, 1 warnings over --max-warnings, 2 any
   error). *)
let finish_diags ~json ~max_warnings ~baseline ~write_baseline ~label diags =
  match write_baseline with
  | Some f ->
      let oc = open_out f in
      output_string oc (Diagnostics.to_baseline diags);
      close_out oc;
      Printf.printf "%s: recorded %d finding(s) into baseline %s\n" label
        (List.length diags) f;
      0
  | None ->
      let diags =
        match baseline with
        | None -> diags
        | Some f ->
            Diagnostics.apply_baseline
              ~baseline:(Diagnostics.parse_baseline (read_file f))
              diags
      in
      if json then print_string (Diagnostics.list_to_json diags)
      else begin
        List.iter (fun d -> print_endline (Diagnostics.to_string d)) diags;
        Printf.printf "%s: %s\n" label (Diagnostics.summary diags)
      end;
      Diagnostics.exit_code ~max_warnings diags

let lint params seed plan_file devices intents json inject deep max_warnings
    baseline write_baseline =
  let g = gen params seed in
  let model = g.G.model in
  let configs = model.Hoyan_sim.Model.configs in
  let topo = model.Hoyan_sim.Model.topo in
  match inject with
  | Some cls ->
      (* plant defect(s) into the clean corpus and report whether the
         expected diagnostic fires (through the full static-analysis
         stack: per-device lint + cross-device semantic pass) *)
      let injected =
        if String.equal cls "all" then Defects.inject_all g
        else [ Defects.inject g cls ]
      in
      let ok =
        List.for_all
          (fun (inj : Defects.injected) ->
            let diags = Defects.detect inj in
            let fired =
              List.exists
                (fun (d : Diagnostics.t) ->
                  String.equal d.Diagnostics.d_code inj.Defects.inj_code)
                diags
            in
            Printf.printf "%-28s %s %s%s\n" inj.Defects.inj_class
              inj.Defects.inj_code
              (if fired then "DETECTED" else "MISSED")
              (match inj.Defects.inj_device with
              | Some dev -> Printf.sprintf " (on %s)" dev
              | None -> "");
            fired)
          injected
      in
      if ok then 0 else 1
  | None ->
      let plan =
        match plan_file with
        | None -> None
        | Some f ->
            let block = read_file f in
            Some (Cp.make "cli" ~commands:(List.map (fun d -> (d, block)) devices))
      in
      let specs =
        List.mapi (fun i s -> (Printf.sprintf "intent-%d" i, s)) intents
      in
      let t0 = Unix.gettimeofday () in
      let input = Lint.make ~topo ?plan ~specs configs in
      let diags =
        Lint.run input @ (if deep then Semantic.analyze input else [])
      in
      let dt = Unix.gettimeofday () -. t0 in
      let code =
        finish_diags ~json ~max_warnings ~baseline ~write_baseline
          ~label:"lint" diags
      in
      if not json then
        Printf.printf "lint: %d device(s) in %.3fs%s\n"
          (Types.Smap.cardinal configs)
          dt
          (if deep then " (with the semantic pass)" else "");
      code

(* ------------------------------------------------------------------ *)
(* hoyan analyze: the cross-device semantic pass on its own             *)
(* ------------------------------------------------------------------ *)

let analyze params seed json max_warnings baseline write_baseline =
  let g = gen params seed in
  let model = g.G.model in
  let configs = model.Hoyan_sim.Model.configs in
  let topo = model.Hoyan_sim.Model.topo in
  let t0 = Unix.gettimeofday () in
  let input = Lint.make ~topo ~render:false configs in
  let graph = Semantic.build input in
  let diags = Semantic.check graph in
  let dt = Unix.gettimeofday () -. t0 in
  let code =
    finish_diags ~json ~max_warnings ~baseline ~write_baseline
      ~label:"analyze" diags
  in
  if not json then
    Printf.printf "analyze: control-plane graph %s (%.3fs)\n"
      (Semantic.stats_to_string graph.Semantic.g_stats)
      dt;
  code

let deep_arg =
  Arg.(value & flag
       & info [ "deep" ]
           ~doc:"Also run the cross-device semantic pass (control-plane \
                 graph + symbolic policy dataflow, HOY020-HOY028) on top \
                 of the per-device lint.")

let max_warnings_arg =
  Arg.(value & opt int 0
       & info [ "max-warnings" ] ~docv:"N"
           ~doc:"Tolerate up to $(docv) warning-severity findings before \
                 exiting 1 (errors always exit 2).")

let baseline_arg =
  Arg.(value & opt (some file) None
       & info [ "baseline" ] ~docv:"FILE"
           ~doc:"Suppress findings recorded in $(docv) (see \
                 $(b,--write-baseline)); only new findings count toward \
                 the exit code.")

let write_baseline_arg =
  Arg.(value & opt (some string) None
       & info [ "write-baseline" ] ~docv:"FILE"
           ~doc:"Record the current findings into $(docv) and exit 0; \
                 pass the file back via $(b,--baseline) to ratchet.")

let lint_cmd =
  let plan =
    Arg.(value & opt (some file) None
         & info [ "plan" ] ~docv:"FILE"
             ~doc:"Change-plan command block to lint (applied to each \
                   --device).")
  in
  let devices =
    Arg.(value & opt_all string []
         & info [ "device" ] ~docv:"NAME" ~doc:"Target device (repeatable).")
  in
  let intents =
    Arg.(value & opt_all string []
         & info [ "intent" ] ~docv:"RCL"
             ~doc:"RCL specification to lint (repeatable).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Machine-readable JSON diagnostics output.")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"CLASS"
             ~doc:"Plant a lintable defect ($(b,all) or a check name, e.g. \
                   $(b,undefined-prefix-list)) and report whether its \
                   diagnostic fires.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyse configs, a change plan and RCL specs \
             (no simulation)")
    Term.(
      const lint $ scale_arg $ seed_arg $ plan $ devices $ intents $ json
      $ inject $ deep_arg $ max_warnings_arg $ baseline_arg
      $ write_baseline_arg)

(* ------------------------------------------------------------------ *)
(* hoyan analyze                                                       *)
(* ------------------------------------------------------------------ *)

let analyze_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Machine-readable JSON diagnostics output.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Whole-network semantic analysis: build the control-plane \
             graph (BGP sessions, IS-IS adjacencies, redistribution and \
             VRF leak edges) and run the cross-device checks \
             (HOY020-HOY028), without simulating")
    Term.(
      const analyze $ scale_arg $ seed_arg $ json $ max_warnings_arg
      $ baseline_arg $ write_baseline_arg)

(* ------------------------------------------------------------------ *)
(* hoyan diff: the differential change-impact pass                      *)
(* ------------------------------------------------------------------ *)

let diff_run params seed plan_file devices withdraws json max_warnings
    baseline write_baseline =
  let g = gen params seed in
  let model = g.G.model in
  let configs = model.Hoyan_sim.Model.configs in
  let topo = model.Hoyan_sim.Model.topo in
  let block = read_file plan_file in
  let withdraw = List.map Prefix.of_string_exn withdraws in
  let plan =
    Cp.make "cli" ~withdraw
      ~commands:(List.map (fun d -> (d, block)) devices)
  in
  let t0 = Unix.gettimeofday () in
  let input = Lint.make ~topo ~render:false configs in
  let d = Differential.diff input plan in
  let diags = Differential.check ~input_routes:g.G.input_routes d in
  let dt = Unix.gettimeofday () -. t0 in
  let code =
    finish_diags ~json ~max_warnings ~baseline ~write_baseline ~label:"diff"
      diags
  in
  if not json then begin
    Printf.printf "diff: %s (%.3fs)\n" (Differential.summary d) dt;
    let im = Differential.impact d ~input_routes:g.G.input_routes in
    Printf.printf "impact: %d device(s), %s\n"
      (List.length im.Differential.im_devices)
      (if im.Differential.im_all_prefixes then
         "every prefix (topology change)"
       else
         Printf.sprintf "%d dirty prefix(es)"
           (Trie.Dual.cardinal im.Differential.im_prefixes))
  end;
  code

let diff_cmd =
  let plan =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"PLAN"
             ~doc:"Change-plan command block to diff (applied to each \
                   --device against the generated base corpus).")
  in
  let devices =
    Arg.(value & opt_all string []
         & info [ "device" ] ~docv:"NAME" ~doc:"Target device (repeatable).")
  in
  let withdraws =
    Arg.(value & opt_all string []
         & info [ "withdraw" ] ~docv:"PREFIX"
             ~doc:"Prefix the plan withdraws (repeatable).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Machine-readable JSON diagnostics output.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Differential change-impact analysis: semantically diff the \
             base corpus against the patched one, classify the plan \
             (no-op / local / propagating), run the plan-risk checks \
             (HOY030-HOY037) and report the blast radius, without \
             simulating")
    Term.(
      const diff_run $ scale_arg $ seed_arg $ plan $ devices $ withdraws
      $ json $ max_warnings_arg $ baseline_arg $ write_baseline_arg)

(* ------------------------------------------------------------------ *)
(* hoyan rcl                                                           *)
(* ------------------------------------------------------------------ *)

let rcl spec explain =
  match Hoyan_rcl.Parser.parse spec with
  | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      1
  | Ok ast ->
      Printf.printf "parsed: %s\nsize: %d internal nodes\n"
        (Hoyan_rcl.Pretty.intent ast)
        (Hoyan_rcl.Ast.size ast);
      if explain then begin
        (* evaluate against the Figure-6 example RIBs *)
        let ip = Ip.of_string_exn and pfx = Prefix.of_string_exn in
        let comm = Community.of_string_exn in
        let route ~device ~vrf ~prefix ~communities ~lp ~nexthop =
          Route.make ~device ~vrf ~prefix:(pfx prefix)
            ~communities:(Community.Set.of_list (List.map comm communities))
            ~local_pref:lp ~nexthop:(ip nexthop) ()
        in
        let base =
          [
            route ~device:"A" ~vrf:"global" ~prefix:"10.0.0.0/24"
              ~communities:[ "100:1" ] ~lp:100 ~nexthop:"2.0.0.1";
            route ~device:"A" ~vrf:"vrf1" ~prefix:"20.0.0.0/24"
              ~communities:[ "100:1"; "200:1" ] ~lp:10 ~nexthop:"3.0.0.1";
            route ~device:"B" ~vrf:"global" ~prefix:"10.0.0.0/24"
              ~communities:[ "100:1" ] ~lp:200 ~nexthop:"4.0.0.1";
          ]
        in
        let updated =
          List.map
            (fun (r : Route.t) ->
              if Prefix.equal r.Route.prefix (pfx "10.0.0.0/24") then
                Route.with_local_pref r 300
              else r)
            base
        in
        match Hoyan_rcl.Verify.check ast ~base ~updated with
        | Hoyan_rcl.Verify.Satisfied ->
            Printf.printf "against the Figure-6 RIBs: SATISFIED\n"
        | Hoyan_rcl.Verify.Violated vs ->
            Printf.printf "against the Figure-6 RIBs: VIOLATED\n";
            List.iter
              (fun v ->
                Printf.printf "  %s\n" (Hoyan_rcl.Verify.violation_to_string v))
              vs
      end;
      0

let rcl_cmd =
  let spec =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"SPEC" ~doc:"The RCL specification.")
  in
  let explain =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Also evaluate against the paper's Figure-6 example RIBs.")
  in
  Cmd.v
    (Cmd.info "rcl" ~doc:"Parse (and optionally evaluate) an RCL intent")
    Term.(const rcl $ spec $ explain)

(* ------------------------------------------------------------------ *)
(* hoyan diagnose / audit / vsb / case                                 *)
(* ------------------------------------------------------------------ *)

let diagnose params seed =
  let g = gen params seed in
  let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  let traffic = Traffic_sim.run g.G.model ~rib ~flows:g.G.flows () in
  let monitored =
    Hoyan_monitor.Route_monitor.observe (Hoyan_monitor.Route_monitor.create ())
      rib
  in
  let loads =
    Hoyan_monitor.Traffic_monitor.observe_link_loads
      (Hoyan_monitor.Traffic_monitor.create ())
      traffic.Traffic_sim.link_load
  in
  let report =
    Hoyan_diag.Validate.daily ~simulated_rib:rib ~monitored_rib:monitored
      ~topo:g.G.model.Hoyan_sim.Model.topo
      ~simulated_loads:traffic.Traffic_sim.link_load ~monitored_loads:loads ()
  in
  Printf.printf
    "daily accuracy validation: %d routes checked, %d links checked\n"
    report.Hoyan_diag.Validate.rep_routes_checked
    report.Hoyan_diag.Validate.rep_links_checked;
  Printf.printf "route discrepancies: %d; load discrepancies: %d -> %s\n"
    (List.length report.Hoyan_diag.Validate.rep_route_issues)
    (List.length report.Hoyan_diag.Validate.rep_load_issues)
    (if Hoyan_diag.Validate.is_accurate report then "ACCURATE"
     else "NEEDS ROOT-CAUSE ANALYSIS");
  0

let diagnose_cmd =
  Cmd.v
    (Cmd.info "diagnose" ~doc:"Run the daily accuracy cross-validation")
    Term.(const diagnose $ scale_arg $ seed_arg)

let audit params seed =
  let g = gen params seed in
  let base =
    Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
      ~monitored_flows:g.G.flows
  in
  let rib = Lazy.force base.Preprocess.b_rib in
  let tasks =
    [
      Audit.critical_prefix_everywhere
        ~prefix:(Prefix.of_string_exn "0.0.0.0/0");
      Audit.utilization_bound ~max_util:0.95;
      Audit.group_consistency ~name:"borders" ~group:g.G.borders;
    ]
  in
  let findings =
    Audit.run_all tasks ~model:g.G.model ~rib ~traffic:base.Preprocess.b_traffic
  in
  if findings = [] then begin
    print_endline "all audit tasks clean";
    0
  end
  else begin
    List.iter
      (fun (f : Audit.finding) ->
        Printf.printf "%s: %s\n" f.Audit.af_task f.Audit.af_detail)
      findings;
    1
  end

let audit_cmd =
  Cmd.v
    (Cmd.info "audit" ~doc:"Run the daily configuration-audit tasks")
    Term.(const audit $ scale_arg $ seed_arg)

let vsb () =
  List.iter
    (fun (d : Hoyan_diag.Vsb_test.detection) ->
      Printf.printf "%-30s %s\n" d.Hoyan_diag.Vsb_test.det_dimension
        (if d.Hoyan_diag.Vsb_test.det_detected then "DETECTED" else "missed"))
    (Hoyan_diag.Vsb_test.run_all ());
  0

let vsb_cmd =
  Cmd.v
    (Cmd.info "vsb" ~doc:"Differential-test the 16 Table-5 VSB dimensions")
    Term.(const vsb $ const ())

let case name =
  let sc =
    match name with
    | "fig10a" -> S.fig10a ()
    | "fig10b" -> S.fig10b ()
    | _ -> failwith "unknown case (fig10a | fig10b)"
  in
  Printf.printf "%s\n%s\n\n" sc.S.sc_name sc.S.sc_description;
  let res = Verify_request.run sc.S.sc_base sc.S.sc_request in
  print_string (Verify_request.report res);
  if res.Verify_request.vr_ok then 0 else 1

let case_cmd =
  let case_arg =
    Arg.(required
         & pos 0
             (some (enum [ ("fig10a", "fig10a"); ("fig10b", "fig10b") ]))
             None
         & info [] ~docv:"CASE" ~doc:"fig10a or fig10b")
  in
  Cmd.v
    (Cmd.info "case" ~doc:"Replay a real-world incident from the paper (§6.1)")
    Term.(const case $ case_arg)

(* ------------------------------------------------------------------ *)
(* hoyan trace summarize                                               *)
(* ------------------------------------------------------------------ *)

let print_summary_table title (rows : Trace.summary_row list) =
  if rows <> [] then begin
    Printf.printf "%s\n" title;
    Printf.printf "  %-28s %8s %12s %12s %12s\n" "name" "count" "total(ms)"
      "mean(ms)" "max(ms)";
    List.iter
      (fun (r : Trace.summary_row) ->
        Printf.printf "  %-28s %8d %12.3f %12.3f %12.3f\n" r.Trace.sr_name
          r.Trace.sr_count r.Trace.sr_total_ms r.Trace.sr_mean_ms
          r.Trace.sr_max_ms)
      rows;
    print_newline ()
  end

let trace_summarize file top =
  match Tjson.of_string (read_file file) with
  | Error msg ->
      Printf.eprintf "%s: JSON parse error: %s\n" file msg;
      1
  | Ok json -> (
      match Trace.events_of_json json with
      | Error msg ->
          Printf.eprintf "%s: not a trace file: %s\n" file msg;
          1
      | Ok events ->
          Printf.printf "%s: %d events\n\n" file (List.length events);
          print_summary_table "per-phase (by span name):"
            (Trace.summarize events);
          let steps =
            List.filter
              (fun (e : Trace.event) ->
                String.equal e.Trace.te_name "worker.step")
              events
          in
          let by_subtask = Trace.summarize_by_arg "id" steps in
          let shown =
            List.filteri (fun i _ -> i < top) by_subtask
          in
          print_summary_table
            (Printf.sprintf "per-subtask (worker.step, top %d of %d by time):"
               (List.length shown) (List.length by_subtask))
            shown;
          0)

let trace_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"A Chrome trace-event JSON written by $(b,--trace).")
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N"
             ~doc:"Show the $(docv) most expensive subtasks.")
  in
  let summarize_cmd =
    Cmd.v
      (Cmd.info "summarize"
         ~doc:"Print per-phase and per-subtask time breakdowns of a trace")
      Term.(const trace_summarize $ file $ top)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect trace files written by --trace")
    [ summarize_cmd ]

(* ------------------------------------------------------------------ *)
(* hoyan serve                                                         *)
(* ------------------------------------------------------------------ *)

let serve params seed requests_file out_file metrics_out metrics_every
    queue_depth tenant_quota cache_capacity policy budget batch selfcheck
    servers no_timing =
  let text =
    try
      if requests_file = "-" then In_channel.input_all stdin
      else In_channel.with_open_text requests_file In_channel.input_all
    with Sys_error msg ->
      prerr_endline ("serve: " ^ msg);
      exit 2
  in
  match Request.parse text with
  | Error msg ->
      Printf.eprintf "serve: request stream: %s\n" msg;
      2
  | Ok requests ->
      let tm = Telemetry.create () in
      Telemetry.set tm;
      let g = gen params seed in
      let base =
        Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
          ~monitored_flows:g.G.flows
      in
      let policy =
        match policy with
        | "fifo" -> Hoyan_dist.Schedule.Fifo
        | "lpt" -> Hoyan_dist.Schedule.Lpt
        | p ->
            Printf.eprintf "serve: unknown --policy %S (fifo or lpt)\n" p;
            exit 2
      in
      let config =
        {
          Server.c_queue_depth = queue_depth;
          c_tenant_quota = tenant_quota;
          c_cache_capacity = cache_capacity;
          c_policy = policy;
          c_default_budget_s =
            Option.value budget ~default:Server.default_config.Server.c_default_budget_s;
        }
      in
      let srv = Server.create ~tm ~config () in
      let snap = Server.register_snapshot srv base in
      Printf.printf "%s\n" (Hoyan_server.Snapshot.to_string snap);
      let oc = Option.map open_out out_file in
      let emit r =
        let s = Server.response_to_string ~timing:(not no_timing) r in
        match oc with Some oc -> output_string oc s | None -> print_string s
      in
      let served = ref 0 in
      let last_dump = ref 0 in
      let dump_metrics () =
        Option.iter
          (fun path -> Metrics.write_prometheus_file tm.Telemetry.metrics path)
          metrics_out
      in
      let maybe_dump () =
        if metrics_every > 0 && !served - !last_dump >= metrics_every then begin
          last_dump := !served;
          dump_metrics ()
        end
      in
      let flush_queue () =
        let rs = Server.drain srv in
        List.iter
          (fun r ->
            emit r;
            incr served;
            maybe_dump ())
          rs;
        rs
      in
      let all = ref [] in
      let pending_in_batch = ref 0 in
      List.iter
        (fun rq ->
          (match Server.submit srv rq with
          | Stdlib.Ok () -> incr pending_in_batch
          | Stdlib.Error r ->
              emit r;
              incr served;
              all := r :: !all;
              maybe_dump ());
          if !pending_in_batch >= batch then begin
            all := List.rev_append (flush_queue ()) !all;
            pending_in_batch := 0
          end)
        requests;
      all := List.rev_append (flush_queue ()) !all;
      Option.iter close_out oc;
      dump_metrics ();
      Option.iter
        (fun path ->
          Printf.printf "metrics: %d updates -> %s\n"
            (Metrics.ops tm.Telemetry.metrics)
            path)
        metrics_out;
      let responses = List.rev !all in
      (* --selfcheck: every executed verdict must be byte-identical to a
         direct Verify_request.run of the same request (the service
         contract the bench also asserts) *)
      let mismatches =
        if not selfcheck then 0
        else
          List.fold_left
            (fun acc (r : Server.response) ->
              match r.Server.rs_status with
              | Server.Ok | Server.Fail -> (
                  match List.nth_opt requests r.Server.rs_seq with
                  | None -> acc
                  | Some rq ->
                      let snap =
                        match rq.Request.r_snapshot with
                        | Some d ->
                            Option.value (Server.find_snapshot srv d)
                              ~default:snap
                        | None -> snap
                      in
                      let st, body = Server.run_direct snap rq in
                      if
                        st = r.Server.rs_status
                        && String.equal body r.Server.rs_body
                      then acc
                      else begin
                        Printf.eprintf
                          "selfcheck MISMATCH: request %s (seq %d)\n"
                          r.Server.rs_id r.Server.rs_seq;
                        acc + 1
                      end)
              | _ -> acc)
            0 responses
      in
      if selfcheck then
        Printf.printf "selfcheck: %d verdict(s) compared, %d mismatch(es)\n"
          (List.length
             (List.filter
                (fun (r : Server.response) ->
                  match r.Server.rs_status with
                  | Server.Ok | Server.Fail -> true
                  | _ -> false)
                responses))
          mismatches;
      print_string (Server.report srv);
      List.iter
        (fun n ->
          Printf.printf "modelled makespan on %d server(s): %.3fs\n" n
            (Server.modelled_makespan srv ~servers:n))
        servers;
      Telemetry.set Telemetry.noop;
      let errors =
        List.exists
          (fun (r : Server.response) ->
            match r.Server.rs_status with Server.Error _ -> true | _ -> false)
          responses
      in
      if errors || mismatches > 0 then 1 else 0

let serve_cmd =
  let requests =
    Arg.(value & opt string "-"
         & info [ "requests" ] ~docv:"FILE"
             ~doc:"Request stream in the serve transport format ($(b,-) = \
                   stdin; see README for the grammar).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write responses to $(docv) instead of stdout.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write server metrics in Prometheus text exposition \
                   format to $(docv) on shutdown (and periodically with \
                   $(b,--metrics-every)).")
  in
  let metrics_every =
    Arg.(value & opt int 0
         & info [ "metrics-every" ] ~docv:"N"
             ~doc:"Also rewrite $(b,--metrics-out) every $(docv) served \
                   requests (0 = only on shutdown).")
  in
  let queue_depth =
    Arg.(value & opt int Server.default_config.Server.c_queue_depth
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission bound: maximum queued requests.")
  in
  let tenant_quota =
    Arg.(value & opt int Server.default_config.Server.c_tenant_quota
         & info [ "tenant-quota" ] ~docv:"N"
             ~doc:"Admission bound: maximum queued requests per tenant.")
  in
  let cache_capacity =
    Arg.(value & opt int Server.default_config.Server.c_cache_capacity
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"Result-cache entries (LRU beyond; 0 disables).")
  in
  let policy =
    Arg.(value & opt string "fifo"
         & info [ "policy" ] ~docv:"POLICY"
             ~doc:"Drain order: $(b,fifo) (submission order) or $(b,lpt) \
                   (cost-model longest-first).")
  in
  let budget =
    Arg.(value & opt (some float) None
         & info [ "budget" ] ~docv:"SECONDS"
             ~doc:"Default per-request execution budget (lease seconds) \
                   for requests that name none.")
  in
  let batch =
    Arg.(value & opt int 32
         & info [ "batch" ] ~docv:"N"
             ~doc:"Drain the queue after every $(docv) admitted requests \
                   (the service loop's batching grain).")
  in
  let selfcheck =
    Arg.(value & flag
         & info [ "selfcheck" ]
             ~doc:"After serving, re-run every executed request directly \
                   through the verification pipeline and assert the \
                   served verdict is byte-identical.")
  in
  let servers =
    Arg.(value & opt_all int []
         & info [ "servers" ] ~docv:"N"
             ~doc:"Report the modelled makespan of the served load on \
                   $(docv) verification servers (repeatable).")
  in
  let no_timing =
    Arg.(value & flag
         & info [ "no-timing" ]
             ~doc:"Omit latency fields from responses (stable output for \
                   smoke tests).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve verification requests over a shared snapshot")
    Term.(
      const serve $ scale_arg $ seed_arg $ requests $ out $ metrics_out
      $ metrics_every $ queue_depth $ tenant_quota $ cache_capacity $ policy
      $ budget $ batch $ selfcheck $ servers $ no_timing)

(* ------------------------------------------------------------------ *)
(* hoyan whatif: exhaustive k-failure verification                      *)
(* ------------------------------------------------------------------ *)

let whatif params seed k devices no_links prefix on prop_name max_util
    max_scenarios no_prune json selfcheck trace_out metrics_out journal_out =
  with_telemetry ~trace_out ~metrics_out ~journal_out @@ fun () ->
  let module Kfailure = Hoyan_core.Kfailure in
  let g = gen params seed in
  let model = g.G.model in
  let links = not no_links in
  if no_links && not devices then begin
    prerr_endline "whatif: --no-links without --devices leaves nothing to fail";
    2
  end
  else
    let prefix =
      match prefix with
      | Some p -> (
          match Prefix.of_string p with
          | Some p -> Ok p
          | None -> Error (Printf.sprintf "whatif: bad --prefix %S" p))
      | None -> (
          (* default: the first monitored input route's prefix *)
          match g.G.input_routes with
          | r :: _ -> Ok r.Route.prefix
          | [] -> Error "whatif: no input routes; pass --prefix")
    in
    match prefix with
    | Error msg ->
        prerr_endline msg;
        2
    | Ok prefix -> (
        let monitored =
          match on with
          | Some s -> String.split_on_char ',' s |> List.filter (( <> ) "")
          | None -> g.G.borders
        in
        let prop =
          match prop_name with
          | "reach" ->
              Ok (Kfailure.prefix_survives ~prefix ~devices:monitored)
          | "overload" -> Ok (Kfailure.no_overload ~max_util)
          | p ->
              Error
                (Printf.sprintf
                   "whatif: unknown --prop %S (reach or overload)" p)
        in
        match prop with
        | Error msg ->
            prerr_endline msg;
            2
        | Ok prop ->
            let t0 = Unix.gettimeofday () in
            let res =
              Kfailure.check ~prune:(not no_prune) ?max_scenarios ~devices
                ~links model ~input_routes:g.G.input_routes ~flows:g.G.flows
                ~k prop
            in
            let dt = Unix.gettimeofday () -. t0 in
            let mismatches =
              if not selfcheck then 0
              else begin
                (* in-process soundness oracle: the pruned sweep must be
                   indistinguishable from brute force *)
                let brute =
                  Kfailure.check ~prune:false ~devices ~links model
                    ~input_routes:g.G.input_routes ~flows:g.G.flows ~k prop
                in
                let viol r =
                  List.map
                    (fun (s : Kfailure.scenario_result) ->
                      List.map Kfailure.failure_to_string
                        s.Kfailure.sr_failures)
                    r.Kfailure.kr_violations
                  |> List.sort compare
                in
                let b = viol brute and p = viol res in
                if b = p then begin
                  Printf.printf
                    "selfcheck: pruned == brute force (%d violating \
                     scenario(s))\n"
                    (List.length b);
                  0
                end
                else begin
                  Printf.eprintf
                    "selfcheck MISMATCH: brute %d vs pruned %d violating \
                     scenario(s)\n"
                    (List.length b) (List.length p);
                  1
                end
              end
            in
            if json then begin
              let scenario_json (s : Kfailure.scenario_result) =
                Tjson.Obj
                  [
                    ( "failures",
                      Tjson.List
                        (List.map
                           (fun f ->
                             Tjson.String (Kfailure.failure_to_string f))
                           s.Kfailure.sr_failures) );
                    ( "violation",
                      match s.Kfailure.sr_violation with
                      | Some r -> Tjson.String r
                      | None -> Tjson.Null );
                  ]
              in
              print_endline
                (Tjson.to_string
                   (Tjson.Obj
                      [
                        ("property", Tjson.String res.Kfailure.kr_property);
                        ("k", Tjson.Int res.Kfailure.kr_k);
                        ("total", Tjson.Int res.Kfailure.kr_total);
                        ("checked", Tjson.Int res.Kfailure.kr_checked);
                        ("carried", Tjson.Int res.Kfailure.kr_carried);
                        ("replicated", Tjson.Int res.Kfailure.kr_replicated);
                        ("static", Tjson.Int res.Kfailure.kr_static);
                        ("simulated", Tjson.Int res.Kfailure.kr_simulated);
                        ("sampled", Tjson.Bool res.Kfailure.kr_sampled);
                        ( "violations",
                          Tjson.List
                            (List.map scenario_json res.Kfailure.kr_violations)
                        );
                        ("seconds", Tjson.Float dt);
                      ]))
            end
            else begin
              Printf.printf "property: %s\n" res.Kfailure.kr_property;
              Printf.printf
                "scenarios: %d total (k<=%d); %d carried from base, %d \
                 static, %d replicated, %d simulated%s\n"
                res.Kfailure.kr_total res.Kfailure.kr_k
                res.Kfailure.kr_carried res.Kfailure.kr_static
                res.Kfailure.kr_replicated res.Kfailure.kr_simulated
                (if res.Kfailure.kr_sampled then
                   Printf.sprintf " (SAMPLED: %d of %d checked)"
                     res.Kfailure.kr_checked res.Kfailure.kr_total
                 else "");
              if res.Kfailure.kr_violations = [] then
                Printf.printf "verdict: HOLDS under all checked scenarios \
                               (%.3fs)\n"
                  dt
              else begin
                Printf.printf "verdict: %d violating scenario(s) (%.3fs)\n"
                  (List.length res.Kfailure.kr_violations)
                  dt;
                List.iter
                  (fun (s : Kfailure.scenario_result) ->
                    Printf.printf "  [%s] %s\n"
                      (String.concat ", "
                         (List.map Kfailure.failure_to_string
                            s.Kfailure.sr_failures))
                      (Option.value s.Kfailure.sr_violation ~default:""))
                  res.Kfailure.kr_violations
              end
            end;
            if mismatches > 0 then 2
            else if res.Kfailure.kr_violations <> [] then 1
            else 0)

let whatif_cmd =
  let k =
    Arg.(value & opt int 1
         & info [ "k" ] ~docv:"K"
             ~doc:"Check the property under every combination of at most \
                   $(docv) simultaneous failures.")
  in
  let devices =
    Arg.(value & flag
         & info [ "devices" ]
             ~doc:"Include single-device failures in the candidate set.")
  in
  let no_links =
    Arg.(value & flag
         & info [ "no-links" ]
             ~doc:"Exclude link failures from the candidate set (with \
                   $(b,--devices): device failures only).")
  in
  let prefix =
    Arg.(value & opt (some string) None
         & info [ "prefix" ] ~docv:"PREFIX"
             ~doc:"Prefix the $(b,reach) property tracks (default: the \
                   first monitored input route's prefix).")
  in
  let on =
    Arg.(value & opt (some string) None
         & info [ "on" ] ~docv:"DEV,DEV"
             ~doc:"Devices the $(b,reach) property must hold on, \
                   comma-separated (default: the generated border set).")
  in
  let prop =
    Arg.(value & opt string "reach"
         & info [ "prop" ] ~docv:"PROP"
             ~doc:"Property: $(b,reach) (prefix survives on the monitored \
                   devices; statically prunable) or $(b,overload) (no link \
                   above $(b,--max-util); traffic-dependent, every \
                   scenario simulates).")
  in
  let max_util =
    Arg.(value & opt float 0.95
         & info [ "max-util" ] ~docv:"F"
             ~doc:"Utilization bound for $(b,--prop overload).")
  in
  let max_scenarios =
    Arg.(value & opt (some int) None
         & info [ "max-scenarios" ] ~docv:"N"
             ~doc:"Explicit sampling escape hatch: simulate at most \
                   $(docv) class representatives (deterministic stride); \
                   the drop is reported, never silent.")
  in
  let no_prune =
    Arg.(value & flag
         & info [ "no-prune" ]
             ~doc:"Bypass the static failure-equivalence analysis and \
                   simulate every scenario (the brute-force baseline).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Machine-readable JSON result output.")
  in
  let selfcheck =
    Arg.(value & flag
         & info [ "selfcheck" ]
             ~doc:"Also run the brute-force sweep in-process and assert \
                   the violating scenario sets are identical (exit 2 on \
                   mismatch).")
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:"Exhaustive k-failure what-if verification: statically \
             partition the failure scenarios into verdict-equivalence \
             classes (blast-radius pruning), simulate one representative \
             per class, and report per-tier counts")
    Term.(
      const whatif $ scale_arg $ seed_arg $ k $ devices $ no_links $ prefix
      $ on $ prop $ max_util $ max_scenarios $ no_prune $ json $ selfcheck
      $ trace_out_arg $ metrics_out_arg $ journal_out_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc = "Hoyan: global WAN change verification (SIGCOMM'25 reproduction)" in
  let info = Cmd.info "hoyan" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            simulate_cmd; verify_cmd; lint_cmd; analyze_cmd; diff_cmd;
            rcl_cmd; diagnose_cmd; audit_cmd; vsb_cmd; case_cmd; trace_cmd;
            serve_cmd; whatif_cmd;
          ]))
