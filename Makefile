# Convenience targets; tier-1 verification is `dune build && dune runtest`.

.PHONY: all build test bench perf smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full perf harness: writes BENCH_PR1.json (see DESIGN.md §2.1).
perf:
	dune exec bench/main.exe -- --perf

# Tier-1 smoke: build, tests, and a quick perf-harness pass so the
# multicore pipeline and its identity assertions are exercised in CI.
smoke:
	dune build
	dune runtest
	dune exec bench/main.exe -- --perf --quick

clean:
	dune clean
