# Convenience targets; tier-1 verification is `dune build && dune runtest`.

.PHONY: all build test bench perf lint check telemetry-bench smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full perf harness: writes the per-PR JSON (see DESIGN.md §2.1).
perf:
	dune exec bench/main.exe -- --perf --out BENCH_PR2.json

# Static analysis: build with the strict warning set, then run the
# `hoyan lint` pass over a generated WAN corpus (exits non-zero on any
# error-severity diagnostic; the corpus must come out clean).
lint:
	dune build @all
	dune exec bin/hoyan_cli.exe -- lint --scale small
	dune exec bin/hoyan_cli.exe -- lint --scale wan

# Everything a PR must keep green: strict-warning build of every
# target (libs, bins, bench, tests), the full test suite, then the
# static-analysis gate over the generated corpora.
check:
	dune build @all
	dune runtest
	$(MAKE) lint

# Telemetry cost section: noop-guard microbench + live-handle overhead
# on the full WAN simulation; writes BENCH_PR3.json (DESIGN.md §2.3).
telemetry-bench:
	dune exec bench/main.exe -- --telemetry

# Tier-1 smoke: build, tests, and a quick perf-harness pass so the
# multicore pipeline and its identity assertions are exercised in CI.
smoke:
	dune build
	dune runtest
	dune exec bench/main.exe -- --perf --quick

clean:
	dune clean
