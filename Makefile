# Convenience targets; tier-1 verification is `dune build && dune runtest`.

.PHONY: all build test bench perf route-bench lint analyze diff \
	diff-bench serve serve-bench whatif whatif-bench inc inc-bench \
	check telemetry-bench semantic-bench chaos smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full perf harness: writes the per-PR JSON (see DESIGN.md §2.1).
perf:
	dune exec bench/main.exe -- --perf --out BENCH_PR6.json

# Quick route-phase gate: sequential-vs-parallel identity (multiset vs
# the sequential reference, byte-identity across domain counts) on the
# packed-key arena pipeline (DESIGN.md §2.6).
route-bench:
	dune exec bench/main.exe -- --route-bench --quick

# Static analysis: build with the strict warning set, then run the
# `hoyan lint` pass over a generated WAN corpus (exits non-zero on any
# error-severity diagnostic; the corpus must come out clean).
lint:
	dune build @all
	dune exec bin/hoyan_cli.exe -- lint --deep --scale small
	dune exec bin/hoyan_cli.exe -- lint --deep --scale wan

# Cross-device semantic pass on its own: control-plane graph + the
# HOY020-HOY028 checks over the generated corpora (exit-code contract:
# 0 clean, 1 over the warning budget, 2 on any error).
analyze:
	dune build @all
	dune exec bin/hoyan_cli.exe -- analyze --scale small
	dune exec bin/hoyan_cli.exe -- analyze --scale wan

# Differential change-impact gate: `hoyan diff` over a sample
# propagating plan against the generated corpus (exit-code contract as
# lint/analyze), then the soundness cross-check from the test suite —
# every (device, prefix) verdict the simulator changes must fall inside
# the statically computed dirty region (DESIGN.md §2.7).
diff:
	dune build @all
	printf 'router bgp 64512\n network 198.51.100.0/24\n' > /tmp/hoyan_diff_plan.txt
	dune exec bin/hoyan_cli.exe -- diff /tmp/hoyan_diff_plan.txt --device r00-bdr01
	dune exec test/test_main.exe -- test differential

# Differential pass cost vs a full patched-model simulation on the WAN
# workload; writes BENCH_PR7.json (DESIGN.md §2.7).
diff-bench:
	dune exec bench/main.exe -- --diff-bench

# Serve smoke: the example request stream through the verification
# server with --selfcheck, which re-runs every executed request
# directly through Verify_request.run and asserts the served verdict
# is byte-identical (exit 1 on any mismatch or execution error), plus
# the server test suite (DESIGN.md §2.8).
serve:
	dune build @all
	dune exec bin/hoyan_cli.exe -- serve \
	  --requests examples/serve_requests.txt --selfcheck --no-timing
	dune exec test/test_main.exe -- test server

# k-failure soundness gate: `hoyan whatif --selfcheck` runs the pruned
# sweep AND the brute-force sweep in-process and asserts identical
# violating scenario sets (exit 2 on mismatch), then the kfailure test
# suite replays the same oracle over hand-built and qcheck-generated
# topologies for k in {1,2} (DESIGN.md §2.9).
whatif:
	dune build @all
	dune exec bin/hoyan_cli.exe -- whatif --scale small -k 1 --selfcheck; \
	  test $$? -le 1
	dune exec bin/hoyan_cli.exe -- whatif --scale small -k 2 --devices \
	  --selfcheck; test $$? -le 1
	dune exec test/test_main.exe -- test kfailure

# Pruning ratio + wall clock of the exhaustive sweep vs brute force
# (brute measured at small scale, extrapolated at wan scale); writes
# BENCH_PR9.json (DESIGN.md §2.9).
whatif-bench:
	dune exec bench/main.exe -- --whatif-bench

# Incremental-splice soundness gate: `hoyan verify --inc --selfcheck`
# runs the dirty-region splice AND a full from-scratch patched run
# in-process and asserts the RIB + traffic results are identical (exit
# 1 on mismatch), then the incremental test suite replays the oracle
# over a qcheck plan family including withdraw-only/no-op plans and a
# deliberately pruned (unsound) dirty set (DESIGN.md §2.10).
inc:
	dune build @all
	dune exec bin/hoyan_cli.exe -- verify --inc --selfcheck
	dune exec test/test_main.exe -- test incremental

# 300-plan mixed batch against one captured converged base: spliced
# incremental runs vs full re-simulation (measured subsample + honest
# extrapolation, full-fallback counters); writes BENCH_PR10.json.
inc-bench:
	dune exec bench/main.exe -- --inc-bench

# Open-loop load at the server: >=1200 mixed requests over 8 tenants,
# byte-identity contract check against direct runs, per-class p50/p99,
# cache hit rate, admission rejections; writes BENCH_PR8.json.
serve-bench:
	dune exec bench/main.exe -- --serve-bench

# Everything a PR must keep green: strict-warning build of every
# target (libs, bins, bench, tests), the full test suite, then the
# static-analysis gate over the generated corpora.
check:
	dune build @all
	dune runtest
	$(MAKE) lint
	$(MAKE) analyze

# Telemetry cost section: noop-guard microbench + live-handle overhead
# on the full WAN simulation; writes BENCH_PR3.json (DESIGN.md §2.3).
telemetry-bench:
	dune exec bench/main.exe -- --telemetry

# Semantic gate cost: the cross-device pass + static intent pre-checker
# vs the full WAN simulation; writes BENCH_PR4.json (DESIGN.md §2.4).
semantic-bench:
	dune exec bench/main.exe -- --semantic

# Fault-tolerance gate: the dist test suite (fault matrix, named-victim
# regressions, chaos determinism) plus a quick chaos bench asserting the
# monitor-loop overhead and the recovery contract (completed phases are
# identical to the failure-free run); writes BENCH_PR5.json at --quick
# scale (DESIGN.md §2.5).
chaos:
	dune exec test/test_main.exe -- test dist
	dune exec bench/main.exe -- --chaos --quick --out /tmp/BENCH_PR5_quick.json

# Tier-1 smoke: build, tests, and a quick perf-harness pass so the
# multicore pipeline and its identity assertions are exercised in CI.
smoke:
	dune build
	dune runtest
	dune exec bench/main.exe -- --perf --quick

clean:
	dune clean
