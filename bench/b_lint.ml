(* --lint: cost of the static-analysis gate vs the full simulation.

   The gate's value proposition is that it runs in front of every
   change-verification request; it is only free lunch if its wall time
   is a small fraction of the simulation it guards.  This section
   measures both halves on the WAN workload: the lint pass (split into
   config rendering, which is cacheable, and the analysis itself) and
   the sequential route + traffic simulation it would gate. *)

open B_common
module G = Hoyan_workload.Generator
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Lint = Hoyan_analysis.Lint
module Diagnostics = Hoyan_analysis.Diagnostics

type measurement = {
  m_devices : int;
  m_render_s : float; (* Lint.make: render configs back to dialect text *)
  m_lint_s : float; (* Lint.run: the 19-check analysis pass *)
  m_diags : int;
  m_route_s : float;
  m_traffic_s : float;
}

let m_sim_s m = m.m_route_s +. m.m_traffic_s

let m_ratio m =
  let sim = m_sim_s m in
  if sim > 0. then (m.m_render_s +. m.m_lint_s) /. sim else nan

let measure () : measurement =
  let g = Lazy.force wan in
  let model = g.G.model in
  let input, t_render =
    time (fun () -> Lint.make ~topo:model.Model.topo model.Model.configs)
  in
  let diags, t_lint = time (fun () -> Lint.run input) in
  let direct, t_route =
    time (fun () -> Route_sim.run model ~input_routes:g.G.input_routes ())
  in
  let _, t_traffic =
    time (fun () ->
        Traffic_sim.run model ~rib:direct.Route_sim.rib ~flows:g.G.flows ())
  in
  {
    m_devices = G.device_count g;
    m_render_s = t_render;
    m_lint_s = t_lint;
    m_diags = List.length diags;
    m_route_s = t_route;
    m_traffic_s = t_traffic;
  }

let run () =
  header "static-analysis gate vs full simulation (wan workload)";
  let m = measure () in
  row "devices: %d   diagnostics on the clean corpus: %d (expected 0)"
    m.m_devices m.m_diags;
  row "lint: render %.4fs + analyse %.4fs = %.4fs" m.m_render_s m.m_lint_s
    (m.m_render_s +. m.m_lint_s);
  row "simulation: route %.2fs + traffic %.2fs = %.2fs" m.m_route_s
    m.m_traffic_s (m_sim_s m);
  let ratio = m_ratio m in
  row "gate cost: %.2f%% of full simulation (target: < 10%%)"
    (100. *. ratio);
  if m.m_diags <> 0 then
    row "WARNING: clean corpus produced diagnostics (false positives)";
  if ratio >= 0.10 then
    row "WARNING: gate costs more than 10%% of the simulation it guards"
