(* RCL experiments: the Figure 6/7 executable doc-test and Figure 8 (the
   50-specification corpus: specification-size CDF and verification-time
   CDF over the full WAN RIBs). *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module Route_sim = Hoyan_sim.Route_sim
module Rcl_parser = Hoyan_rcl.Parser
module Rcl_ast = Hoyan_rcl.Ast
module Rcl_verify = Hoyan_rcl.Verify

(* ------------------------------------------------------------------ *)

let figure6_7 () =
  header "Figures 6-7: the RCL running example, executed";
  let ip = Ip.of_string_exn and pfx = Prefix.of_string_exn in
  let comm = Community.of_string_exn in
  let route ~device ~vrf ~prefix ~communities ~lp ~nexthop =
    Route.make ~device ~vrf ~prefix:(pfx prefix)
      ~communities:(Community.Set.of_list (List.map comm communities))
      ~local_pref:lp ~nexthop:(ip nexthop) ()
  in
  let base =
    [
      route ~device:"A" ~vrf:"global" ~prefix:"10.0.0.0/24"
        ~communities:[ "100:1" ] ~lp:100 ~nexthop:"2.0.0.1";
      route ~device:"A" ~vrf:"vrf1" ~prefix:"20.0.0.0/24"
        ~communities:[ "100:1"; "200:1" ] ~lp:10 ~nexthop:"3.0.0.1";
      route ~device:"B" ~vrf:"global" ~prefix:"10.0.0.0/24"
        ~communities:[ "100:1" ] ~lp:200 ~nexthop:"4.0.0.1";
    ]
  in
  let updated =
    List.map
      (fun (r : Route.t) ->
        if Prefix.equal r.Route.prefix (pfx "10.0.0.0/24") then
          Route.with_local_pref r 300
        else r)
      base
  in
  List.iter
    (fun spec ->
      let verdict =
        match Rcl_verify.check_spec spec ~base ~updated with
        | Ok Rcl_verify.Satisfied -> "SATISFIED"
        | Ok (Rcl_verify.Violated _) -> "VIOLATED"
        | Error e -> "parse error: " ^ e
      in
      row "%-62s -> %s" spec verdict)
    [
      "prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}";
      "prefix != 10.0.0.0/24 => PRE = POST";
      "prefix = 10.0.0.0/24 => PRE = POST";
    ]

(* ------------------------------------------------------------------ *)
(* Figure 8: the 50-spec corpus                                         *)
(* ------------------------------------------------------------------ *)

(** Generate a corpus of [n] route-change-intent specifications in the
    shapes of the paper's §4.3 use cases, over the given RIB's devices
    and prefixes. *)
let spec_corpus ?(n = 50) ~(seed : int) (rib : Route.t list) : string list =
  let st = Random.State.make [| seed |] in
  let devices = Rib.Global.devices rib |> Array.of_list in
  let prefixes =
    List.map (fun (r : Route.t) -> r.Route.prefix) rib
    |> List.sort_uniq Prefix.compare |> Array.of_list
  in
  let pick arr = arr.(Random.State.int st (Array.length arr)) in
  let pick_devs k =
    List.init k (fun _ -> pick devices) |> List.sort_uniq String.compare
  in
  let pick_pfxs k =
    List.init k (fun _ -> Prefix.to_string (pick prefixes))
    |> List.sort_uniq String.compare
  in
  let dev_set k = "{" ^ String.concat ", " (pick_devs k) ^ "}" in
  let pfx_set k = "{" ^ String.concat ", " (pick_pfxs k) ^ "}" in
  let shapes =
    [|
      (fun () ->
        (* no-change for selected devices and prefixes *)
        Printf.sprintf
          "forall device in %s : forall prefix in %s : routeType = BEST => \
           PRE |> distVals(nexthop) = POST |> distVals(nexthop)"
          (dev_set (1 + Random.State.int st 3))
          (pfx_set (1 + Random.State.int st 3)));
      (fun () ->
        (* attribute target on the updated RIB *)
        Printf.sprintf "prefix = %s => POST |> distVals(localPref) = {%d}"
          (Prefix.to_string (pick prefixes))
          (List.nth [ 100; 150; 200 ] (Random.State.int st 3)));
      (fun () ->
        (* a community must be absent from a region *)
        Printf.sprintf
          "forall device in %s : POST||(communities has 64512:%d) |> count() \
           = 0"
          (dev_set (1 + Random.State.int st 2))
          (300 + Random.State.int st 10));
      (fun () ->
        (* conditional change *)
        Printf.sprintf
          "forall device in %s : forall prefix : (PRE |> distVals(nexthop) = \
           {%s}) imply (POST |> distVals(nexthop) = {%s})"
          (dev_set 1)
          (Ip.to_string (Ip.v4_of_octets 10 255 (64 + Random.State.int st 6) 1))
          (Ip.to_string (Ip.v4_of_octets 10 255 (64 + Random.State.int st 6) 2)));
      (fun () ->
        (* count preservation per device *)
        Printf.sprintf "device = %s => PRE |> count() = POST |> count()"
          (pick devices));
      (fun () ->
        (* bounded ECMP degree for selected prefixes *)
        Printf.sprintf
          "forall prefix in %s : POST |> distCnt(nexthop) <= %d"
          (pfx_set (1 + Random.State.int st 4))
          (2 + Random.State.int st 3));
      (fun () ->
        (* whole-RIB no-change with an exclusion guard *)
        Printf.sprintf "not (prefix in %s) => PRE = POST" (pfx_set 2));
    |]
  in
  List.init n (fun _ -> (pick shapes) ())

let figure8 () =
  header "Figure 8: RCL specification sizes and verification time (50 specs)";
  let g = Lazy.force wan in
  let base = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  (* the "updated" RIB: one border's routes get a different local-pref,
     so the no-change specs are exercised on both outcomes *)
  let changed_dev = List.hd g.G.borders in
  let updated =
    List.map
      (fun (r : Route.t) ->
        if String.equal r.Route.device changed_dev && r.Route.proto = Route.Bgp
        then Route.with_local_pref r (Route.local_pref r + 5)
        else r)
      base
  in
  let corpus = spec_corpus ~seed:7 base in
  let sizes = ref [] and times = ref [] in
  let satisfied = ref 0 and violated = ref 0 in
  List.iter
    (fun spec ->
      match Rcl_parser.parse spec with
      | Error e -> row "corpus spec failed to parse (%s): %s" e spec
      | Ok ast ->
          sizes := float_of_int (Rcl_ast.size ast) :: !sizes;
          let outcome, dt =
            time (fun () -> Rcl_verify.check ast ~base ~updated)
          in
          (match outcome with
          | Rcl_verify.Satisfied -> incr satisfied
          | Rcl_verify.Violated _ -> incr violated);
          times := dt :: !times)
    corpus;
  print_cdf "specification size (internal syntax-tree nodes)" !sizes ~unit:"nodes";
  let under_15 =
    List.length (List.filter (fun s -> s < 15.) !sizes) * 100
    / List.length !sizes
  in
  row "%d%% of specifications smaller than 15 (paper: >90%%)" under_15;
  print_cdf "verification time over the full WAN RIBs" !times ~unit:"s";
  row "verdicts: %d satisfied, %d violated" !satisfied !violated;
  row
    "(paper: >80%% verified within 1 minute on the production WAN; our RIBs \
     are ~1/10 scale)"

let all () =
  figure6_7 ();
  figure8 ()
