(* The chaos bench (`--chaos`): cost and coverage of the fault-tolerant
   subtask lifecycle.

   Two questions, answered machine-readably in BENCH_PR5.json:

   1. What does the master's monitor loop cost when nothing fails?
      Route + traffic phases at fail_prob = 0 are timed with the monitor
      in the loop; its scan time is reported as a fraction of the phase
      wall time (target: < 1%).

   2. Does the recovery machinery hold under the fault matrix?  For each
      (mode, prob) cell the phases run under the seeded chaos plan; the
      JSON records re-sends, lease expiries, re-uploads, terminal
      failures and whether the completed results were identical to the
      failure-free run — the same invariants test/test_dist.ml enforces,
      measured at bench scale. *)

open B_common
module G = Hoyan_workload.Generator
module Framework = Hoyan_dist.Framework
module Chaos = Hoyan_dist.Chaos
module Db = Hoyan_dist.Db
module Mq = Hoyan_dist.Mq
module Faultplan = Hoyan_workload.Faultplan
open B_perf

let output_file = ref "BENCH_PR5.json"

let sorted_tbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

type cell = {
  c_mode : string;
  c_prob : float;
  c_complete : bool;
  c_identical : bool; (* results byte-identical to the failure-free run *)
  c_failed : int;
  c_resends : int;
  c_lease_expired : int;
  c_reuploads : int;
  c_stale : int;
  c_dropped : int;
  c_duplicated : int;
  c_wall_s : float;
}

let run_cell g ~rib0 ~loads0 (mode : Faultplan.mode) prob : cell =
  let chaos = Faultplan.plan ~seed:7 ~prob mode in
  let fw = Framework.create ~chaos ~max_attempts:5 g.G.model in
  let (rp, tp), wall =
    time (fun () ->
        let rp =
          Framework.run_route_phase ~subtasks:50 fw
            ~input_routes:g.G.input_routes
        in
        let tp =
          if rp.Framework.rp_complete then
            Some
              (Framework.run_traffic_phase ~subtasks:64 fw ~route_phase:rp
                 ~flows:g.G.flows)
          else None
        in
        (rp, tp))
  in
  let complete =
    rp.Framework.rp_complete
    && match tp with Some tp -> tp.Framework.tp_complete | None -> false
  in
  let identical =
    complete
    && List.equal Hoyan_net.Route.equal rib0 rp.Framework.rp_rib
    &&
    match tp with
    | Some tp -> loads0 = sorted_tbl tp.Framework.tp_link_load
    | None -> false
  in
  let failed =
    List.length rp.Framework.rp_failed
    + match tp with Some tp -> List.length tp.Framework.tp_failed | None -> 0
  in
  let s = fw.Framework.stats in
  {
    c_mode = Faultplan.mode_to_string mode;
    c_prob = prob;
    c_complete = complete;
    c_identical = identical;
    c_failed = failed;
    c_resends = s.Framework.ms_resends;
    c_lease_expired = s.Framework.ms_lease_expired;
    c_reuploads = s.Framework.ms_reuploads;
    c_stale = s.Framework.ms_stale_msgs;
    c_dropped = Mq.dropped fw.Framework.mq;
    c_duplicated = Mq.duplicated fw.Framework.mq;
    c_wall_s = wall;
  }

let cell_json (c : cell) =
  J_obj
    [
      ("mode", J_str c.c_mode);
      ("prob", J_float c.c_prob);
      ("complete", J_bool c.c_complete);
      ("identical_to_clean_run", J_bool c.c_identical);
      ("failed_subtasks", J_int c.c_failed);
      ("monitor_resends", J_int c.c_resends);
      ("lease_expiries", J_int c.c_lease_expired);
      ("input_reuploads", J_int c.c_reuploads);
      ("stale_deliveries", J_int c.c_stale);
      ("mq_dropped", J_int c.c_dropped);
      ("mq_duplicated", J_int c.c_duplicated);
      ("wall_s", J_float c.c_wall_s);
    ]

let run () =
  header "chaos: monitor-loop overhead and fault-matrix recovery";
  let g = Lazy.force (if !quick then small else wan) in
  (* -------------------------------------------------------------- *)
  sub "monitor overhead at fail_prob = 0";
  let fw0 = Framework.create g.G.model in
  let (rp0, tp0), clean_wall =
    time (fun () ->
        let rp =
          Framework.run_route_phase ~subtasks:50 fw0
            ~input_routes:g.G.input_routes
        in
        let tp =
          Framework.run_traffic_phase ~subtasks:64 fw0 ~route_phase:rp
            ~flows:g.G.flows
        in
        (rp, tp))
  in
  let scan_s = fw0.Framework.stats.Framework.ms_scan_s in
  let overhead = scan_s /. clean_wall in
  row "phases: %.2fs wall, %d + %d subtasks, monitor %d scans in %.5fs"
    clean_wall
    (List.length rp0.Framework.rp_subtasks)
    (List.length tp0.Framework.tp_subtasks)
    fw0.Framework.stats.Framework.ms_scans scan_s;
  row "monitor overhead: %.3f%% of phase time (target < 1%%)"
    (100. *. overhead);
  let rib0 = rp0.Framework.rp_rib in
  let loads0 = sorted_tbl tp0.Framework.tp_link_load in
  (* -------------------------------------------------------------- *)
  sub "fault matrix";
  let cells =
    List.concat_map
      (fun mode ->
        List.filter_map
          (fun prob ->
            if prob = 0. then None (* the clean run above is the 0-cell *)
            else begin
              let c = run_cell g ~rib0 ~loads0 mode prob in
              row
                "%-12s p=%.1f  %s  failed=%d resends=%d leases=%d \
                 reuploads=%d drop/dup=%d/%d  %.2fs"
                c.c_mode c.c_prob
                (if c.c_identical then "identical"
                 else if c.c_complete then "complete "
                 else "partial  ")
                c.c_failed c.c_resends c.c_lease_expired c.c_reuploads
                c.c_dropped c.c_duplicated c.c_wall_s;
              Some c
            end)
          Faultplan.matrix_probs)
      [
        Faultplan.Crashes;
        Faultplan.Storage_loss;
        Faultplan.Mq_faults;
        Faultplan.Stalls;
        Faultplan.Mixed;
      ]
  in
  (* the contract the JSON asserts: every completed cell is identical *)
  let violations =
    List.filter (fun c -> c.c_complete && not c.c_identical) cells
  in
  row "contract: %d completed cells, %d identical, %d violations"
    (List.length (List.filter (fun c -> c.c_complete) cells))
    (List.length (List.filter (fun c -> c.c_identical) cells))
    (List.length violations);
  write_json !output_file
    (J_obj
       [
         ("bench", J_str "chaos");
         ("scale", J_str (if !quick then "small" else "wan"));
         ( "clean_run",
           J_obj
             [
               ("wall_s", J_float clean_wall);
               ("monitor_scans", J_int fw0.Framework.stats.Framework.ms_scans);
               ("monitor_scan_s", J_float scan_s);
               ("monitor_overhead_frac", J_float overhead);
               ("overhead_target_frac", J_float 0.01);
               ("overhead_within_target", J_bool (overhead < 0.01));
             ] );
         ("matrix", J_arr (List.map cell_json cells));
         ( "contract_violations",
           J_arr (List.map (fun c -> J_str c.c_mode) violations) );
       ]);
  row "wrote %s" !output_file
