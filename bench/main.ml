(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §4 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured numbers).

   Usage:
     dune exec bench/main.exe                  # every table and figure
     dune exec bench/main.exe -- table4 fig5a  # selected sections
     dune exec bench/main.exe -- --quick ...   # smaller workloads
     dune exec bench/main.exe -- --micro       # bechamel micro-benchmarks
     dune exec bench/main.exe -- --ablate      # design-choice ablations
     dune exec bench/main.exe -- --lint        # static-analysis gate cost
     dune exec bench/main.exe -- --perf --out BENCH_PR6.json
                                               # multicore perf harness;
                                               # one JSON per PR
     dune exec bench/main.exe -- --route-bench # quick route-phase gate:
                                               # sequential-vs-parallel
                                               # identity assertion
     dune exec bench/main.exe -- --telemetry   # telemetry noop/live cost
                                               # (writes BENCH_PR3.json)
     dune exec bench/main.exe -- --semantic    # semantic pass + intent
                                               # pre-checker vs simulation
                                               # (writes BENCH_PR4.json)
     dune exec bench/main.exe -- --chaos       # monitor-loop overhead +
                                               # fault-matrix recovery
                                               # (writes BENCH_PR5.json)
     dune exec bench/main.exe -- --diff-bench  # differential change-impact
                                               # pass vs full patched
                                               # simulation
                                               # (writes BENCH_PR7.json)
     dune exec bench/main.exe -- --serve-bench # multi-tenant request server
                                               # open-loop load + contract
                                               # check
                                               # (writes BENCH_PR8.json)
     dune exec bench/main.exe -- --whatif-bench# exhaustive k-failure sweep:
                                               # blast-radius pruning vs
                                               # brute force
                                               # (writes BENCH_PR9.json)
     dune exec bench/main.exe -- --inc-bench   # incremental delta splice
                                               # vs full re-simulation on
                                               # a 300-plan mixed batch
                                               # (writes BENCH_PR10.json) *)

let sections : (string * string * (unit -> unit)) list =
  [
    ("table1", "scale requirements", B_scale.table1);
    ("figure1", "centralized simulation limits", B_scale.figure1);
    ("table2", "the 12 change types", B_changes.table2);
    ("table3", "capability matrix", B_changes.table3);
    ("figure5a", "distributed route simulation", B_scale.figure5a);
    ("figure5b", "distributed traffic simulation", B_scale.figure5b);
    ("figure5c", "subtask run-time CDF", B_scale.figure5c);
    ("figure5d", "loaded RIB files CDF", B_scale.figure5d);
    ("figure6", "RCL running example", B_rcl.figure6_7);
    ("figure8", "RCL spec sizes and verification time", B_rcl.figure8);
    ("figure9", "root-cause analysis case", B_accuracy.figure9);
    ("table4", "issue taxonomy fault injection", B_accuracy.table4);
    ("table5", "VSB differential testing", B_accuracy.table5);
    ("table6", "change-risk corpus", B_changes.table6);
  ]

(* "--out FILE" takes a value; pull the pair out of argv before the
   prefix-based flag/section partition would misroute FILE. *)
let rec extract_out acc = function
  | "--out" :: file :: rest -> (Some file, List.rev_append acc rest)
  | a :: rest -> extract_out (a :: acc) rest
  | [] -> (None, List.rev acc)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let out, args = extract_out [] args in
  Option.iter
    (fun f ->
      B_perf.output_file := f;
      B_telemetry.output_file := f;
      B_semantic.output_file := f;
      B_chaos.output_file := f;
      B_diff.output_file := f;
      B_serve.output_file := f;
      B_whatif.output_file := f;
      B_inc.output_file := f)
    out;
  let flags, wanted = List.partition (fun a -> String.length a > 2 && String.sub a 0 2 = "--") args in
  if List.mem "--quick" flags then B_common.quick := true;
  let t0 = Unix.gettimeofday () in
  if List.mem "--micro" flags then B_micro.run ()
  else if List.mem "--ablate" flags then B_ablate.all ()
  else if List.mem "--lint" flags then B_lint.run ()
  else if List.mem "--perf" flags then B_perf.perf ()
  else if List.mem "--route-bench" flags then B_perf.route_bench ()
  else if List.mem "--telemetry" flags then B_telemetry.run ()
  else if List.mem "--semantic" flags then B_semantic.run ()
  else if List.mem "--chaos" flags then B_chaos.run ()
  else if List.mem "--diff-bench" flags then B_diff.run ()
  else if List.mem "--serve-bench" flags then B_serve.run ()
  else if List.mem "--whatif-bench" flags then B_whatif.run ()
  else if List.mem "--inc-bench" flags then B_inc.run ()
  else begin
    (* "fig5a" etc. are accepted as shorthand for "figure5a"; the alias
       only applies to names actually prefixed with "figure" (a bare
       "fig" argument used to silently select table1 via String.sub) *)
    let fig_alias name =
      let pfx = "figure" in
      let lp = String.length pfx in
      if String.length name > lp && String.equal (String.sub name 0 lp) pfx
      then Some ("fig" ^ String.sub name lp (String.length name - lp))
      else None
    in
    let selected =
      if wanted = [] then sections
      else
        List.filter
          (fun (name, _, _) ->
            List.exists
              (fun w ->
                String.equal w name
                ||
                match fig_alias name with
                | Some alias -> String.equal alias w
                | None -> false)
              wanted)
          sections
    in
    let selected =
      if selected = [] && wanted <> [] then begin
        Printf.printf "unknown section(s): %s\navailable: %s\n"
          (String.concat " " wanted)
          (String.concat " " (List.map (fun (n, _, _) -> n) sections));
        []
      end
      else selected
    in
    List.iter
      (fun (name, desc, run) ->
        Printf.printf "\n################ %s — %s\n%!" name desc;
        run ())
      selected
  end;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
