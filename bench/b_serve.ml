(* --serve-bench: open-loop load against the verification server
   (writes BENCH_PR8.json).

   The server's contract is that multi-tenancy is free of semantic
   cost: whatever the queue order, the cache state or the tenant mix,
   every executed verdict is byte-identical to a direct
   Verify_request.run of the same request.  This bench drives a
   >=1200-request mixed stream (lint / precheck / simulate / diff drawn
   from a ~60-request distinct pool across 8 tenants, so most requests
   are semantic duplicates) through one server over one shared
   snapshot, then:

     - re-runs every distinct pool request directly and byte-compares
       all served verdicts against it (contract violations must be 0);
     - reports throughput, per-class p50/p99 service latency, cache
       hit rate and LRU behaviour;
     - drives a burst at a small-bounded server for admission
       rejections (queue depth + tenant quota), and a zero-budget
       request for the lease-expiry timeout path;
     - replays the measured durations through the multi-server
       scheduler for modelled scaling. *)

open B_common
module G = Hoyan_workload.Generator
module Model = Hoyan_sim.Model
module Types = Hoyan_config.Types
module Preprocess = Hoyan_core.Preprocess
module Intents = Hoyan_core.Intents
module Server = Hoyan_server.Server
module Request = Hoyan_server.Request
module Schedule = Hoyan_dist.Schedule

let output_file = ref "BENCH_PR8.json"

(* ------------------------------------------------------------------ *)
(* The request pool                                                    *)
(* ------------------------------------------------------------------ *)

let pref_block ~vendor ~pref =
  if String.equal vendor "vendorA" then
    Printf.sprintf
      "route-map ISP_IN permit 10\n set community 64512:100 additive\n set \
       local-preference %d\n"
      pref
  else
    Printf.sprintf
      "route-policy ISP_IN permit node 10\n apply community 64512:100 \
       additive\n apply local-preference %d\n"
      pref

(* ~60 distinct requests: for each border and a few preference values,
   one request per class.  Distinctness comes from (device, preference,
   class, intent) — the cache sees everything else as a duplicate. *)
let build_pool (g : G.t) : Request.t list =
  let vendor_of dev =
    match Model.config g.G.model dev with
    | Some c -> c.Types.dc_vendor
    | None -> "vendorA"
  in
  let borders = g.G.borders in
  let classes =
    [ Request.Lint; Request.Precheck; Request.Simulate; Request.Diff ]
  in
  let pool = ref [] in
  List.iteri
    (fun bi dev ->
      List.iter
        (fun pref ->
          List.iteri
            (fun ci cls ->
              let id =
                Printf.sprintf "p-%s-%d-%s" dev pref
                  (Request.class_to_string cls)
              in
              let block = pref_block ~vendor:(vendor_of dev) ~pref in
              let plan =
                Hoyan_config.Change_plan.make id ~commands:[ (dev, block) ]
              in
              let intents =
                match (ci + bi) mod 3 with
                | 0 -> [ Intents.Route_change "PRE = POST" ]
                | 1 ->
                    [
                      Intents.Route_change
                        (Printf.sprintf
                           "forall device in {%s} : PRE |> count() = POST \
                            |> count()"
                           dev);
                    ]
                | _ -> []
              in
              pool := Request.make ~plan ~intents ~id cls :: !pool)
            classes)
        (match bi mod 3 with
        | 0 -> [ 210; 240 ]
        | 1 -> [ 220; 250 ]
        | _ -> [ 230 ]))
    borders;
  List.rev !pool

(* Deterministic open-loop draw: request k uses pool entry
   (k * 7919 + 13) mod n and tenant (k mod 8) — every pool entry is
   drawn many times, from several tenants. *)
let draw pool n_requests =
  let n = List.length pool in
  let arr = Array.of_list pool in
  List.init n_requests (fun k ->
      let p = arr.((k * 7919 + 13) mod n) in
      {
        p with
        Request.r_id = Printf.sprintf "%s#%04d" p.Request.r_id k;
        r_tenant = Printf.sprintf "tenant-%d" (k mod 8);
      })

(* ------------------------------------------------------------------ *)

let pct_ms q xs = 1000. *. quantile q xs

let run () =
  header "serve bench: multi-tenant request server over a shared snapshot";
  let g = Lazy.force small in
  let base =
    Preprocess.prepare g.G.model ~monitored_routes:g.G.input_routes
      ~monitored_flows:g.G.flows
  in
  let pool = build_pool g in
  let n_requests = if !quick then 400 else 1200 in
  let stream = draw pool n_requests in
  row "pool: %d distinct requests; stream: %d requests over 8 tenants"
    (List.length pool) n_requests;

  (* -- the main serve phase ---------------------------------------- *)
  let srv = Server.create () in
  let snap = Server.register_snapshot srv base in
  row "%s" (Hoyan_server.Snapshot.to_string snap);
  let t0 = Unix.gettimeofday () in
  let responses = ref [] in
  let batch = ref 0 in
  List.iter
    (fun rq ->
      (match Server.submit srv rq with
      | Ok () -> incr batch
      | Error r -> responses := r :: !responses);
      if !batch >= 64 then begin
        responses := List.rev_append (Server.drain srv) !responses;
        batch := 0
      end)
    stream;
  responses := List.rev_append (Server.drain srv) !responses;
  let wall = Unix.gettimeofday () -. t0 in
  let responses = List.rev !responses in
  let st = Server.stats srv in
  let throughput = float_of_int (List.length responses) /. wall in
  row "served %d responses in %s (%.0f req/s)" (List.length responses)
    (seconds wall) throughput;
  row "cache: %d hits / %d misses (%.1f%% hit rate), %d evictions"
    st.Server.st_cache_hits st.Server.st_cache_misses
    (100. *. float_of_int st.Server.st_cache_hits
    /. float_of_int (max 1 (st.Server.st_cache_hits + st.Server.st_cache_misses)))
    st.Server.st_cache_evictions;

  (* -- the byte-identity contract ---------------------------------- *)
  let direct = Hashtbl.create 64 in
  List.iter
    (fun (p : Request.t) ->
      Hashtbl.replace direct p.Request.r_id (Server.run_direct snap p))
    pool;
  let pool_id id =
    match String.index_opt id '#' with
    | Some i -> String.sub id 0 i
    | None -> id
  in
  let checked = ref 0 and violations = ref 0 in
  let cached_identical = ref true in
  List.iter
    (fun (r : Server.response) ->
      match r.Server.rs_status with
      | Server.Ok | Server.Fail -> (
          incr checked;
          match Hashtbl.find_opt direct (pool_id r.Server.rs_id) with
          | None -> incr violations
          | Some (st_direct, body_direct) ->
              if
                not
                  (st_direct = r.Server.rs_status
                  && String.equal body_direct r.Server.rs_body)
              then begin
                incr violations;
                if r.Server.rs_cached then cached_identical := false;
                row "CONTRACT VIOLATION: %s (cached=%b)" r.Server.rs_id
                  r.Server.rs_cached
              end)
      | _ -> ())
    responses;
  row "contract: %d verdicts compared against direct runs, %d violation(s)"
    !checked !violations;

  (* -- per-class service latency ----------------------------------- *)
  let by_class cls =
    List.filter_map
      (fun (r : Server.response) ->
        if r.Server.rs_class = cls then Some r.Server.rs_exec_s else None)
      responses
  in
  let class_stats =
    List.map
      (fun cls ->
        let xs = by_class cls in
        let n = List.length xs in
        let p50 = pct_ms 0.5 xs and p99 = pct_ms 0.99 xs in
        row "%-9s n=%4d  p50 %8.3f ms  p99 %8.3f ms"
          (Request.class_to_string cls)
          n p50 p99;
        (cls, n, p50, p99))
      [ Request.Lint; Request.Precheck; Request.Simulate; Request.Diff ]
  in
  let uncached =
    List.filter_map
      (fun (r : Server.response) ->
        match r.Server.rs_status with
        | (Server.Ok | Server.Fail) when not r.Server.rs_cached ->
            Some r.Server.rs_exec_s
        | _ -> None)
      responses
  in
  row "uncached executions: n=%d  p50 %.3f ms  p99 %.3f ms"
    (List.length uncached) (pct_ms 0.5 uncached) (pct_ms 0.99 uncached);

  (* -- admission control under a burst ------------------------------ *)
  sub "admission burst (queue depth 16, tenant quota 4)";
  let burst_srv =
    Server.create
      ~config:
        {
          Server.default_config with
          Server.c_queue_depth = 16;
          c_tenant_quota = 4;
        }
      ()
  in
  ignore (Server.register_snapshot burst_srv base);
  (* the first 20 requests all come from one tenant (hits the quota);
     the rest spread across 8 tenants (fills the queue) *)
  let burst =
    List.mapi
      (fun k rq ->
        if k < 20 then { rq with Request.r_tenant = "hog" } else rq)
      (draw pool 64)
  in
  List.iter (fun rq -> ignore (Server.submit burst_srv rq)) burst;
  let burst_responses = Server.drain burst_srv in
  let bst = Server.stats burst_srv in
  row "burst of 64: %d admitted, %d rejected (queue-full %d, tenant-quota %d)"
    bst.Server.st_admitted
    (bst.Server.st_rejected_queue + bst.Server.st_rejected_quota)
    bst.Server.st_rejected_queue bst.Server.st_rejected_quota;
  ignore burst_responses;

  (* -- budget expiry ------------------------------------------------ *)
  sub "budget expiry (zero-budget request)";
  let zb =
    {
      (List.hd pool) with
      Request.r_id = "zero-budget";
      r_budget_s = Some 0.;
      r_no_cache = true;
    }
  in
  let timeout_ok =
    match Server.submit srv zb with
    | Error _ -> false
    | Ok () -> (
        match Server.drain srv with
        | [ r ] ->
            row "zero-budget request: status=%s body=%S"
              (Server.status_to_string r.Server.rs_status)
              r.Server.rs_body;
            r.Server.rs_status = Server.Timeout
            && String.equal r.Server.rs_body ""
        | _ -> false)
  in
  row "timeout path: %s (verdict withheld)" (if timeout_ok then "OK" else "BROKEN");

  (* -- modelled scaling --------------------------------------------- *)
  sub "modelled scaling (measured durations through the scheduler)";
  let makespans =
    List.map
      (fun n ->
        let mk = Server.modelled_makespan srv ~servers:n in
        row "%2d server(s): %.3fs" n mk;
        (n, mk))
      [ 1; 2; 4; 8 ]
  in

  let st = Server.stats srv in
  let json =
    B_perf.J_obj
      [
        ("bench", B_perf.J_str "multi-tenant verification server");
        ("generated_unix", B_perf.J_float (Unix.gettimeofday ()));
        ("quick", B_perf.J_bool !quick);
        ( "workload",
          B_perf.J_obj
            [
              ("name", B_perf.J_str "small");
              ("pool_distinct", B_perf.J_int (List.length pool));
              ("stream_requests", B_perf.J_int n_requests);
              ("tenants", B_perf.J_int 8);
            ] );
        ( "serve",
          B_perf.J_obj
            [
              ("responses", B_perf.J_int (List.length responses));
              ("wall_s", B_perf.J_float wall);
              ("throughput_rps", B_perf.J_float throughput);
              ("completed", B_perf.J_int st.Server.st_completed);
              ("failed_verdicts", B_perf.J_int st.Server.st_failed);
              ("timeouts", B_perf.J_int st.Server.st_timeouts);
              ("errors", B_perf.J_int st.Server.st_errors);
            ] );
        ( "latency_ms",
          B_perf.J_obj
            (List.map
               (fun (cls, n, p50, p99) ->
                 ( Request.class_to_string cls,
                   B_perf.J_obj
                     [
                       ("n", B_perf.J_int n);
                       ("p50", B_perf.J_float p50);
                       ("p99", B_perf.J_float p99);
                     ] ))
               class_stats) );
        ( "cache",
          B_perf.J_obj
            [
              ("hits", B_perf.J_int st.Server.st_cache_hits);
              ("misses", B_perf.J_int st.Server.st_cache_misses);
              ("evictions", B_perf.J_int st.Server.st_cache_evictions);
              ( "hit_rate",
                B_perf.J_float
                  (float_of_int st.Server.st_cache_hits
                  /. float_of_int
                       (max 1 (st.Server.st_cache_hits + st.Server.st_cache_misses))
                  ) );
              ("cached_identical", B_perf.J_bool !cached_identical);
            ] );
        ( "admission_burst",
          B_perf.J_obj
            [
              ("submitted", B_perf.J_int bst.Server.st_submitted);
              ("admitted", B_perf.J_int bst.Server.st_admitted);
              ("rejected_queue", B_perf.J_int bst.Server.st_rejected_queue);
              ("rejected_quota", B_perf.J_int bst.Server.st_rejected_quota);
            ] );
        ( "contract",
          B_perf.J_obj
            [
              ("verdicts_compared", B_perf.J_int !checked);
              ("violations", B_perf.J_int !violations);
              ("timeout_withholds_verdict", B_perf.J_bool timeout_ok);
            ] );
        ( "modelled_makespan_s",
          B_perf.J_obj
            (List.map
               (fun (n, mk) -> (string_of_int n, B_perf.J_float mk))
               makespans) );
        ("peak_rss_kb", B_perf.J_int (B_perf.peak_rss_kb ()));
      ]
  in
  B_perf.write_json !output_file json;
  row "wrote %s" !output_file;
  if !violations > 0 || not timeout_ok then exit 1
