(* Bechamel micro-benchmarks of the hot inner operations: one Test.make
   per core primitive (trie LPM, EC keying, the BGP decision step, policy
   evaluation, RCL filtering/aggregation, flow-EC keying). *)

open Bechamel
open Hoyan_net
module G = Hoyan_workload.Generator
module B = Hoyan_workload.Builder
module Types = Hoyan_config.Types
module Policy = Hoyan_config.Policy
module Vsb = Hoyan_config.Vsb
module Bgp = Hoyan_proto.Bgp
module Ec = Hoyan_sim.Ec
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Rcl_parser = Hoyan_rcl.Parser
module Rcl_semantics = Hoyan_rcl.Semantics

let pfx = Prefix.of_string_exn

let tests () =
  let g = Lazy.force B_common.small in
  let rib = (Route_sim.run g.G.model ~input_routes:g.G.input_routes ()).Route_sim.rib in
  (* trie LPM over the busiest device's FIB *)
  let fibs = Traffic_sim.build_fibs rib in
  let dev = List.hd g.G.borders in
  let probe = Ip.of_string_exn "100.0.0.77" in
  let lpm =
    Test.make ~name:"trie LPM (one lookup)"
      (Staged.stage (fun () -> Traffic_sim.fib_lookup fibs dev probe))
  in
  (* route EC keying *)
  let sig_ctx = Ec.signature_ctx g.G.model.Hoyan_sim.Model.configs in
  let some_route = List.hd g.G.input_routes in
  let ec_key =
    Test.make ~name:"route EC match signature"
      (Staged.stage (fun () ->
           Ec.match_signature sig_ctx some_route.Route.prefix))
  in
  (* the BGP decision step on 8 candidates *)
  let candidates =
    List.init 8 (fun i ->
        Route.make ~device:"X" ~prefix:(pfx "99.0.0.0/24")
          ~nexthop:(Ip.v4_of_octets 10 0 0 i)
          ~local_pref:(100 + (i mod 3))
          ~as_path:(As_path.of_asns [ 7018; 7018 + i ])
          ~source:Route.Ebgp ())
  in
  let ctx =
    Hoyan_sim.Model.Smap.find dev g.G.model.Hoyan_sim.Model.net
  in
  let decide =
    Test.make ~name:"BGP decision (8 candidates)"
      (Staged.stage (fun () -> Bgp.select ctx candidates))
  in
  (* policy evaluation *)
  let cfg = Option.get (Hoyan_sim.Model.config g.G.model dev) in
  let policy_name =
    match Types.Smap.choose_opt cfg.Types.dc_policies with
    | Some (name, _) -> Some name
    | None -> None
  in
  let policy_eval =
    Test.make ~name:"route-policy evaluation"
      (Staged.stage (fun () ->
           Policy.eval cfg Vsb.vendor_a policy_name some_route))
  in
  (* RCL filter + aggregate over the full small-WAN RIB *)
  let rcl_ast =
    Rcl_parser.parse_exn
      "POST||(communities has 64512:100) |> distCnt(nexthop) >= 0"
  in
  let rcl_eval =
    Test.make ~name:"RCL filter+aggregate over the RIB"
      (Staged.stage (fun () ->
           Rcl_semantics.eval_intent rcl_ast ~pre:rib ~post:rib))
  in
  (* flow EC keying: the O(devices) reference vs the precomputed
     union-trie path used by Traffic_sim.run *)
  let flow = List.hd g.G.flows in
  let flow_key =
    Test.make ~name:"flow EC key (LPM vector over all FIBs)"
      (Staged.stage (fun () -> Traffic_sim.flow_ec_key g.G.model fibs flow))
  in
  let ecx = Traffic_sim.ec_ctx g.G.model fibs in
  let flow_key_pre =
    Test.make ~name:"flow EC key (precomputed union trie)"
      (Staged.stage (fun () -> Traffic_sim.flow_ec_key_pre ecx flow))
  in
  (* batched FIB/trie construction over the full small-WAN RIB *)
  let fib_build =
    Test.make ~name:"FIB build (batched tries, small RIB)"
      (Staged.stage (fun () -> Traffic_sim.build_fibs rib))
  in
  (* the BGP fixpoint on a slice of inputs: dominated by the per-
     (vrf, prefix) rib_in/loc_rib churn this PR trims *)
  let bgp_inputs = List.filteri (fun i _ -> i < 100) g.G.input_routes in
  let bgp_fixpoint =
    Test.make ~name:"BGP fixpoint (small WAN, 100 inputs)"
      (Staged.stage (fun () ->
           Bgp.run g.G.model.Hoyan_sim.Model.net
             {
               Bgp.in_routes = bgp_inputs;
               in_local_tables = g.G.model.Hoyan_sim.Model.local_tables;
             }))
  in
  [
    lpm; ec_key; decide; policy_eval; rcl_eval; flow_key; flow_key_pre;
    fib_build; bgp_fixpoint;
  ]

let run () =
  B_common.header "Micro-benchmarks (bechamel)";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let analyze = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |] in
  List.iter
    (fun test ->
      List.iter
        (fun (elt : Test.Elt.t) ->
          let raw = Benchmark.run cfg instances elt in
          let ols = Analyze.one analyze Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | _ -> nan
          in
          B_common.row "%-42s %12.1f ns/op" (Test.Elt.name elt) ns)
        (Test.elements test))
    (tests ())
