(* --inc-bench: incremental delta simulation vs full from-scratch
   re-simulation (writes BENCH_PR10.json).

   The production loop the paper describes is many change plans a day
   against one converged base.  The incremental engine captures the
   converged base once and re-converges only each plan's dirty region,
   splicing the delta into the cached RIB; this bench drives a 300-plan
   mixed batch (announcements, withdrawals, network statements, policy
   edits, no-ops, and a deliberate share of topology changes that the
   engine must refuse and full-simulate) and reports:

   - identity: for a deterministic subsample the full from-scratch run
     executes too and the spliced RIB must match row for row;
   - measured per-plan ratio on that subsample (both sides really ran);
   - batch wall-clock: the whole 300-plan batch runs incrementally; the
     full-batch cost is extrapolated from the measured subsample mean
     and reported as such ("full_extrapolated": true — running 300 full
     wan fixpoints is exactly the cost this engine exists to avoid);
   - honest fallback counters: topology plans full-simulate inside the
     engine and are counted, not hidden ("speedup with zero fallbacks"
     would be fiction on a mixed batch). *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Incremental = Hoyan_sim.Incremental
module Differential = Hoyan_analysis.Differential
module Smap = Types.Smap

let output_file = ref "BENCH_PR10.json"

let batch_size = 300

(* ------------------------------------------------------------------ *)
(* The mixed plan batch (deterministic in i)                           *)
(* ------------------------------------------------------------------ *)

let plan_of (g : G.t) i : Cp.t =
  let borders = Array.of_list g.G.borders in
  let border k = borders.(k mod Array.length borders) in
  let input_prefixes =
    List.sort_uniq Prefix.compare
      (List.map (fun (r : Route.t) -> r.Route.prefix) g.G.input_routes)
    |> Array.of_list
  in
  let vendor_a =
    Smap.bindings g.G.model.Model.configs
    |> List.filter (fun (_, (c : Types.t)) -> c.Types.dc_vendor = "vendorA")
    |> List.map fst |> Array.of_list
  in
  match i mod 20 with
  | 0 | 1 | 2 | 3 | 4 | 5 ->
      (* 30%: new prefix announcement at a border *)
      let r =
        Route.make ~device:(border i)
          ~prefix:
            (Prefix.of_string_exn
               (Printf.sprintf "203.%d.%d.0/24" (i mod 120) (i / 120)))
          ~as_path:(As_path.of_asns [ 7018; 3356 ])
          ~source:Route.Ebgp ()
      in
      Cp.make (Printf.sprintf "announce-%d" i) ~new_routes:[ r ]
  | 6 | 7 | 8 | 9 ->
      (* 20%: prefix reclamation *)
      Cp.make
        (Printf.sprintf "withdraw-%d" i)
        ~withdraw:[ input_prefixes.(i mod Array.length input_prefixes) ]
  | 10 | 11 | 12 | 13 ->
      (* 20%: new network statement on a device *)
      let dev = vendor_a.(i mod Array.length vendor_a) in
      let asn =
        (Smap.find dev g.G.model.Model.configs).Types.dc_bgp.Types.bgp_asn
      in
      Cp.make
        (Printf.sprintf "network-%d" i)
        ~commands:
          [
            ( dev,
              Printf.sprintf "router bgp %d\n network 198.%d.%d.0/24\n" asn
                (i mod 120) (i / 120) );
          ]
  | 14 | 15 | 16 ->
      (* 15%: import-policy local-pref edit on a border *)
      let dev = border i in
      let cfg = Smap.find dev g.G.model.Model.configs in
      let block =
        if cfg.Types.dc_vendor = "vendorA" then
          Printf.sprintf
            "route-map INC_BUMP permit 10\n set local-preference %d\n"
            (200 + (i mod 50))
        else
          Printf.sprintf
            "route-policy INC_BUMP permit node 10\n apply local-preference \
             %d\n"
            (200 + (i mod 50))
      in
      Cp.make (Printf.sprintf "policy-%d" i) ~commands:[ (dev, block) ]
  | 17 | 18 ->
      (* 10%: semantic no-op *)
      Cp.make (Printf.sprintf "noop-%d" i)
  | _ ->
      (* 5%: topology change — must fall back to a full run, honestly *)
      let edges = Topology.edges g.G.model.Model.topo |> Array.of_list in
      let e = edges.(i mod Array.length edges) in
      Cp.make
        (Printf.sprintf "linkdown-%d" i)
        ~topo_ops:[ Cp.Remove_link { ra = e.Topology.src; rb = e.Topology.dst } ]

(* A full from-scratch run of the patched model, canonicalized the way
   the splice emits rows. *)
let full_run (g : G.t) (plan : Cp.t) : Route.t list =
  let patched, _ = Model.apply_change_plan g.G.model plan in
  (Route_sim.run patched
     ~input_routes:(Differential.patched_routes plan g.G.input_routes)
     ())
    .Route_sim.rib
  |> List.sort_uniq Route.compare

(* ------------------------------------------------------------------ *)

let run () =
  header "incremental delta simulation: dirty-region splice vs full re-run";
  let g = Lazy.force wan in
  row "workload: wan (%d devices, %d input routes)" (G.device_count g)
    (List.length g.G.input_routes);
  let ctx, t_capture =
    time (fun () ->
        let rib =
          (Route_sim.run g.G.model ~input_routes:g.G.input_routes ())
            .Route_sim.rib
        in
        Incremental.capture ~model:g.G.model ~input_routes:g.G.input_routes
          ~flows:g.G.flows ~rib ())
  in
  row "base capture (one converged fixpoint + indexing): %.2fs" t_capture;
  let n = if !quick then 60 else batch_size in
  let plans = List.init n (fun i -> (i, plan_of g i)) in
  (* ---- identity + measured ratio on a deterministic subsample ----- *)
  let sample = List.filter (fun (i, _) -> i mod 15 = 0) plans in
  let sample_results =
    List.map
      (fun (i, plan) ->
        let s, t_inc = time (fun () -> Incremental.simulate ctx plan) in
        let full, t_full = time (fun () -> full_run g plan) in
        let identical = List.equal Route.equal s.Incremental.s_rib full in
        if not identical then
          row "WARNING: SOUNDNESS VIOLATION: plan %s spliced <> full"
            plan.Cp.cp_name;
        (i, plan.Cp.cp_name, t_inc, t_full, identical,
         s.Incremental.s_stats.Incremental.st_full_fallback))
      sample
  in
  let sample_inc = List.fold_left (fun a (_, _, t, _, _, _) -> a +. t) 0. sample_results in
  let sample_full = List.fold_left (fun a (_, _, _, t, _, _) -> a +. t) 0. sample_results in
  let all_identical =
    List.for_all (fun (_, _, _, _, id, _) -> id) sample_results
  in
  row "subsample (%d plans, both sides measured): inc %.2fs vs full %.2fs \
       (%.1fx); identical: %b"
    (List.length sample_results) sample_inc sample_full
    (if sample_inc > 0. then sample_full /. sample_inc else nan)
    all_identical;
  (* ---- the whole batch, incrementally ----------------------------- *)
  let sims, t_batch =
    time (fun () -> List.map (fun (_, p) -> Incremental.simulate ctx p) plans)
  in
  let fallbacks =
    List.length
      (List.filter
         (fun (s : Incremental.sim) ->
           s.Incremental.s_stats.Incremental.st_full_fallback)
         sims)
  in
  let mean_full = sample_full /. float_of_int (List.length sample_results) in
  let full_est = mean_full *. float_of_int n in
  let speedup = if t_batch > 0. then full_est /. t_batch else nan in
  let _, simulates_fallbacks = Incremental.counters ctx in
  row "batch: %d plan(s) incrementally in %.2fs (%d full fallback(s), \
       topology plans)"
    n t_batch fallbacks;
  row "full-batch extrapolation: %d x %.2fs mean = %.0fs -> %.1fx speedup"
    n mean_full full_est speedup;
  if speedup < 5. then
    row "WARNING: speedup %.1fx below the 5x target" speedup;
  let dirty =
    List.map
      (fun (s : Incremental.sim) ->
        float_of_int s.Incremental.s_stats.Incremental.st_dirty_prefixes)
      sims
  in
  print_cdf "dirty prefixes per plan" dirty ~unit:"prefixes";
  let sample_json (i, name, t_inc, t_full, identical, fb) =
    B_perf.J_obj
      [
        ("plan", B_perf.J_int i);
        ("name", B_perf.J_str name);
        ("inc_s", B_perf.J_float t_inc);
        ("full_s", B_perf.J_float t_full);
        ("identical", B_perf.J_bool identical);
        ("full_fallback", B_perf.J_bool fb);
      ]
  in
  let json =
    B_perf.J_obj
      [
        ("bench", B_perf.J_str "incremental delta simulation");
        ("generated_unix", B_perf.J_float (Unix.gettimeofday ()));
        ("quick", B_perf.J_bool !quick);
        ("workload", B_perf.J_str "wan");
        ("devices", B_perf.J_int (G.device_count g));
        ("input_routes", B_perf.J_int (List.length g.G.input_routes));
        ("capture_s", B_perf.J_float t_capture);
        ("batch_plans", B_perf.J_int n);
        ("batch_inc_s", B_perf.J_float t_batch);
        ("full_fallbacks", B_perf.J_int fallbacks);
        ("engine_fallback_counter", B_perf.J_int simulates_fallbacks);
        ("subsample", B_perf.J_arr (List.map sample_json sample_results));
        ("subsample_inc_s", B_perf.J_float sample_inc);
        ("subsample_full_s", B_perf.J_float sample_full);
        ("mean_full_s", B_perf.J_float mean_full);
        ("full_batch_estimate_s", B_perf.J_float full_est);
        ("full_extrapolated", B_perf.J_bool true);
        ("speedup", B_perf.J_float speedup);
        ("soundness_identical", B_perf.J_bool all_identical);
        ("meets_5x_target", B_perf.J_bool (speedup >= 5.));
        ("peak_rss_kb", B_perf.J_int (B_perf.peak_rss_kb ()));
      ]
  in
  B_perf.write_json !output_file json;
  row "wrote %s" !output_file
