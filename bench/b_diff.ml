(* --diff-bench: cost of the differential change-impact pass vs a full
   patched-model simulation (writes BENCH_PR7.json).

   The differential pass exists so that a change request does not pay
   for a full WAN re-simulation when its blast radius is small.  It is
   only worth running in front of every request if (a) building the
   semantic diff + blast radius + per-intent carry-over decisions costs
   a tiny fraction of the simulation it can skip and (b) it actually
   carries over a useful share of a realistic intent batch.  This
   section measures both on the WAN workload with a narrow but
   propagating plan — new originations and a fresh prefix-list entry on
   two border-ish devices — against the same mixed 300-intent batch
   shape as the --semantic bench:

     - "input prefix present at its entry device"
     - "originless prefix present at device X"
     - "input prefix present at a remote device"

   None of the batch prefixes overlap the plan's touched regions, so a
   sound-and-precise impact analysis should carry nearly all of them. *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Lint = Hoyan_analysis.Lint
module Differential = Hoyan_analysis.Differential
module Types = Hoyan_config.Types
module Cp = Hoyan_config.Change_plan
module Smap = Types.Smap

let output_file = ref "BENCH_PR7.json"

type measurement = {
  m_devices : int;
  m_plan_devices : string list;
  m_make_s : float; (* Lint.make ~render:false: the analysis input *)
  m_diff_s : float; (* Differential.diff: plan application + config diff *)
  m_check_s : float; (* Differential.check: HOY03x (forces both graphs) *)
  m_impact_s : float; (* Differential.impact: blast-radius summary *)
  m_carry_s : float; (* carry-over decision for the whole intent batch *)
  m_class : Differential.classification;
  m_diags : int;
  m_dirty_prefixes : int;
  m_intents : int;
  m_carried : int;
  m_apply_s : float; (* Model.apply_change_plan (not counted either side) *)
  m_route_s : float;
  m_traffic_s : float;
}

let m_sim_s m = m.m_route_s +. m.m_traffic_s

let m_diff_total m =
  m.m_make_s +. m.m_diff_s +. m.m_check_s +. m.m_impact_s +. m.m_carry_s

let m_ratio m =
  let sim = m_sim_s m in
  if sim > 0. then m_diff_total m /. sim else nan

let m_carried_frac m =
  if m.m_intents > 0 then float_of_int m.m_carried /. float_of_int m.m_intents
  else nan

(* The same mixed-batch shape as --semantic: per sampled input route one
   provable, one refutable and one needs-simulation intent.  For the
   carry-over decision only the (device, prefix) pair matters. *)
let intent_batch (g : G.t) : (string * Prefix.t) list =
  let devices =
    List.sort String.compare
      (List.map
         (fun (d : Topology.device) -> d.Topology.name)
         (Topology.devices g.G.model.Model.topo))
  in
  let other dev =
    match List.find_opt (fun d -> not (String.equal d dev)) devices with
    | Some d -> d
    | None -> dev
  in
  let originless = Prefix.of_string_exn "203.0.113.0/24" in
  let sample = List.filteri (fun i _ -> i < 100) g.G.input_routes in
  List.concat
    (List.map
       (fun (r : Route.t) ->
         [
           (r.Route.device, r.Route.prefix);
           (r.Route.device, originless);
           (other r.Route.device, r.Route.prefix);
         ])
       sample)

(* A realistic "small" change: new originations plus an (unattached)
   prefix-list entry on two vendor-A devices that actually speak BGP.
   Region-bounded edits — the touched set is the fresh 198.51.100/23
   space, not the whole table. *)
let bench_plan (configs : Types.t Smap.t) : Cp.t * string list =
  let candidates =
    Smap.fold
      (fun dev (c : Types.t) acc ->
        if
          String.equal c.Types.dc_vendor "vendorA"
          && c.Types.dc_bgp.Types.bgp_neighbors <> []
        then (dev, c.Types.dc_bgp.Types.bgp_asn) :: acc
        else acc)
      configs []
    |> List.sort compare
  in
  match candidates with
  | (d1, asn1) :: (d2, asn2) :: _ ->
      let block1 =
        Printf.sprintf
          "router bgp %d\n network 198.51.100.0/24\nip prefix-list \
           PL_DIFFBENCH seq 10 permit 198.51.101.0/24\n"
          asn1
      in
      let block2 =
        Printf.sprintf "router bgp %d\n network 198.51.102.0/24\n" asn2
      in
      ( Cp.make "diff-bench" ~commands:[ (d1, block1); (d2, block2) ],
        [ d1; d2 ] )
  | _ -> invalid_arg "B_diff: workload has no two vendor-A BGP speakers"

let measure () : measurement =
  let g = Lazy.force wan in
  let model = g.G.model in
  let plan, plan_devices = bench_plan model.Model.configs in
  let input, t_make =
    time (fun () ->
        Lint.make ~topo:model.Model.topo ~render:false model.Model.configs)
  in
  let d, t_diff = time (fun () -> Differential.diff input plan) in
  let diags, t_check =
    time (fun () -> Differential.check ~input_routes:g.G.input_routes d)
  in
  let imp, t_impact =
    time (fun () -> Differential.impact d ~input_routes:g.G.input_routes)
  in
  let intents = intent_batch g in
  let carried, t_carry =
    time (fun () ->
        List.length
          (List.filter
             (fun (_, p) ->
               Differential.carries_over d ~input_routes:g.G.input_routes p)
             intents))
  in
  let (patched, _reports), t_apply =
    time (fun () -> Model.apply_change_plan model plan)
  in
  let direct, t_route =
    time (fun () -> Route_sim.run patched ~input_routes:g.G.input_routes ())
  in
  let _, t_traffic =
    time (fun () ->
        Traffic_sim.run patched ~rib:direct.Route_sim.rib ~flows:g.G.flows ())
  in
  {
    m_devices = G.device_count g;
    m_plan_devices = plan_devices;
    m_make_s = t_make;
    m_diff_s = t_diff;
    m_check_s = t_check;
    m_impact_s = t_impact;
    m_carry_s = t_carry;
    m_class = d.Differential.df_class;
    m_diags = List.length diags;
    m_dirty_prefixes = List.length imp.Differential.im_ec_signatures;
    m_intents = List.length intents;
    m_carried = carried;
    m_apply_s = t_apply;
    m_route_s = t_route;
    m_traffic_s = t_traffic;
  }

let run () =
  header "differential change-impact pass vs full patched simulation (wan)";
  let m = measure () in
  row "devices: %d   plan touches: %s   class: %s   diagnostics: %d"
    m.m_devices
    (String.concat ", " m.m_plan_devices)
    (Differential.classification_to_string m.m_class)
    m.m_diags;
  row "differential: make %.4fs + diff %.4fs + check %.4fs + impact \
       %.4fs + carry(%d intents) %.4fs = %.4fs"
    m.m_make_s m.m_diff_s m.m_check_s m.m_impact_s m.m_intents m.m_carry_s
    (m_diff_total m);
  row "blast radius: %d dirty prefix(es); %d/%d intents carried over \
       (%.1f%%) without re-simulation"
    m.m_dirty_prefixes m.m_carried m.m_intents
    (100. *. m_carried_frac m);
  row "patched simulation: apply %.2fs + route %.2fs + traffic %.2fs = \
       %.2fs (apply excluded from the ratio)"
    m.m_apply_s m.m_route_s m.m_traffic_s (m_sim_s m);
  let ratio = m_ratio m in
  row "differential cost: %.3f%% of full simulation (target: < 2%%)"
    (100. *. ratio);
  if ratio >= 0.02 then
    row "WARNING: differential pass costs more than 2%% of the simulation";
  if 2 * m.m_carried <= m.m_intents then
    row "WARNING: differential pass carried over a minority of the batch";
  let json =
    B_perf.J_obj
      [
        ("bench", B_perf.J_str "differential change-impact pass");
        ("generated_unix", B_perf.J_float (Unix.gettimeofday ()));
        ("quick", B_perf.J_bool !quick);
        ( "workload",
          B_perf.J_obj
            [
              ("name", B_perf.J_str "wan");
              ("devices", B_perf.J_int m.m_devices);
            ] );
        ( "plan",
          B_perf.J_obj
            [
              ( "devices",
                B_perf.J_str (String.concat "," m.m_plan_devices) );
              ( "classification",
                B_perf.J_str
                  (Differential.classification_to_string m.m_class) );
              ("diagnostics", B_perf.J_int m.m_diags);
              ("dirty_prefixes", B_perf.J_int m.m_dirty_prefixes);
            ] );
        ( "differential",
          B_perf.J_obj
            [
              ("make_s", B_perf.J_float m.m_make_s);
              ("diff_s", B_perf.J_float m.m_diff_s);
              ("check_s", B_perf.J_float m.m_check_s);
              ("impact_s", B_perf.J_float m.m_impact_s);
              ("carry_s", B_perf.J_float m.m_carry_s);
              ("total_s", B_perf.J_float (m_diff_total m));
            ] );
        ( "carryover",
          B_perf.J_obj
            [
              ("intents", B_perf.J_int m.m_intents);
              ("carried", B_perf.J_int m.m_carried);
              ("carried_fraction", B_perf.J_float (m_carried_frac m));
            ] );
        ( "simulation",
          B_perf.J_obj
            [
              ("apply_s", B_perf.J_float m.m_apply_s);
              ("route_s", B_perf.J_float m.m_route_s);
              ("traffic_s", B_perf.J_float m.m_traffic_s);
              ("total_s", B_perf.J_float (m_sim_s m));
            ] );
        ("diff_cost_fraction_of_simulation", B_perf.J_float (m_ratio m));
        ("carried_fraction", B_perf.J_float (m_carried_frac m));
        ("meets_2pct_target", B_perf.J_bool (m_ratio m < 0.02));
        ("majority_carried", B_perf.J_bool (2 * m.m_carried > m.m_intents));
        ("peak_rss_kb", B_perf.J_int (B_perf.peak_rss_kb ()));
      ]
  in
  B_perf.write_json !output_file json;
  row "wrote %s" !output_file
