(* The machine-readable perf harness (`--perf`).

   Runs the figure5a/5b-style workloads end to end through the *real*
   multicore pipeline (OCaml 5 domains, {!Hoyan_dist.Parallel}) at 1, 2
   and N domains, asserts that the parallel results are identical to the
   sequential ones, and writes BENCH_PR1.json so future PRs have a
   machine-readable perf trajectory to compare against: wall times,
   speedups, peak RSS and the EC compression ratios.

   The domain-count curve only shows wall-clock speedup when the machine
   actually has cores to run the domains on; the JSON records
   [cores_available] so a trajectory comparison across machines stays
   honest.  The hot-path section (batched trie FIB build, the
   precomputed union-trie EC keying vs the O(devices) reference) is
   hardware independent. *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Parallel = Hoyan_dist.Parallel

(* Overridable via `--perf --out FILE` so the perf trajectory accumulates
   one JSON per PR instead of overwriting a hardcoded name. *)
let output_file = ref "BENCH_PR6.json"

(* ------------------------------------------------------------------ *)
(* Minimal JSON emission (no external dependency)                      *)
(* ------------------------------------------------------------------ *)

type json =
  | J_obj of (string * json) list
  | J_arr of json list
  | J_str of string
  | J_int of int
  | J_float of float
  | J_bool of bool

let rec emit buf indent = function
  | J_str s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | J_int n -> Buffer.add_string buf (string_of_int n)
  | J_float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | J_bool b -> Buffer.add_string buf (if b then "true" else "false")
  | J_arr [] -> Buffer.add_string buf "[]"
  | J_arr xs ->
      Buffer.add_string buf "[";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          emit buf indent x)
        xs;
      Buffer.add_string buf "]"
  | J_obj [] -> Buffer.add_string buf "{}"
  | J_obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          emit buf (indent + 2) (J_str k);
          Buffer.add_string buf ": ";
          emit buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let write_json path j =
  let buf = Buffer.create 4096 in
  emit buf 0 j;
  Buffer.add_char buf '\n';
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

(** Peak resident set size in kB (Linux VmHWM; 0 when unavailable). *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception _ -> 0
  | ic ->
      let rec go () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
            if String.length line > 6 && String.equal (String.sub line 0 6) "VmHWM:"
            then
              Scanf.sscanf
                (String.sub line 6 (String.length line - 6))
                " %d" (fun x -> x)
            else go ()
      in
      let r = go () in
      close_in ic;
      r

let sorted_loads tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

(** Bit-for-bit equality of two traffic results (flow results in shard
    order, link loads as sorted association lists). *)
let traffic_identical (a : Traffic_sim.result) (b : Traffic_sim.result) =
  a.Traffic_sim.flow_results = b.Traffic_sim.flow_results
  && sorted_loads a.Traffic_sim.link_load = sorted_loads b.Traffic_sim.link_load

(** Tolerant comparison against the sequential single-table run, whose
    float accumulation order differs (same walks, different summation
    order). *)
let loads_close (a : Traffic_sim.result) (b : Traffic_sim.result) =
  let la = sorted_loads a.Traffic_sim.link_load
  and lb = sorted_loads b.Traffic_sim.link_load in
  List.length la = List.length lb
  && List.for_all2
       (fun (ka, va) (kb, vb) ->
         ka = kb
         && Float.abs (va -. vb) <= 1e-6 *. Float.max 1.0 (Float.abs va))
       la lb

(* Honest domain-count selection: the curve is driven by the cores the
   machine actually has.  Counts beyond the core count are still run
   (they exercise the scheduler and the identity check) but their rows
   carry ["undersubscribed": true] and they are excluded from the
   headline speedup. *)
let cores () = Domain.recommended_domain_count ()

let domain_counts () =
  List.sort_uniq compare [ 1; 2; 4; max 1 (cores ()) ]

let undersubscribed d = d > cores ()

(** The largest tested count that still has a core per domain — what the
    headline [speedup_max_vs_1] is measured at. *)
let max_honest_domains () =
  List.fold_left
    (fun acc d -> if undersubscribed d then acc else max acc d)
    1 (domain_counts ())

(* ------------------------------------------------------------------ *)
(* Route-phase identity gate (`--route-bench`)                          *)
(* ------------------------------------------------------------------ *)

(** Quick route-phase-only pass for CI: runs the WAN workload's route
    phase sequentially and at every tested domain count, asserting that
    (1) each parallel RIB is multiset-identical to the sequential
    reference and (2) the parallel outputs are byte-identical — the same
    row list, element for element — across all domain counts (the
    packed-key arena merge is deterministic, so any divergence is a
    scheduler or merge bug).  Exits non-zero on violation. *)
let route_bench () =
  header "route-bench: route phase sequential-vs-parallel identity";
  let g = Lazy.force wan in
  let subtasks = if !quick then 32 else 100 in
  row "workload: wan (%d devices, %d input routes; cores %d; quick=%b)"
    (G.device_count g)
    (List.length g.G.input_routes)
    (cores ()) !quick;
  let direct, t_seq =
    time (fun () -> Route_sim.run g.G.model ~input_routes:g.G.input_routes ())
  in
  let rib = direct.Route_sim.rib in
  row "sequential route phase: %s (%d rows)" (seconds t_seq)
    (List.length rib);
  let runs =
    List.map
      (fun d ->
        let r, t =
          time (fun () ->
              Parallel.route_phase_rib ~domains:d ~subtasks g.G.model
                ~input_routes:g.G.input_routes)
        in
        let multiset_ok = Rib.Global.equal rib r in
        row "domains=%-3d wall %-10s multiset-identical %b%s" d (seconds t)
          multiset_ok
          (if undersubscribed d then "  (undersubscribed)" else "");
        (d, r, multiset_ok))
      (domain_counts ())
  in
  let byte_identical =
    match runs with
    | [] -> true
    | (_, first, _) :: rest ->
        List.for_all
          (fun (_, r, _) -> List.equal Route.equal first r)
          rest
  in
  row "parallel outputs byte-identical across domain counts: %b"
    byte_identical;
  if not (byte_identical && List.for_all (fun (_, _, ok) -> ok) runs) then
    failwith "route-bench: sequential-vs-parallel identity violated"

(* ------------------------------------------------------------------ *)
(* The perf run                                                        *)
(* ------------------------------------------------------------------ *)

let perf () =
  header "perf harness: multicore end-to-end pipeline + lint gate";
  let g = Lazy.force wan in
  let route_subtasks = if !quick then 32 else 100 in
  let traffic_subtasks = if !quick then 32 else 128 in
  row "workload: wan  (%d devices, %d input routes, %d flow records; quick=%b)"
    (G.device_count g)
    (List.length g.G.input_routes)
    (List.length g.G.flows) !quick;
  row "cores available: %d   domain counts tested: %s"
    (Domain.recommended_domain_count ())
    (String.concat " "
       (List.map string_of_int (domain_counts ())));

  (* sequential references *)
  let direct, t_route_seq =
    time (fun () -> Route_sim.run g.G.model ~input_routes:g.G.input_routes ())
  in
  let rib = direct.Route_sim.rib in
  sub "route phase (figure5a-style workload)";
  row "%-10s %-10s %-10s" "domains" "wall" "identical";
  let route_runs =
    List.map
      (fun d ->
        let r, t =
          time (fun () ->
              Parallel.route_phase_rib ~domains:d ~subtasks:route_subtasks
                g.G.model ~input_routes:g.G.input_routes)
        in
        let ok = Rib.Global.equal rib r in
        row "%-10d %-10s %b" d (seconds t) ok;
        (d, t, ok))
      (domain_counts ())
  in
  row "sequential Route_sim.run reference: %s" (seconds t_route_seq);

  (* traffic: FIB construction + EC keying hot paths *)
  sub "hot paths (hardware independent)";
  let fibs, t_fib = time (fun () -> Traffic_sim.build_fibs rib) in
  row "batched FIB/trie construction: %s (%d devices)" (seconds t_fib)
    (Hashtbl.length fibs);
  let ecx, t_ecx = time (fun () -> Traffic_sim.ec_ctx g.G.model fibs) in
  let sample =
    List.filteri (fun i _ -> i < 2000) g.G.flows
  in
  let n_sample = List.length sample in
  let (), t_key_ref =
    time (fun () ->
        List.iter
          (fun f -> ignore (Traffic_sim.flow_ec_key g.G.model fibs f))
          sample)
  in
  let (), t_key_pre =
    time (fun () ->
        List.iter (fun f -> ignore (Traffic_sim.flow_ec_key_pre ecx f)) sample)
  in
  let key_speedup = if t_key_pre > 0. then t_key_ref /. t_key_pre else nan in
  row
    "flow-EC keying over %d flows: reference %s, union-trie %s (+%s ctx) -> %.1fx"
    n_sample (seconds t_key_ref) (seconds t_key_pre) (seconds t_ecx)
    key_speedup;

  (* traffic phase (figure5b-style workload) *)
  sub "traffic phase (figure5b-style workload)";
  let seq_traffic, t_traffic_seq =
    time (fun () -> Traffic_sim.run g.G.model ~rib ~flows:g.G.flows ())
  in
  row "%-10s %-10s %-10s" "domains" "wall" "identical";
  let traffic_runs =
    List.map
      (fun d ->
        let r, t =
          time (fun () ->
              Parallel.traffic_phase ~domains:d ~subtasks:traffic_subtasks
                g.G.model ~rib ~flows:g.G.flows ())
        in
        (d, t, r))
      (domain_counts ())
  in
  let base_result =
    match traffic_runs with (_, _, r) :: _ -> r | [] -> assert false
  in
  let traffic_rows =
    List.map
      (fun (d, t, r) ->
        let ok = traffic_identical base_result r in
        row "%-10d %-10s %b" d (seconds t) ok;
        (d, t, ok))
      traffic_runs
  in
  let seq_close = loads_close base_result seq_traffic in
  row "sequential Traffic_sim.run reference: %s (loads agree: %b)"
    (seconds t_traffic_seq) seq_close;
  row "EC compression: traffic %.1fx (%d ECs / %d records)"
    base_result.Traffic_sim.compression base_result.Traffic_sim.ec_count
    (List.length g.G.flows);

  let wall_of runs d =
    List.find_map (fun (d', t, _) -> if d' = d then Some t else None) runs
  in
  let speedup runs =
    match (wall_of runs 1, wall_of runs (max_honest_domains ())) with
    | Some t1, Some tn when tn > 0. -> t1 /. tn
    | _ -> nan
  in
  let route_speedup =
    speedup (List.map (fun (d, t, ok) -> (d, t, ok)) route_runs)
  in
  let traffic_speedup = speedup traffic_rows in
  row
    "speedup at %d domains (largest fully-subscribed count): route %.2fx, \
     traffic %.2fx (1 core -> ~1.0x expected)"
    (max_honest_domains ()) route_speedup traffic_speedup;

  let all_identical =
    List.for_all (fun (_, _, ok) -> ok) route_runs
    && List.for_all (fun (_, _, ok) -> ok) traffic_rows
    && seq_close
  in
  if not all_identical then
    failwith "perf harness: parallel results differ from sequential";

  (* static-analysis gate cost vs the simulation it guards *)
  sub "static-analysis gate";
  let lint_input, t_lint_render =
    time (fun () ->
        Hoyan_analysis.Lint.make ~topo:g.G.model.Hoyan_sim.Model.topo
          g.G.model.Hoyan_sim.Model.configs)
  in
  let lint_diags, t_lint_run =
    time (fun () -> Hoyan_analysis.Lint.run lint_input)
  in
  let t_sim_seq = t_route_seq +. t_traffic_seq in
  let lint_ratio =
    if t_sim_seq > 0. then (t_lint_render +. t_lint_run) /. t_sim_seq else nan
  in
  row "lint: render %.4fs + analyse %.4fs; %d diagnostics; %.2f%% of \
       sequential simulation"
    t_lint_render t_lint_run
    (List.length lint_diags)
    (100. *. lint_ratio);

  let domain_row (d, t, ok) =
    J_obj
      ([ ("domains", J_int d); ("wall_s", J_float t); ("identical", J_bool ok) ]
      @ if undersubscribed d then [ ("undersubscribed", J_bool true) ] else [])
  in
  let json =
    J_obj
      [
        ("bench", J_str "multicore end-to-end pipeline + lint gate");
        ("generated_unix", J_float (Unix.gettimeofday ()));
        ("cores_available", J_int (Domain.recommended_domain_count ()));
        ("quick", J_bool !quick);
        ( "workload",
          J_obj
            [
              ("name", J_str "wan");
              ("devices", J_int (G.device_count g));
              ("input_routes", J_int (List.length g.G.input_routes));
              ("flow_records", J_int (List.length g.G.flows));
              ("route_subtasks", J_int route_subtasks);
              ("traffic_subtasks", J_int traffic_subtasks);
            ] );
        ( "route_phase",
          J_obj
            [
              ("sequential_wall_s", J_float t_route_seq);
              ("domains", J_arr (List.map domain_row route_runs));
              ("speedup_max_vs_1", J_float route_speedup);
              ("speedup_measured_at_domains", J_int (max_honest_domains ()));
              ( "ec_compression",
                J_float direct.Route_sim.compression );
            ] );
        ( "traffic_phase",
          J_obj
            [
              ("sequential_wall_s", J_float t_traffic_seq);
              ("domains", J_arr (List.map domain_row traffic_rows));
              ("speedup_max_vs_1", J_float traffic_speedup);
              ("ec_compression", J_float base_result.Traffic_sim.compression);
              ("ec_count", J_int base_result.Traffic_sim.ec_count);
            ] );
        ( "hot_paths",
          J_obj
            [
              ("fib_build_s", J_float t_fib);
              ("ec_ctx_build_s", J_float t_ecx);
              ("ec_key_sample_flows", J_int n_sample);
              ("ec_key_reference_s", J_float t_key_ref);
              ("ec_key_union_trie_s", J_float t_key_pre);
              ("ec_key_speedup", J_float key_speedup);
            ] );
        ( "lint_gate",
          J_obj
            [
              ("render_wall_s", J_float t_lint_render);
              ("lint_wall_s", J_float t_lint_run);
              ("diagnostics", J_int (List.length lint_diags));
              ("sim_sequential_wall_s", J_float t_sim_seq);
              ("ratio_vs_sim", J_float lint_ratio);
            ] );
        ("peak_rss_kb", J_int (peak_rss_kb ()));
        ("all_results_identical", J_bool all_identical);
      ]
  in
  write_json !output_file json;
  row "wrote %s (peak RSS %d kB)" !output_file (peak_rss_kb ())
