(* --semantic: cost of the cross-device semantic pass and the static
   intent pre-checker vs the full WAN simulation (writes BENCH_PR4.json).

   The pre-checker's value proposition is that statically resolved
   intents skip the route/traffic fixpoints entirely; it is only worth
   wiring in front of every request if (a) its own wall time is a tiny
   fraction of the simulation it can skip and (b) it actually resolves a
   useful share of realistic intents.  This section measures both on the
   WAN workload with a mixed intent batch:

     - "input prefix present at its entry device"  -> statically proved
     - "originless prefix present at device X"     -> statically refuted
     - "input prefix present at a remote device"   -> needs simulation
       (in the propagation closure but not an exact origin) *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module Model = Hoyan_sim.Model
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Lint = Hoyan_analysis.Lint
module Semantic = Hoyan_analysis.Semantic

let output_file = ref "BENCH_PR4.json"

type measurement = {
  m_devices : int;
  m_intents : int;
  m_proved : int;
  m_refuted : int;
  m_needs_sim : int;
  m_make_s : float; (* Lint.make ~render:false: the analysis input *)
  m_build_s : float; (* Semantic.build: the control-plane graph *)
  m_check_s : float; (* Semantic.check: the HOY02x pass *)
  m_precheck_s : float; (* the whole intent batch *)
  m_diags : int;
  m_route_s : float;
  m_traffic_s : float;
}

let m_sim_s m = m.m_route_s +. m.m_traffic_s
let m_gate_s m = m.m_make_s +. m.m_build_s +. m.m_check_s +. m.m_precheck_s

let m_ratio m =
  let sim = m_sim_s m in
  if sim > 0. then m_gate_s m /. sim else nan

let m_resolved_frac m =
  if m.m_intents > 0 then
    float_of_int (m.m_proved + m.m_refuted) /. float_of_int m.m_intents
  else nan

(* A mixed batch: one provable, one refutable and one needs-simulation
   intent per sampled input route (capped so the batch stays the same
   size under --quick). *)
let intent_batch (g : G.t) =
  let devices =
    List.sort String.compare
      (List.map
         (fun (d : Hoyan_net.Topology.device) -> d.Hoyan_net.Topology.name)
         (Hoyan_net.Topology.devices g.G.model.Model.topo))
  in
  let other dev =
    match List.find_opt (fun d -> not (String.equal d dev)) devices with
    | Some d -> d
    | None -> dev
  in
  let originless = Prefix.of_string_exn "203.0.113.0/24" in
  let sample =
    List.filteri (fun i _ -> i < 100) g.G.input_routes
  in
  List.concat
    (List.mapi
       (fun i (r : Route.t) ->
         [
           {
             Semantic.ri_name = Printf.sprintf "proved-%d" i;
             ri_prefix = r.Route.prefix;
             ri_devices = [ r.Route.device ];
             ri_expect = true;
           };
           {
             Semantic.ri_name = Printf.sprintf "refuted-%d" i;
             ri_prefix = originless;
             ri_devices = [ r.Route.device ];
             ri_expect = true;
           };
           {
             Semantic.ri_name = Printf.sprintf "needs-sim-%d" i;
             ri_prefix = r.Route.prefix;
             ri_devices = [ other r.Route.device ];
             ri_expect = true;
           };
         ])
       sample)

let measure () : measurement =
  let g = Lazy.force wan in
  let model = g.G.model in
  let input, t_make =
    time (fun () ->
        Lint.make ~topo:model.Model.topo ~render:false model.Model.configs)
  in
  let graph, t_build = time (fun () -> Semantic.build input) in
  let diags, t_check = time (fun () -> Semantic.check graph) in
  let intents = intent_batch g in
  let verdicts, t_precheck =
    time (fun () ->
        List.map snd
          (Semantic.precheck_batch graph ~input_routes:g.G.input_routes
             intents))
  in
  let count p = List.length (List.filter p verdicts) in
  let direct, t_route =
    time (fun () -> Route_sim.run model ~input_routes:g.G.input_routes ())
  in
  let _, t_traffic =
    time (fun () ->
        Traffic_sim.run model ~rib:direct.Route_sim.rib ~flows:g.G.flows ())
  in
  {
    m_devices = G.device_count g;
    m_intents = List.length intents;
    m_proved = count (fun v -> v = Semantic.Proved);
    m_refuted =
      count (fun v -> match v with Semantic.Refuted _ -> true | _ -> false);
    m_needs_sim = count (fun v -> v = Semantic.Needs_simulation);
    m_make_s = t_make;
    m_build_s = t_build;
    m_check_s = t_check;
    m_precheck_s = t_precheck;
    m_diags = List.length diags;
    m_route_s = t_route;
    m_traffic_s = t_traffic;
  }

let run () =
  header "semantic pass + static intent pre-checker vs full simulation (wan)";
  let m = measure () in
  row "devices: %d   semantic diagnostics on the clean corpus: %d \
       (expected 0)"
    m.m_devices m.m_diags;
  row "gate: make %.4fs + graph %.4fs + checks %.4fs + precheck(%d \
       intents) %.4fs = %.4fs"
    m.m_make_s m.m_build_s m.m_check_s m.m_intents m.m_precheck_s
    (m_gate_s m);
  row "verdicts: %d proved, %d refuted, %d need simulation (%.1f%% \
       resolved statically)"
    m.m_proved m.m_refuted m.m_needs_sim
    (100. *. m_resolved_frac m);
  row "simulation: route %.2fs + traffic %.2fs = %.2fs" m.m_route_s
    m.m_traffic_s (m_sim_s m);
  let ratio = m_ratio m in
  row "gate cost: %.3f%% of full simulation (target: < 1%%)"
    (100. *. ratio);
  if m.m_diags <> 0 then
    row "WARNING: clean corpus produced semantic diagnostics (false \
         positives)";
  if ratio >= 0.01 then
    row "WARNING: semantic gate costs more than 1%% of the simulation";
  let json =
    B_perf.J_obj
      [
        ("bench", B_perf.J_str "semantic pass + static intent pre-checker");
        ("generated_unix", B_perf.J_float (Unix.gettimeofday ()));
        ("quick", B_perf.J_bool !quick);
        ( "workload",
          B_perf.J_obj
            [
              ("name", B_perf.J_str "wan");
              ("devices", B_perf.J_int m.m_devices);
            ] );
        ( "gate",
          B_perf.J_obj
            [
              ("make_s", B_perf.J_float m.m_make_s);
              ("graph_build_s", B_perf.J_float m.m_build_s);
              ("checks_s", B_perf.J_float m.m_check_s);
              ("precheck_s", B_perf.J_float m.m_precheck_s);
              ("total_s", B_perf.J_float (m_gate_s m));
              ("clean_corpus_diags", B_perf.J_int m.m_diags);
            ] );
        ( "precheck",
          B_perf.J_obj
            [
              ("intents", B_perf.J_int m.m_intents);
              ("proved", B_perf.J_int m.m_proved);
              ("refuted", B_perf.J_int m.m_refuted);
              ("needs_simulation", B_perf.J_int m.m_needs_sim);
              ("resolved_fraction", B_perf.J_float (m_resolved_frac m));
            ] );
        ( "simulation",
          B_perf.J_obj
            [
              ("route_s", B_perf.J_float m.m_route_s);
              ("traffic_s", B_perf.J_float m.m_traffic_s);
              ("total_s", B_perf.J_float (m_sim_s m));
            ] );
        ("gate_cost_fraction_of_simulation", B_perf.J_float (m_ratio m));
        ("meets_1pct_target", B_perf.J_bool (m_ratio m < 0.01));
        ("peak_rss_kb", B_perf.J_int (B_perf.peak_rss_kb ()));
      ]
  in
  B_perf.write_json !output_file json;
  row "wrote %s" !output_file
