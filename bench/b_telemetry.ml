(* The telemetry cost section (`--telemetry`, DESIGN.md §2.3).

   Two claims are measured on the full WAN simulation (route fixpoint +
   traffic walk, the pipeline the telemetry subsystem instruments):

   - the default {!Hoyan_telemetry.Telemetry.noop} handle costs nothing
     observable: every instrumented call site collapses to one branch.
     The wall-clock delta between two noop runs is below measurement
     noise, so the honest estimate multiplies a microbenchmarked
     per-call guard cost by the number of instrumented calls the same
     workload actually makes (counted from a live run's sinks);

   - a live handle stays cheap enough to leave on in production-style
     runs (enabled overhead is reported, not gated).

   Writes BENCH_PR3.json so the perf trajectory has a machine-readable
   record of both numbers. *)

open B_common
module G = Hoyan_workload.Generator
module Route_sim = Hoyan_sim.Route_sim
module Traffic_sim = Hoyan_sim.Traffic_sim
module Telemetry = Hoyan_telemetry.Telemetry
module Metrics = Hoyan_telemetry.Metrics
module Trace = Hoyan_telemetry.Trace
module Journal = Hoyan_telemetry.Journal

let output_file = ref "BENCH_PR3.json"

(* One full simulation: route fixpoint to a global RIB, then the
   traffic walk over every flow record.  [tm] is passed explicitly so
   the run never depends on the process-global handle. *)
let run_pipeline tm g =
  let direct = Route_sim.run ~tm g.G.model ~input_routes:g.G.input_routes () in
  let traffic =
    Traffic_sim.run ~tm g.G.model ~rib:direct.Route_sim.rib ~flows:g.G.flows ()
  in
  (direct, traffic)

(* Best-of-[n] wall time: the minimum is the least noisy estimator for
   a deterministic workload on a shared machine. *)
let best_of n f =
  let rec go best i =
    if i = 0 then best
    else
      let _, t = time f in
      go (Float.min best t) (i - 1)
  in
  go Float.infinity n

(* Per-call cost of one instrumented helper on the noop handle.  The
   accumulator keeps the loop from being optimised away. *)
let guard_ns_per_op () =
  let tm = Telemetry.noop in
  let iters = 5_000_000 in
  let acc = ref 0 in
  let (), t =
    time (fun () ->
        for i = 1 to iters do
          Telemetry.count tm "noop_bench" 1;
          acc := !acc + (i land 1)
        done)
  in
  ignore (Sys.opaque_identity !acc);
  t /. float_of_int iters *. 1e9

let run () =
  header "telemetry: noop guard cost + live-handle overhead";
  let g = Lazy.force wan in
  let reps = if !quick then 1 else 3 in
  row "workload: wan  (%d devices, %d input routes, %d flow records; \
       best of %d)"
    (G.device_count g)
    (List.length g.G.input_routes)
    (List.length g.G.flows) reps;

  (* Warm-up run (shared caches, lazy forcing) before any timing. *)
  ignore (run_pipeline Telemetry.noop g);

  let wall_noop = best_of reps (fun () -> run_pipeline Telemetry.noop g) in

  (* The live run also yields the instrumented-call counts: how many
     metric updates / spans / journal events this exact workload makes,
     i.e. how many noop guards a disabled run executes. *)
  let live = Telemetry.create () in
  let wall_enabled = best_of 1 (fun () -> run_pipeline live g) in
  let wall_enabled =
    if reps > 1 then
      Float.min wall_enabled
        (best_of (reps - 1) (fun () -> run_pipeline (Telemetry.create ()) g))
    else wall_enabled
  in
  let metric_ops = Metrics.ops live.Telemetry.metrics in
  let trace_events = Trace.count live.Telemetry.trace in
  let journal_events = Journal.count live.Telemetry.journal in
  (* Spans cost two helper calls (open + finish). *)
  let instrumented_calls = metric_ops + (2 * trace_events) + journal_events in

  let ns_per_op = guard_ns_per_op () in
  let noop_overhead_s = ns_per_op *. 1e-9 *. float_of_int instrumented_calls in
  let noop_overhead_pct =
    if wall_noop > 0. then 100. *. noop_overhead_s /. wall_noop else nan
  in
  let enabled_overhead_pct =
    if wall_noop > 0. then 100. *. (wall_enabled -. wall_noop) /. wall_noop
    else nan
  in
  let meets = Float.is_finite noop_overhead_pct && noop_overhead_pct < 2.0 in

  sub "full simulation wall time";
  row "noop handle:    %.3fs" wall_noop;
  row "live handle:    %.3fs  (enabled overhead %+.1f%%)" wall_enabled
    enabled_overhead_pct;
  sub "noop guard";
  row "per-call guard cost: %.1f ns" ns_per_op;
  row "instrumented calls in one run: %d metric ops + 2x%d span events + \
       %d journal events = %d"
    metric_ops trace_events journal_events instrumented_calls;
  row "estimated noop overhead: %.6fs = %.4f%% of the %.3fs simulation \
       (target < 2%%: %b)"
    noop_overhead_s noop_overhead_pct wall_noop meets;
  if not meets then
    failwith "telemetry bench: noop overhead exceeds the 2% target";

  let json =
    B_perf.J_obj
      [
        ("bench", B_perf.J_str "telemetry noop + live overhead");
        ("generated_unix", B_perf.J_float (Unix.gettimeofday ()));
        ("quick", B_perf.J_bool !quick);
        ( "workload",
          B_perf.J_obj
            [
              ("name", B_perf.J_str "wan");
              ("devices", B_perf.J_int (G.device_count g));
              ("input_routes", B_perf.J_int (List.length g.G.input_routes));
              ("flow_records", B_perf.J_int (List.length g.G.flows));
              ("reps", B_perf.J_int reps);
            ] );
        ("wall_noop_s", B_perf.J_float wall_noop);
        ("wall_enabled_s", B_perf.J_float wall_enabled);
        ("enabled_overhead_pct", B_perf.J_float enabled_overhead_pct);
        ( "noop",
          B_perf.J_obj
            [
              ("guard_ns_per_op", B_perf.J_float ns_per_op);
              ( "instrumented_calls",
                B_perf.J_obj
                  [
                    ("metric_ops", B_perf.J_int metric_ops);
                    ("trace_events", B_perf.J_int trace_events);
                    ("journal_events", B_perf.J_int journal_events);
                    ("total", B_perf.J_int instrumented_calls);
                  ] );
              ("estimated_overhead_s", B_perf.J_float noop_overhead_s);
              ("noop_overhead_pct", B_perf.J_float noop_overhead_pct);
            ] );
        ("meets_2pct_target", B_perf.J_bool meets);
        ("peak_rss_kb", B_perf.J_int (B_perf.peak_rss_kb ()));
      ]
  in
  B_perf.write_json !output_file json;
  row "wrote %s" !output_file
