(* --whatif-bench: exhaustive k-failure verification via the static
   failure-equivalence analysis vs brute-force simulation (writes
   BENCH_PR9.json).

   Two experiments:

   1. Small workload, k in {1,2}: both sweeps run end-to-end, so we can
      assert the soundness contract (identical violating scenario sets)
      AND report the wall-clock ratio honestly.

   2. WAN+DCN workload, k = 1 over every link: the brute-force sweep is
      one full fixpoint per scenario — infeasible by construction — so
      we run the pruned sweep only, report the pruning ratio
      (total scenarios / simulated representatives, the paper-level
      claim), and extrapolate the brute-force wall clock from the
      measured mean per-representative simulation time.

   The property is a reachability invariant on the input-route prefix
   with the smallest control-plane region among a deterministic sample,
   monitored on the WAN borders — the realistic shape for what-if
   sweeps (an operator asks whether a specific service prefix survives
   on the backbone edge, not about 0.0.0.0/0).  The WAN+DCN topology is
   where the influence slice pays off: the DC core layer hangs off the
   borders behind an eBGP boundary, so the analysis proves every
   DC-side link failure irrelevant to a border-monitored property (the
   AS-loop check drops any re-export back into the WAN, and a
   single-homed leaf is never transit for a backbone shortest path). *)

open B_common
open Hoyan_net
module G = Hoyan_workload.Generator
module Model = Hoyan_sim.Model
module Lint = Hoyan_analysis.Lint
module Semantic = Hoyan_analysis.Semantic
module Feq = Hoyan_analysis.Failure_eq
module Kfailure = Hoyan_core.Kfailure

let output_file = ref "BENCH_PR9.json"

(* The what-if experiment keeps the full DC layer even under --quick
   (the pruning ratio is structural in the DC link count) and trims the
   route table instead: per-representative fixpoint cost scales with
   input routes, the class structure does not. *)
let wan_dcn_whatif =
  lazy
    (G.generate
       (if !quick then { G.wan_dcn with G.g_prefixes = 500 } else G.wan_dcn))

let violating (r : Kfailure.result) =
  List.map
    (fun (s : Kfailure.scenario_result) ->
      List.map Kfailure.failure_to_string s.Kfailure.sr_failures)
    r.Kfailure.kr_violations
  |> List.sort compare

(* ---------------- experiment 1: small, brute vs pruned ------------- *)

type small_result = {
  s_k : int;
  s_total : int;
  s_brute_s : float;
  s_pruned_s : float;
  s_simulated : int;
  s_carried : int;
  s_static : int;
  s_replicated : int;
  s_violations : int;
  s_identical : bool;
}

let small_sweep (g : G.t) ~k : small_result =
  let model = g.G.model in
  let prop =
    Kfailure.prefix_survives
      ~prefix:(List.hd g.G.input_routes).Route.prefix
      ~devices:g.G.borders
  in
  let brute, t_brute =
    time (fun () ->
        Kfailure.check ~prune:false model ~input_routes:g.G.input_routes
          ~flows:[] ~k prop)
  in
  let pruned, t_pruned =
    time (fun () ->
        Kfailure.check ~prune:true model ~input_routes:g.G.input_routes
          ~flows:[] ~k prop)
  in
  {
    s_k = k;
    s_total = pruned.Kfailure.kr_total;
    s_brute_s = t_brute;
    s_pruned_s = t_pruned;
    s_simulated = pruned.Kfailure.kr_simulated;
    s_carried = pruned.Kfailure.kr_carried;
    s_static = pruned.Kfailure.kr_static;
    s_replicated = pruned.Kfailure.kr_replicated;
    s_violations = List.length pruned.Kfailure.kr_violations;
    s_identical = violating brute = violating pruned;
  }

(* ---------------- experiment 2: wan, pruned plan + reps ------------ *)

type wan_result = {
  w_devices : int;
  w_prefix : string;
  w_region : int;
  w_monitored : string list;
  w_total : int;
  w_to_simulate : int;
  w_carried : int;
  w_static : int;
  w_replicated : int;
  w_prune_ratio : float;  (* total / to_simulate *)
  w_analyze_s : float;
  w_sim_s : float;  (* simulating the representatives *)
  w_mean_rep_s : float;
  w_brute_est_s : float;  (* total * mean per-scenario sim *)
  w_speedup_est : float;
  w_violations : int;
}

let wan_sweep (g : G.t) : wan_result =
  let model = g.G.model in
  let input =
    Lint.make ~topo:model.Model.topo ~render:false model.Model.configs
  in
  let sem = Semantic.build input in
  let an =
    Feq.create ~te_aware:model.Model.te_aware sem
      ~input_routes:g.G.input_routes
  in
  (* the monitored prefix: smallest control-plane region among a
     deterministic sample of input routes (operators sweep specific
     service prefixes; a default-route sweep would touch everything) *)
  let sample =
    List.filteri (fun i _ -> i mod 37 = 0) g.G.input_routes
    |> List.map (fun (r : Route.t) -> r.Route.prefix)
    |> List.sort_uniq Prefix.compare
  in
  let prefix, region =
    List.fold_left
      (fun (bp, br) p ->
        let r = List.length (Feq.region an p) in
        if r < br then (p, r) else (bp, br))
      (List.hd sample, List.length (Feq.region an (List.hd sample)))
      (List.tl sample)
  in
  (* monitor the WAN borders that actually carry it in the base RIB, so
     the property is non-vacuous and reads backbone-edge state only —
     monitoring the DC leaves themselves would pull every one of them
     into the influence slice by definition *)
  let base_rib =
    (Hoyan_sim.Route_sim.run model ~input_routes:g.G.input_routes ())
      .Hoyan_sim.Route_sim.rib
  in
  let monitored =
    List.filter_map
      (fun (r : Route.t) ->
        if
          Prefix.equal r.Route.prefix prefix
          && List.mem r.Route.device g.G.borders
        then Some r.Route.device
        else None)
      base_rib
    |> List.sort_uniq String.compare
  in
  let prop = Kfailure.prefix_survives ~prefix ~devices:monitored in
  let plan, t_analyze =
    time (fun () ->
        Feq.analyze ~devices:false ~links:true an ~k:1 prop.Kfailure.p_footprint)
  in
  row "wan_dcn plan: %s (analyze %.2fs)" (Feq.describe plan) t_analyze;
  let res, t_sweep =
    time (fun () ->
        Kfailure.check ~prune:true model ~input_routes:g.G.input_routes
          ~flows:[] ~k:1 prop)
  in
  let sim_s = Float.max 0. (t_sweep -. t_analyze) in
  let mean_rep_s =
    if res.Kfailure.kr_simulated > 0 then
      sim_s /. float_of_int res.Kfailure.kr_simulated
    else 0.
  in
  {
    w_devices = G.device_count g;
    w_prefix = Prefix.to_string prefix;
    w_region = region;
    w_monitored = monitored;
    w_total = plan.Feq.pl_total;
    w_to_simulate = plan.Feq.pl_to_simulate;
    w_carried = plan.Feq.pl_carried;
    w_static = plan.Feq.pl_static;
    w_replicated = plan.Feq.pl_replicated;
    w_prune_ratio =
      (if plan.Feq.pl_to_simulate > 0 then
         float_of_int plan.Feq.pl_total /. float_of_int plan.Feq.pl_to_simulate
       else infinity);
    w_analyze_s = t_analyze;
    w_sim_s = sim_s;
    w_mean_rep_s = mean_rep_s;
    w_brute_est_s = float_of_int plan.Feq.pl_total *. mean_rep_s;
    w_speedup_est =
      (if t_sweep > 0. then
         float_of_int plan.Feq.pl_total *. mean_rep_s /. t_sweep
       else nan);
    w_violations = List.length res.Kfailure.kr_violations;
  }

(* ------------------------------------------------------------------ *)

let run () =
  header "exhaustive k-failure verification: blast-radius pruning";
  let small_g = Lazy.force small in
  let smalls = List.map (fun k -> small_sweep small_g ~k) [ 1; 2 ] in
  List.iter
    (fun s ->
      row
        "small k=%d: %d scenarios; brute %.2fs vs pruned %.2fs (%.1fx); \
         %d simulated + %d carried + %d static + %d replicated; %d \
         violation(s); identical: %b"
        s.s_k s.s_total s.s_brute_s s.s_pruned_s
        (if s.s_pruned_s > 0. then s.s_brute_s /. s.s_pruned_s else nan)
        s.s_simulated s.s_carried s.s_static s.s_replicated s.s_violations
        s.s_identical;
      if not s.s_identical then
        row "WARNING: SOUNDNESS VIOLATION at k=%d (pruned <> brute)" s.s_k)
    smalls;
  let g = Lazy.force wan_dcn_whatif in
  let w = wan_sweep g in
  row "wan_dcn: %d devices; property prefix %s (region %d device(s), %d \
       monitored border(s))"
    w.w_devices w.w_prefix w.w_region
    (List.length w.w_monitored);
  row "wan_dcn k=1 links: %d scenarios -> %d simulated representatives \
       (pruning ratio %.1fx; %d carried, %d static, %d replicated)"
    w.w_total w.w_to_simulate w.w_prune_ratio w.w_carried w.w_static
    w.w_replicated;
  row "wan_dcn wall clock: analyze %.2fs + representatives %.2fs (mean \
       %.2fs each); brute-force estimate %.0fs (%.1fx)"
    w.w_analyze_s w.w_sim_s w.w_mean_rep_s w.w_brute_est_s w.w_speedup_est;
  row "wan_dcn violations under any single link failure: %d" w.w_violations;
  if w.w_prune_ratio < 5. then
    row "WARNING: pruning ratio %.1fx below the 5x target" w.w_prune_ratio;
  let small_json s =
    B_perf.J_obj
      [
        ("k", B_perf.J_int s.s_k);
        ("scenarios", B_perf.J_int s.s_total);
        ("brute_s", B_perf.J_float s.s_brute_s);
        ("pruned_s", B_perf.J_float s.s_pruned_s);
        ("simulated", B_perf.J_int s.s_simulated);
        ("carried", B_perf.J_int s.s_carried);
        ("static", B_perf.J_int s.s_static);
        ("replicated", B_perf.J_int s.s_replicated);
        ("violations", B_perf.J_int s.s_violations);
        ("identical_to_brute", B_perf.J_bool s.s_identical);
      ]
  in
  let json =
    B_perf.J_obj
      [
        ("bench", B_perf.J_str "exhaustive k-failure what-if verification");
        ("generated_unix", B_perf.J_float (Unix.gettimeofday ()));
        ("quick", B_perf.J_bool !quick);
        ("small", B_perf.J_arr (List.map small_json smalls));
        ( "wan",
          B_perf.J_obj
            [
              ("workload", B_perf.J_str "wan_dcn");
              ("devices", B_perf.J_int w.w_devices);
              ("prefix", B_perf.J_str w.w_prefix);
              ("region_devices", B_perf.J_int w.w_region);
              ("monitored_devices", B_perf.J_int (List.length w.w_monitored));
              ("scenarios", B_perf.J_int w.w_total);
              ("representatives_simulated", B_perf.J_int w.w_to_simulate);
              ("carried", B_perf.J_int w.w_carried);
              ("static", B_perf.J_int w.w_static);
              ("replicated", B_perf.J_int w.w_replicated);
              ("pruning_ratio", B_perf.J_float w.w_prune_ratio);
              ("analyze_s", B_perf.J_float w.w_analyze_s);
              ("representatives_s", B_perf.J_float w.w_sim_s);
              ("mean_representative_s", B_perf.J_float w.w_mean_rep_s);
              ("brute_force_estimate_s", B_perf.J_float w.w_brute_est_s);
              ("estimated_speedup", B_perf.J_float w.w_speedup_est);
              ("violations", B_perf.J_int w.w_violations);
            ] );
        ( "soundness_identical",
          B_perf.J_bool (List.for_all (fun s -> s.s_identical) smalls) );
        ("meets_5x_target", B_perf.J_bool (w.w_prune_ratio >= 5.));
        ("peak_rss_kb", B_perf.J_int (B_perf.peak_rss_kb ()));
      ]
  in
  B_perf.write_json !output_file json;
  row "wrote %s" !output_file
